//! TeraGen-style records.
//!
//! The official terabyte-sort input consists of 100-byte records: a
//! 10-byte binary key followed by 90 bytes of payload
//! (O'Malley, "Terabyte sort on Apache Hadoop").

use ipso_sim::SimRng;

/// Serialized size of one record.
pub const TERA_RECORD_BYTES: u64 = 100;

/// One TeraGen record.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TeraRecord {
    /// 10-byte sort key.
    pub key: [u8; 10],
    /// Row id (stands in for the 90-byte payload; the payload content
    /// never affects the computation).
    pub row: u64,
}

/// Generates `count` records with uniformly random keys.
pub fn teragen_records(count: usize, rng: &mut SimRng) -> Vec<TeraRecord> {
    (0..count)
        .map(|row| {
            let mut key = [0u8; 10];
            for b in &mut key {
                *b = rng.index(256) as u8;
            }
            TeraRecord {
                key,
                row: row as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_have_distinct_rows() {
        let mut rng = SimRng::seed_from(3);
        let rs = teragen_records(100, &mut rng);
        assert_eq!(rs.len(), 100);
        let rows: std::collections::HashSet<u64> = rs.iter().map(|r| r.row).collect();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn keys_are_spread() {
        let mut rng = SimRng::seed_from(4);
        let rs = teragen_records(1000, &mut rng);
        let first_bytes: std::collections::HashSet<u8> = rs.iter().map(|r| r.key[0]).collect();
        // 1000 uniform draws should hit many of the 256 buckets.
        assert!(
            first_bytes.len() > 200,
            "only {} buckets",
            first_bytes.len()
        );
    }

    #[test]
    fn records_sort_by_key_then_row() {
        let a = TeraRecord {
            key: [0; 10],
            row: 5,
        };
        let b = TeraRecord {
            key: [1; 10],
            row: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn generation_is_seeded() {
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        assert_eq!(teragen_records(10, &mut r1), teragen_records(10, &mut r2));
    }
}
