#![warn(missing_docs)]

//! # IPSO — In-Proportion and Scale-Out-induced scaling model
//!
//! A from-scratch implementation of the scaling model of
//! *"IPSO: A Scaling Model for Data-Intensive Applications"*
//! (Li, Duan, Nguyen, Che, Lei, Jiang — ICDCS 2019).
//!
//! IPSO generalizes Amdahl's, Gustafson's and Sun-Ni's laws for scale-out,
//! data-intensive workloads along two axes:
//!
//! * **in-proportion scaling** — the serial (merge) portion of a job grows
//!   with the parallelizable portion: `Ws(n) = Ws(1)·IN(n)`;
//! * **scale-out-induced scaling** — scaling out itself induces collective
//!   overhead: `Wo(n) = (Wp(n)/n)·q(n)`.
//!
//! The deterministic speedup (paper Eq. 10) is
//!
//! ```text
//!          η·EX(n) + (1−η)·IN(n)
//! S(n) = ─────────────────────────────────────────
//!        η·EX(n)/n·(1 + q(n)) + (1−η)·IN(n)
//! ```
//!
//! # Quick start
//!
//! ```
//! use ipso::model::IpsoModel;
//! use ipso::factors::ScalingFactor;
//!
//! # fn main() -> Result<(), ipso::ModelError> {
//! // A fixed-time workload whose merge phase grows in proportion to the
//! // external scaling (the paper's Sort), with no scale-out-induced
//! // overhead.
//! let model = IpsoModel::builder(0.9)
//!     .external(ScalingFactor::linear())
//!     .internal(ScalingFactor::affine(0.36, 0.64))
//!     .build()?;
//!
//! let s = model.speedup(64.0)?;
//! assert!(s > 1.0 && s < 64.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate layout
//!
//! * [`factors`] — scaling-factor functions `EX(n)`, `IN(n)`, `q(n)`.
//! * [`model`] — the deterministic IPSO model (Eq. 10) and its builder.
//! * [`asymptotic`] — the highest-order-term form (Eqs. 14–17).
//! * [`classic`] — Amdahl's, Gustafson's and Sun-Ni's laws (Eq. 12).
//! * [`stochastic`] — the statistic model (Eqs. 7–8, 18) driven by task-time
//!   distributions or samples.
//! * [`taxonomy`] — the solution-space classification of Figs. 2–3
//!   (`It … IVt`, `Is … IVs`) with closed-form bounds.
//! * [`measurement`] — measurement containers (speedup points, per-phase
//!   time breakdowns).
//! * [`estimate`] — estimating `EX`, `IN`, `q` from phase breakdowns.
//! * [`predict`] — the Section-V prediction pipeline (fit at small `n`,
//!   extrapolate to large `n`).
//! * [`diagnose`] — the six-step diagnostic procedure of Section V.
//! * [`provision`] — speedup-versus-cost provisioning (Section I/VI).
//! * [`multiround`] — multi-round jobs with a shared scale-out degree
//!   (Section III).
//! * [`memory_bounded`] — Sun-Ni's `g(n)` derived from memory footprints.
//! * [`sensitivity`] — parameter elasticities of the asymptotic speedup.

pub mod asymptotic;
pub mod classic;
pub mod confidence;
pub mod diagnose;
pub mod error;
pub mod estimate;
pub mod factors;
pub mod measurement;
pub mod memory_bounded;
pub mod model;
pub mod multiround;
pub mod predict;
pub mod provision;
pub mod report;
pub mod sensitivity;
pub mod stochastic;
pub mod taxonomy;
pub mod whatif;

pub use asymptotic::AsymptoticParams;
pub use diagnose::{DiagnosisReport, Diagnostician};
pub use error::ModelError;
pub use factors::ScalingFactor;
pub use measurement::{
    overhead_breakdown, OverheadBreakdown, PhaseBreakdown, RunMeasurement, SpeedupCurve,
    SpeedupPoint,
};
pub use model::IpsoModel;
pub use taxonomy::{FixedSizeClass, FixedTimeClass, ScalingClass, WorkloadType};
