//! The MapReduce execution engine.
//!
//! Two execution modes, matching the paper's Section IV definitions:
//!
//! * [`run_scale_out`] — `n` map tasks in parallel on `n` units with a
//!   synchronization barrier, then a single reducer;
//! * [`run_sequential`] — the sequential job execution model defining the
//!   speedup numerator: the same tasks run back-to-back on one unit,
//!   followed by the same merge.
//!
//! Both modes *really execute* the user's map/combine/reduce functions
//! over the sample records and produce real outputs; only wall-clock time
//! is synthetic, charged from nominal data volumes via the cost model.
//!
//! # Host-side execution
//!
//! The data path is built for throughput, the way the model describes
//! the cluster executing it:
//!
//! * map tasks run as a parallel wave over `spec.engine.threads` host
//!   threads ([`ipso_sim::par::ordered_map_indexed`]), with results
//!   collected in task order so outputs and traces are byte-identical
//!   to the sequential path for any thread count;
//! * the map-side sort is a single flat pair buffer pre-sized from the
//!   split, stably sorted by key, with the combiner streamed over the
//!   sorted runs through one reused scratch buffer — no per-key tree
//!   nodes, per-group `Vec`s or rebuilt maps: each task's run is stored
//!   flat (keys + group offsets + one value buffer);
//! * the reduce side k-way-merges the already-sorted per-task runs
//!   through a binary heap instead of rebuilding a merged map; a key
//!   that lives in a single run is reduced straight off that run's
//!   value buffer, copy-free.
//!
//! The original double `BTreeMap` grouping survives, faithfully, as
//! [`ShuffleImpl::BTreeGrouping`] so the benchmark regression harness
//! can measure the before/after and tests can assert equivalence.

use std::collections::{BTreeMap, BinaryHeap};

use ipso_cluster::{
    resolve_faults, run_wave_schedule, ClusterError, FaultOutcome, JobTrace, PhaseTimes, RunConfig,
    StragglerModel,
};
use ipso_sim::SimRng;

use crate::api::{Mapper, OutputScaling, Reducer};
use crate::config::{JobSpec, ShuffleImpl};
use crate::split::InputSplit;

/// The result of one job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRun<O> {
    /// Timing trace (phases, tasks, scale-out overheads).
    pub trace: JobTrace,
    /// The real output records produced by the reducer, in key order.
    pub output: Vec<O>,
    /// Nominal bytes entering the reduce phase.
    pub reduce_input_bytes: u64,
}

/// The per-task result of the (real) map-side computation: a run sorted
/// by key, stored flat. Group `i` holds `keys[i]` with the values
/// `values[ends[i - 1]..ends[i]]` — three allocations per task instead
/// of one `Vec` per key group.
struct MappedTask<K, V> {
    /// Group keys in ascending order.
    keys: Vec<K>,
    /// Cumulative group end offsets into `values`, parallel to `keys`.
    ends: Vec<u32>,
    /// All groups' values, concatenated in key order.
    values: Vec<V>,
    /// Nominal post-combine output bytes.
    nominal_out_bytes: u64,
}

/// Runs the map + combine side of one task for real.
fn execute_map_task<M>(
    mapper: &M,
    split: &InputSplit<M::Input>,
    shuffle: ShuffleImpl,
) -> MappedTask<M::Key, M::Value>
where
    M: Mapper,
{
    use crate::api::Sizeable;

    // The reference path keeps the seed's unsized buffer so the
    // regression benchmarks measure the original allocation behaviour.
    let mut pairs: Vec<(M::Key, M::Value)> = match shuffle {
        ShuffleImpl::SortMerge => Vec::with_capacity(split.records.len()),
        ShuffleImpl::BTreeGrouping => Vec::new(),
    };
    for record in &split.records {
        mapper.map(record, &mut |k, v| pairs.push((k, v)));
    }

    let mut keys: Vec<M::Key> = Vec::new();
    let mut ends: Vec<u32> = Vec::new();
    let mut values: Vec<M::Value> = Vec::new();
    let mut sample_out_bytes: u64 = 0;

    match shuffle {
        ShuffleImpl::SortMerge => {
            // The map-side sort: one stable sort of the flat buffer (so
            // order-sensitive reducers see values in emission order, as
            // the grouping path produced them), then combine streamed
            // over the sorted runs in a single pass through one reused
            // scratch group.
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            values.reserve(pairs.len());
            let mut flush = |key: M::Key, group: &mut Vec<M::Value>| {
                mapper.combine(&key, group);
                for v in group.iter() {
                    sample_out_bytes += key.size_bytes() + v.size_bytes();
                }
                keys.push(key);
                values.append(group);
                ends.push(values.len() as u32);
            };
            let mut pairs = pairs.into_iter();
            if let Some((first_k, first_v)) = pairs.next() {
                let mut key = first_k;
                let mut group = vec![first_v];
                for (k, v) in pairs {
                    if k == key {
                        group.push(v);
                    } else {
                        flush(std::mem::replace(&mut key, k), &mut group);
                        group.push(v);
                    }
                }
                flush(key, &mut group);
            }
        }
        ShuffleImpl::BTreeGrouping => {
            // Reference path, kept faithful to the seed: group through a
            // per-key tree, combine into a second rebuilt tree, then
            // marshal into the run container.
            let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
            for (k, v) in pairs {
                groups.entry(k).or_default().push(v);
            }
            let mut combined: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
            for (k, mut vs) in groups {
                mapper.combine(&k, &mut vs);
                for v in &vs {
                    sample_out_bytes += k.size_bytes() + v.size_bytes();
                }
                combined.insert(k, vs);
            }
            for (k, vs) in combined {
                keys.push(k);
                values.extend(vs);
                ends.push(values.len() as u32);
            }
        }
    }

    let nominal_out_bytes = match mapper.output_scaling() {
        OutputScaling::Proportional => (sample_out_bytes as f64 * split.scale_up()).round() as u64,
        OutputScaling::Saturating => sample_out_bytes,
    };
    MappedTask {
        keys,
        ends,
        values,
        nominal_out_bytes,
    }
}

/// Runs the map + combine side of every task, as a parallel wave over
/// the host threads configured in `spec.engine`. Results come back in
/// task order, so downstream accounting is independent of thread count.
fn execute_map_tasks<M>(
    mapper: &M,
    splits: &[InputSplit<M::Input>],
    spec: &JobSpec,
) -> Vec<MappedTask<M::Key, M::Value>>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
{
    ipso_sim::par::ordered_map_indexed(spec.engine.threads, splits.len(), |i| {
        execute_map_task(mapper, &splits[i], spec.shuffle)
    })
}

/// A consumable view of one task's flat run for the k-way merge.
struct RunSource<K, V> {
    keys: std::vec::IntoIter<K>,
    ends: std::vec::IntoIter<u32>,
    values: Vec<V>,
    /// Start offset of the next unconsumed group in `values`.
    pos: usize,
}

/// The head of one task's run, ordered for min-heap extraction: smallest
/// key first, ties broken by task index so values merge in task order
/// exactly as the sequential grouping path appended them.
struct RunHead<K> {
    key: K,
    task: usize,
}

impl<K: Ord> PartialEq for RunHead<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.task == other.task
    }
}
impl<K: Ord> Eq for RunHead<K> {}
impl<K: Ord> PartialOrd for RunHead<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord> Ord for RunHead<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so `BinaryHeap` (a max-heap) pops the smallest
        // (key, task) pair first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Merges all tasks' sorted runs and runs the reducer for real.
fn execute_reduce<R>(
    reducer: &R,
    tasks: Vec<MappedTask<R::Key, R::Value>>,
    shuffle: ShuffleImpl,
) -> (Vec<R::Output>, u64)
where
    R: Reducer,
{
    let mut reduce_input_bytes: u64 = 0;
    let mut output = Vec::new();

    match shuffle {
        ShuffleImpl::SortMerge => {
            // K-way merge over the per-task runs: a binary heap holds one
            // head key per task. A key that lives in a single run is
            // reduced directly from that run's value buffer; equal keys
            // across tasks are coalesced into one reused scratch group in
            // task order.
            let mut sources: Vec<RunSource<R::Key, R::Value>> = tasks
                .into_iter()
                .map(|t| {
                    reduce_input_bytes += t.nominal_out_bytes;
                    RunSource {
                        keys: t.keys.into_iter(),
                        ends: t.ends.into_iter(),
                        values: t.values,
                        pos: 0,
                    }
                })
                .collect();
            let mut heap: BinaryHeap<RunHead<R::Key>> = BinaryHeap::with_capacity(sources.len());
            for (task, source) in sources.iter_mut().enumerate() {
                if let Some(key) = source.keys.next() {
                    heap.push(RunHead { key, task });
                }
            }
            let mut scratch: Vec<R::Value> = Vec::new();
            while let Some(RunHead { key, task }) = heap.pop() {
                let src = &mut sources[task];
                let start = src.pos;
                let end = src.ends.next().expect("ends parallel to keys") as usize;
                src.pos = end;
                if let Some(next_key) = src.keys.next() {
                    heap.push(RunHead {
                        key: next_key,
                        task,
                    });
                }
                let key_continues = heap.peek().is_some_and(|head| head.key == key);
                if !key_continues && scratch.is_empty() {
                    // Sole-run key: reduce straight off the run, no copy.
                    reducer.reduce(&key, &sources[task].values[start..end], &mut |o| {
                        output.push(o);
                    });
                } else {
                    scratch.extend_from_slice(&sources[task].values[start..end]);
                    if !key_continues {
                        reducer.reduce(&key, &scratch, &mut |o| output.push(o));
                        scratch.clear();
                    }
                }
            }
        }
        ShuffleImpl::BTreeGrouping => {
            // Reference path, faithful to the seed: rebuild one merged
            // map, then reduce.
            let mut merged: BTreeMap<R::Key, Vec<R::Value>> = BTreeMap::new();
            for t in tasks {
                reduce_input_bytes += t.nominal_out_bytes;
                let mut vals = t.values.into_iter();
                let mut pos: usize = 0;
                for (k, end) in t.keys.into_iter().zip(t.ends) {
                    let end = end as usize;
                    merged
                        .entry(k)
                        .or_default()
                        .extend(vals.by_ref().take(end - pos));
                    pos = end;
                }
            }
            for (k, vs) in &merged {
                reducer.reduce(k, vs, &mut |o| output.push(o));
            }
        }
    }

    (output, reduce_input_bytes)
}

/// Runs the job scaled out over `splits.len()` parallel tasks.
///
/// The trace records:
///
/// * `phases.map` — the slowest task (barrier synchronization);
/// * `phases.shuffle/merge/reduce` — the serial merging portion, with the
///   shuffle paying the network incast penalty and the merge paying the
///   memory spill multiplier;
/// * `scale_out_overhead` — job setup, dispatch serialization, barrier
///   skew beyond the slowest task, and (with faults enabled) wasted
///   recovery work: the measured `Wo(n)`.
///
/// # Panics
///
/// Panics if `splits` is empty, the split count exceeds the cluster's
/// slots, the spec fails validation, or — with faults enabled — the run
/// hits an unrecoverable fault ([`try_run_scale_out`] returns those as
/// typed errors instead).
pub fn run_scale_out<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    try_run_scale_out(spec, mapper, reducer, splits)
        .unwrap_or_else(|e| panic!("unrecoverable fault: {e}"))
}

/// [`run_scale_out`] with fault-recovery failures surfaced as typed
/// errors: retries exhausted or the fail-fast wasted-work budget blown
/// ([`ClusterError`]). With the default (disabled) fault model this
/// never errs.
///
/// When the fault model is enabled, nominal task durations are passed
/// through [`resolve_faults`] before scheduling: recovery latency
/// (failed attempts, restarts, backoff, crash recomputation) lengthens
/// the affected tasks on the schedule, and the wasted *work* is charged
/// into `scale_out_overhead` — the paper's `Wo(n)` attribution for
/// fault tolerance. The resulting [`ipso_cluster::FaultSummary`] is
/// recorded on the trace.
///
/// # Errors
///
/// Returns [`ClusterError::RetriesExhausted`] or
/// [`ClusterError::WastedWorkExceeded`] from fault resolution.
///
/// # Panics
///
/// Panics if `splits` is empty, the split count exceeds the cluster's
/// slots, or the spec fails validation.
pub fn try_run_scale_out<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> Result<JobRun<R::Output>, ClusterError>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(!splits.is_empty(), "scale-out run needs at least one split");
    spec.validate().expect("invalid job spec");
    let slots = spec.cluster.total_slots() as usize;
    assert!(
        splits.len() <= slots,
        "one container per unit: {} splits exceed {} slots",
        splits.len(),
        slots
    );
    let n = splits.len() as u32;
    let mut rng = SimRng::seed_from(spec.seed ^ u64::from(n));

    // Real map-side computation, executed as a parallel wave.
    let mapped: Vec<MappedTask<M::Key, M::Value>> = execute_map_tasks(mapper, splits, spec);

    // Nominal task durations with straggler noise.
    let durations: Vec<f64> = splits
        .iter()
        .map(|s| spec.cost.map_time(s.nominal_bytes) * spec.straggler.multiplier(&mut rng))
        .collect();

    // Fault resolution: recovery latency lengthens the affected tasks
    // before scheduling; wasted work is charged into Wo below. Disabled
    // (the default) consumes zero RNG draws, keeping the straggler
    // stream — and therefore every output byte — identical to a
    // fault-free build.
    let executors = slots.min(splits.len());
    let fault_outcome: Option<FaultOutcome> = if spec.faults.enabled() {
        Some(resolve_faults(
            &durations,
            executors,
            &spec.faults,
            &spec.recovery,
            &mut rng,
        )?)
    } else {
        None
    };
    let effective: &[f64] = fault_outcome
        .as_ref()
        .map_or(&durations, |o| o.durations.as_slice());

    let schedule = run_wave_schedule(effective, executors, &spec.scheduler);
    let max_task = schedule.max_task_duration();

    // Serial merging portion. The shuffle is charged at the reducer's
    // service rate, as in the sequential execution: the paper inspected
    // the shuffle stage for scale-out-induced discrepancies and found
    // them negligible for the single-reducer MapReduce cases (the
    // network-level incast model lives in `ipso_cluster::NetworkModel`
    // and is exercised by the Spark engine's m-to-m shuffles).
    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = if spec.pipelined_shuffle {
        // Slow-start shuffle: the reducer's transfer server ingests each
        // task's output when that task completes; only the portion that
        // outlasts the map barrier remains on the critical path. The FIFO
        // server captures the queueing effect at the single reducer.
        let mut server = ipso_sim::FifoServer::new();
        let mut finish = ipso_sim::SimTime::ZERO;
        for (record, task) in schedule.records.iter().zip(&mapped) {
            let service = spec.cost.shuffle_time(task.nominal_out_bytes);
            let grant = server.submit(ipso_sim::SimTime::from_secs(record.end), service);
            finish = finish.max(grant.finish);
        }
        (finish.as_secs() - schedule.makespan).max(0.0)
    } else {
        spec.cost.shuffle_time(total_intermediate)
    };
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped, spec.shuffle);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    // Scale-out-only overheads: extra job setup versus the sequential
    // environment, the dispatch-induced stretch of the split phase, and
    // the work burned by fault recovery (the latency of recovery is
    // already inside the schedule; the *wasted work* is scale-out-induced
    // workload, since the sequential reference never re-executes).
    let setup_extra = (spec.scheduler.job_setup - spec.cost.seq_init).max(0.0);
    let barrier_stretch = (schedule.makespan - max_task).max(0.0);
    let wasted = fault_outcome
        .as_ref()
        .map_or(0.0, |o| o.summary.wasted_total());

    if ipso_obs::enabled() {
        record_scale_out_trace(
            spec,
            splits,
            effective,
            &schedule,
            total_intermediate,
            shuffle,
            merge,
            reduce,
            setup_extra + barrier_stretch,
            fault_outcome.as_ref(),
        );
    }

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: max_task,
            shuffle,
            merge,
            reduce,
        },
        tasks: schedule.records,
        scale_out_overhead: setup_extra + barrier_stretch + wasted,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
        faults: fault_outcome.map(|o| o.summary),
    };
    Ok(JobRun {
        trace,
        output,
        reduce_input_bytes,
    })
}

/// Emits the scale-out run's timeline and metrics into `ipso_obs`.
///
/// The timeline places the init span at virtual time zero, the split
/// phase (and its per-executor task spans) right after it, and the
/// serial shuffle/merge/reduce phases behind the barrier. Tasks whose
/// straggler multiplier reached the severe threshold get an instant
/// marker on their executor's track, and each recovery event (retry,
/// lost output, speculative copy) an instant at its task's finish.
#[allow(clippy::too_many_arguments)]
fn record_scale_out_trace<I>(
    spec: &JobSpec,
    splits: &[InputSplit<I>],
    durations: &[f64],
    schedule: &ipso_cluster::TaskSchedule,
    total_intermediate: u64,
    shuffle: f64,
    merge: f64,
    reduce: f64,
    overhead: f64,
    faults: Option<&FaultOutcome>,
) {
    let t0 = spec.cost.seq_init;
    ipso_obs::record_span("driver", "init", "mapreduce", 0.0, t0);
    ipso_obs::record_span("driver", "map", "mapreduce", t0, t0 + schedule.makespan);
    for (i, record) in schedule.records.iter().enumerate() {
        let track = format!("executor-{}", record.executor);
        ipso_obs::record_span(
            &track,
            &format!("task-{}", record.task_id),
            "mapreduce",
            t0 + record.start,
            t0 + record.end,
        );
        let nominal = spec.cost.map_time(splits[i].nominal_bytes);
        if nominal > 0.0 && durations[i] / nominal >= StragglerModel::SEVERE_MULTIPLIER {
            ipso_obs::record_instant(&track, "straggler", "mapreduce", t0 + record.end);
        }
    }
    let barrier = t0 + schedule.makespan;
    ipso_obs::record_span("driver", "shuffle", "mapreduce", barrier, barrier + shuffle);
    ipso_obs::record_span(
        "driver",
        "merge",
        "mapreduce",
        barrier + shuffle,
        barrier + shuffle + merge,
    );
    ipso_obs::record_span(
        "driver",
        "reduce",
        "mapreduce",
        barrier + shuffle + merge,
        barrier + shuffle + merge + reduce,
    );
    if let Some(outcome) = faults {
        for event in &outcome.summary.events {
            let record = &schedule.records[event.task as usize];
            let track = format!("executor-{}", record.executor);
            let name = match event.kind {
                ipso_cluster::RecoveryEventKind::AttemptFailed { .. } => "task-retry",
                ipso_cluster::RecoveryEventKind::OutputLost { .. } => "output-lost",
                ipso_cluster::RecoveryEventKind::Speculated { .. } => "speculative-copy",
            };
            ipso_obs::record_instant(&track, name, "mapreduce", t0 + record.end);
        }
    }
    ipso_obs::counter_add("mapreduce.jobs", 1);
    ipso_obs::counter_add("mapreduce.tasks_launched", durations.len() as u64);
    ipso_obs::counter_add("mapreduce.shuffle_bytes", total_intermediate);
    ipso_obs::gauge_add("overhead.scheduling_s", overhead);
}

/// Runs the paper's sequential job execution model: all tasks
/// back-to-back on one processing unit, then the merge. No dispatch
/// overhead, no incast, no stragglers (the expectation is charged via the
/// straggler model's mean multiplier so workloads stay calibrated).
///
/// # Panics
///
/// Panics if `splits` is empty or the spec fails validation.
pub fn run_sequential<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(
        !splits.is_empty(),
        "sequential run needs at least one split"
    );
    spec.validate().expect("invalid job spec");
    let n = splits.len() as u32;

    // "Sequential" refers to the simulated execution model, not the
    // host: the real record processing still uses the map wave.
    let mapped: Vec<MappedTask<M::Key, M::Value>> = execute_map_tasks(mapper, splits, spec);

    let mean_mult = spec.straggler.mean_multiplier();
    let map_total: f64 = splits
        .iter()
        .map(|s| spec.cost.map_time(s.nominal_bytes) * mean_mult)
        .sum();

    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = spec.cost.shuffle_time(total_intermediate);
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped, spec.shuffle);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: map_total,
            shuffle,
            merge,
            reduce,
        },
        tasks: Vec::new(),
        scale_out_overhead: 0.0,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
        faults: None,
    };
    JobRun {
        trace,
        output,
        reduce_input_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OutputScaling, Sizeable};

    /// A sort-style identity job over u64 records.
    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    /// A counting job with a saturating combiner.
    struct CountMap;
    impl Mapper for CountMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(input % 10, 1);
        }
        fn combine(&self, _key: &u64, values: &mut Vec<u64>) {
            let sum = values.iter().sum();
            values.clear();
            values.push(sum);
        }
        fn output_scaling(&self) -> OutputScaling {
            OutputScaling::Saturating
        }
    }
    struct SumReduce;
    impl Reducer for SumReduce {
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut((u64, u64))) {
            emit((*key, values.iter().sum()));
        }
    }

    fn splits(n: u32, records_per: u64) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..records_per)
                    .map(|j| (u64::from(i) * records_per + j) % 997)
                    .collect();
                let bytes = records.iter().map(Sizeable::size_bytes).sum::<u64>();
                InputSplit::new(records, bytes, bytes * 1000)
            })
            .collect()
    }

    #[test]
    fn identity_job_outputs_sorted_multiset() {
        let spec = JobSpec::emr("sort", 4);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(run.output.len(), 400);
        assert!(
            run.output.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
        // Identical multiset as inputs.
        let mut inputs: Vec<u64> = splits(4, 100).into_iter().flat_map(|s| s.records).collect();
        inputs.sort_unstable();
        assert_eq!(run.output, inputs);
    }

    #[test]
    fn sequential_and_parallel_produce_identical_output() {
        let spec = JobSpec::emr("count", 3);
        let par = run_scale_out(&spec, &CountMap, &SumReduce, &splits(3, 500));
        let seq = run_sequential(&spec, &CountMap, &SumReduce, &splits(3, 500));
        assert_eq!(par.output, seq.output);
        // All 10 residue classes, each with 150 total.
        assert_eq!(par.output.len(), 10);
        assert_eq!(par.output.iter().map(|(_, c)| c).sum::<u64>(), 1500);
    }

    #[test]
    fn speedup_numerator_exceeds_denominator() {
        let spec = JobSpec::emr("sort", 8);
        let s = splits(8, 200);
        let par = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &s);
        // Sequential map is the sum; parallel map is roughly one task.
        assert!(seq.trace.phases.map > 6.0 * par.trace.phases.map);
        assert!(seq.trace.phases.map < 9.0 * par.trace.phases.map);
    }

    #[test]
    fn proportional_scaling_amplifies_intermediate_bytes() {
        let spec = JobSpec::emr("sort", 2);
        let s = splits(2, 100);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        // Sample is 1/1000 of nominal: intermediate must scale up ~1000×.
        let sample: u64 = 2 * 100 * 16;
        assert!(run.reduce_input_bytes > 900 * sample / 2);
    }

    #[test]
    fn saturating_scaling_keeps_intermediate_small() {
        let spec = JobSpec::emr("count", 2);
        let run = run_scale_out(&spec, &CountMap, &SumReduce, &splits(2, 1000));
        // Post-combine: ≤ 10 keys per task, 16 bytes each.
        assert!(run.reduce_input_bytes <= 2 * 10 * 16);
    }

    #[test]
    fn scale_out_overhead_is_recorded() {
        let spec = JobSpec::emr("sort", 8);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert!(run.trace.scale_out_overhead > 0.0);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert_eq!(seq.trace.scale_out_overhead, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_change_stragglers() {
        let mut spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        spec.seed = 7;
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_ne!(a.trace.phases.map, b.trace.phases.map);
    }

    #[test]
    fn shuffle_impls_are_equivalent() {
        let mut spec = JobSpec::emr("sort", 4);
        let s = splits(4, 200);
        spec.shuffle = ShuffleImpl::SortMerge;
        let fast = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        spec.shuffle = ShuffleImpl::BTreeGrouping;
        let reference = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        assert_eq!(fast.output, reference.output);
        assert_eq!(fast.reduce_input_bytes, reference.reduce_input_bytes);
        assert_eq!(fast.trace, reference.trace);

        let mut spec = JobSpec::emr("count", 3);
        let s = splits(3, 500);
        spec.shuffle = ShuffleImpl::SortMerge;
        let fast = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        spec.shuffle = ShuffleImpl::BTreeGrouping;
        let reference = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        assert_eq!(fast.output, reference.output);
        assert_eq!(fast.reduce_input_bytes, reference.reduce_input_bytes);
        assert_eq!(fast.trace, reference.trace);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let s = splits(6, 300);
        let mut spec = JobSpec::emr("count", 6);
        let baseline = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        let baseline_seq = run_sequential(&spec, &CountMap, &SumReduce, &s);
        for threads in [0, 2, 3, 8] {
            spec.engine.threads = threads;
            let par = run_scale_out(&spec, &CountMap, &SumReduce, &s);
            assert_eq!(par.output, baseline.output, "threads = {threads}");
            assert_eq!(par.trace, baseline.trace, "threads = {threads}");
            assert_eq!(par.reduce_input_bytes, baseline.reduce_input_bytes);
            let seq = run_sequential(&spec, &CountMap, &SumReduce, &s);
            assert_eq!(seq.output, baseline_seq.output, "threads = {threads}");
            assert_eq!(seq.trace, baseline_seq.trace, "threads = {threads}");
        }
    }

    #[test]
    fn traces_satisfy_structural_invariants() {
        let spec = JobSpec::emr("sort", 8);
        let s = splits(8, 100);
        run_scale_out(&spec, &IdMap, &IdReduce, &s)
            .trace
            .check_invariants()
            .unwrap();
        run_sequential(&spec, &IdMap, &IdReduce, &s)
            .trace
            .check_invariants()
            .unwrap();
    }

    #[test]
    fn disabled_faults_never_touch_the_trace() {
        let spec = JobSpec::emr("sort", 4);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert!(run.trace.faults.is_none());
        assert_eq!(
            run.trace,
            run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100)).trace
        );
    }

    #[test]
    fn fault_injection_is_deterministic_and_charged_into_overhead() {
        let baseline = run_scale_out(&JobSpec::emr("sort", 8), &IdMap, &IdReduce, &splits(8, 50));
        let mut spec = JobSpec::emr("sort", 8);
        spec.faults = ipso_cluster::FaultModel::flaky(0.3);
        spec.recovery.max_attempts = 8;
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert_eq!(a.trace, b.trace);
        a.trace.check_invariants().unwrap();
        let summary = a.trace.faults.as_ref().expect("faults enabled");
        assert!(summary.retries > 0, "p = 0.3 over 8 tasks should retry");
        assert!(summary.wasted_total() > 0.0);
        // Wo now carries the wasted work (plus setup and barrier terms,
        // which the lengthened tasks reshape) and exceeds the fault-free
        // overhead.
        assert!(
            a.trace.scale_out_overhead >= summary.wasted_total(),
            "wasted recovery work must be charged into Wo"
        );
        assert!(a.trace.scale_out_overhead > baseline.trace.scale_out_overhead);
        // Outputs are the real computation and never depend on injected
        // faults — only timing does.
        assert_eq!(a.output, baseline.output);
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        let s = splits(6, 100);
        let mut spec = JobSpec::emr("sort", 6);
        spec.faults = ipso_cluster::FaultModel::flaky(0.25);
        spec.recovery.max_attempts = 8;
        spec.recovery.speculation = true;
        let baseline = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        for threads in [0, 2, 5] {
            spec.engine.threads = threads;
            let run = run_scale_out(&spec, &IdMap, &IdReduce, &s);
            assert_eq!(run.trace, baseline.trace, "threads = {threads}");
            assert_eq!(run.output, baseline.output, "threads = {threads}");
        }
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        let mut spec = JobSpec::emr("sort", 2);
        spec.faults = ipso_cluster::FaultModel::flaky(1.0);
        let err = try_run_scale_out(&spec, &IdMap, &IdReduce, &splits(2, 10))
            .expect_err("certain failure must exhaust retries");
        assert!(matches!(
            err,
            ClusterError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "unrecoverable fault")]
    fn panicking_wrapper_reports_unrecoverable_faults() {
        let mut spec = JobSpec::emr("sort", 2);
        spec.faults = ipso_cluster::FaultModel::flaky(1.0);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &splits(2, 10));
    }

    #[test]
    fn fail_fast_budget_aborts_the_run() {
        let mut spec = JobSpec::emr("sort", 4);
        spec.faults = ipso_cluster::FaultModel::flaky(0.5);
        spec.recovery.max_attempts = 16;
        spec.recovery.max_wasted_fraction = 1e-6;
        let err = try_run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 10))
            .expect_err("tiny budget must trip fail-fast");
        assert!(matches!(err, ClusterError::WastedWorkExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_splits_than_slots_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &splits(3, 10));
    }

    #[test]
    #[should_panic(expected = "at least one split")]
    fn empty_splits_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &[]);
    }
}

#[cfg(test)]
mod pipelined_shuffle_tests {
    use super::*;
    use crate::api::{Mapper, Reducer};

    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    fn splits(n: u32) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..64).map(|j| u64::from(i) * 64 + j).collect();
                InputSplit::new(records, 64 * 8, 128 * 1024 * 1024)
            })
            .collect()
    }

    #[test]
    fn pipelining_shrinks_the_visible_shuffle() {
        let mut plain = JobSpec::emr("sort", 16);
        plain.pipelined_shuffle = false;
        let mut piped = plain.clone();
        piped.pipelined_shuffle = true;
        let s = splits(16);
        let a = run_scale_out(&plain, &IdMap, &IdReduce, &s);
        let b = run_scale_out(&piped, &IdMap, &IdReduce, &s);
        assert!(
            b.trace.phases.shuffle < a.trace.phases.shuffle,
            "pipelined {} vs barrier {}",
            b.trace.phases.shuffle,
            a.trace.phases.shuffle
        );
        // Outputs are identical either way — pipelining is timing-only.
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn pipelined_shuffle_never_negative_and_bounded_by_total() {
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        assert!(run.trace.phases.shuffle >= 0.0);
        assert!(run.trace.phases.shuffle <= total + 1e-9);
    }

    #[test]
    fn queueing_effect_appears_when_transfers_outpace_the_reducer() {
        // Make the reducer's shuffle service very slow: transfers queue
        // and the remainder after the barrier approaches the full total.
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        spec.cost.shuffle_rate = 1.0e6; // 1 MB/s reducer ingest
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        // Nearly nothing could be hidden behind the (short) map phase.
        assert!(run.trace.phases.shuffle > 0.9 * total - run.trace.phases.map - 1.0);
    }
}
