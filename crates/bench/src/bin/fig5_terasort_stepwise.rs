//! Fig. 5 — TeraSort's step-wise internal scaling factor.
//!
//! The reducer's input (128 MB × n) overflows its ~2 GB memory near
//! n ≈ 15; the internal scaling factor bursts and its slope increases.
//! The binary measures `IN(n)`, fits the two regimes with the segmented
//! regression, and reports the slopes the paper quotes (≈ 0.15 → ≈ 0.25,
//! relative to the same normalization).

use ipso_bench::{SweepRunner, Table};
use ipso_fit::fit_two_segment;
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::terasort;

fn main() {
    let trace_out = ipso_bench::trace_out_from_env();
    let runner = SweepRunner::from_env();
    let ns: Vec<u32> = (1..=40).collect();
    let points = runner
        .map(ns, |_ctx, n| terasort::sweep(&[n]).points)
        .into_iter()
        .flatten()
        .collect();
    let sweep = ScalingSweep { points };
    let measurements = sweep.measurements();
    let ws1 = measurements[0].seq_serial_work;

    let mut table = Table::new("fig5_terasort_stepwise", &["n", "in_factor"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for m in &measurements {
        let in_factor = m.seq_serial_work / ws1;
        table.push(vec![f64::from(m.n), in_factor]);
        xs.push(f64::from(m.n));
        ys.push(in_factor);
    }
    table.emit();

    let fit = fit_two_segment(&xs, &ys, 4).expect("segmented fit");
    println!(
        "two-regime fit: breakpoint n = {:.0} (paper: ~15, reducer memory 2 GB / 128 MB shards)",
        fit.breakpoint
    );
    println!(
        "  IN'(n) slope = {:.3} (pre-spill)   IN(n) slope = {:.3} (post-spill)",
        fit.left.slope, fit.right.slope
    );
    println!(
        "  slope ratio = {:.2} (paper: 0.25/0.15 = 1.67), burst at switch = {:.1}%",
        fit.right.slope / fit.left.slope,
        100.0 * (fit.predict(fit.breakpoint + 1.0) - fit.left.predict(fit.breakpoint + 1.0))
            / fit.left.predict(fit.breakpoint + 1.0)
    );
    assert!(
        fit.slope_increases(),
        "expected the post-spill regime to grow faster"
    );
    trace_out.finish();
}
