//! The `ipso` command-line tool. All logic lives in
//! [`ipso_repro::cli`]; this shell only handles process I/O.

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match ipso_repro::cli::run(&raw) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
