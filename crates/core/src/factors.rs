//! Scaling-factor functions.
//!
//! IPSO describes a workload by three functions of the scale-out degree
//! `n` (paper Eqs. 3–6):
//!
//! * `EX(n)` — **external** scaling of the parallelizable portion,
//!   `Wp(n) = Wp(1)·EX(n)`, with `EX(1) = 1`;
//! * `IN(n)` — **internal** scaling of the serial portion,
//!   `Ws(n) = Ws(1)·IN(n)`, with `IN(1) = 1`;
//! * `q(n)` — the **scale-out-induced** factor,
//!   `Wo(n) = (Wp(n)/n)·q(n)`, with `q(1) = 0` and `q` non-decreasing.
//!
//! [`ScalingFactor`] is a small function language covering every shape the
//! paper uses: constants, lines, power laws, polynomials, the two-segment
//! step of TeraSort's `IN(n)` (Fig. 5) and tabulated measurements.

use crate::ModelError;

/// A scaling factor: a function `f(n)` of the scale-out degree.
///
/// # Example
///
/// ```
/// use ipso::factors::ScalingFactor;
///
/// // The paper's fitted TeraSort internal scaling: 0.23·n + 2.72 for the
/// // post-spill regime.
/// let f = ScalingFactor::affine(0.23, 2.72);
/// assert!((f.eval(100.0) - 25.72).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingFactor {
    /// `f(n) = value` for all `n`.
    Constant(f64),
    /// `f(n) = slope·n + intercept`.
    Affine {
        /// Slope of the line.
        slope: f64,
        /// Intercept of the line.
        intercept: f64,
    },
    /// `f(n) = coefficient · n^exponent`.
    Power {
        /// Multiplicative coefficient.
        coefficient: f64,
        /// Exponent of `n`.
        exponent: f64,
    },
    /// `f(n) = coefficient · (n^exponent − 1)`: behaves like a power law
    /// asymptotically while vanishing exactly at `n = 1` — the natural
    /// form for scale-out-induced factors (`q(1) = 0` by definition).
    ShiftedPower {
        /// Multiplicative coefficient (the paper's β).
        coefficient: f64,
        /// Exponent of `n` (the paper's γ).
        exponent: f64,
    },
    /// `f(n) = Σ coefficients[k] · n^k` (ascending powers).
    Polynomial(Vec<f64>),
    /// Two linear regimes switching at `breakpoint` (TeraSort's step-wise
    /// internal scaling, paper Fig. 5).
    TwoSegment {
        /// Values of `n` at or below this use the left segment.
        breakpoint: f64,
        /// Left segment `(slope, intercept)`.
        left: (f64, f64),
        /// Right segment `(slope, intercept)`.
        right: (f64, f64),
    },
    /// Piecewise-linear interpolation through measured `(n, f(n))` points,
    /// extrapolating with the last segment's slope. Points must be sorted
    /// by `n` with at least two entries.
    Table(Vec<(f64, f64)>),
}

impl ScalingFactor {
    /// `f(n) = 1` — the traditional laws' internal scaling.
    pub fn one() -> Self {
        ScalingFactor::Constant(1.0)
    }

    /// `f(n) = 0` — absence of scale-out-induced overhead.
    pub fn zero() -> Self {
        ScalingFactor::Constant(0.0)
    }

    /// `f(n) = n` — the fixed-time external scaling of Gustafson's law.
    pub fn linear() -> Self {
        ScalingFactor::Affine {
            slope: 1.0,
            intercept: 0.0,
        }
    }

    /// `f(n) = slope·n + intercept`.
    pub fn affine(slope: f64, intercept: f64) -> Self {
        ScalingFactor::Affine { slope, intercept }
    }

    /// `f(n) = coefficient·n^exponent` — the asymptotic forms of
    /// Eqs. 14–15.
    pub fn power(coefficient: f64, exponent: f64) -> Self {
        ScalingFactor::Power {
            coefficient,
            exponent,
        }
    }

    /// A scale-out-induced factor `q(n) = β·(n^γ − 1)`, which satisfies the
    /// boundary condition `q(1) = 0` exactly while behaving like `β·n^γ`
    /// asymptotically (the paper works with the highest-order term only).
    pub fn induced(beta: f64, gamma: f64) -> Self {
        ScalingFactor::ShiftedPower {
            coefficient: beta,
            exponent: gamma,
        }
    }

    /// Evaluates the factor at scale-out degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if a [`ScalingFactor::Table`] has fewer than two points or is
    /// not sorted by `n` (validated at model build time).
    pub fn eval(&self, n: f64) -> f64 {
        match self {
            ScalingFactor::Constant(v) => *v,
            ScalingFactor::Affine { slope, intercept } => slope * n + intercept,
            ScalingFactor::Power {
                coefficient,
                exponent,
            } => coefficient * n.powf(*exponent),
            ScalingFactor::ShiftedPower {
                coefficient,
                exponent,
            } => coefficient * (n.powf(*exponent) - 1.0),
            ScalingFactor::Polynomial(coeffs) => {
                coeffs.iter().rev().fold(0.0, |acc, &c| acc * n + c)
            }
            ScalingFactor::TwoSegment {
                breakpoint,
                left,
                right,
            } => {
                let (slope, intercept) = if n <= *breakpoint { *left } else { *right };
                slope * n + intercept
            }
            ScalingFactor::Table(points) => {
                assert!(points.len() >= 2, "table factor needs at least two points");
                // Clamped/extrapolated linear interpolation.
                if n <= points[0].0 {
                    return interpolate(points[0], points[1], n);
                }
                for pair in points.windows(2) {
                    if n <= pair[1].0 {
                        return interpolate(pair[0], pair[1], n);
                    }
                }
                let last = points.len() - 1;
                interpolate(points[last - 1], points[last], n)
            }
        }
    }

    /// Returns a normalized copy scaled so that `f(1) = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFactor`] if `f(1)` is zero or
    /// non-finite.
    pub fn normalized(&self) -> Result<ScalingFactor, ModelError> {
        let at_one = self.eval(1.0);
        if !at_one.is_finite() || at_one.abs() < 1e-300 {
            return Err(ModelError::InvalidFactor {
                factor: "scaling",
                reason: "cannot normalize: f(1) is zero or non-finite",
            });
        }
        Ok(self.scaled(1.0 / at_one))
    }

    /// Returns a copy multiplied by `k`.
    pub fn scaled(&self, k: f64) -> ScalingFactor {
        match self {
            ScalingFactor::Constant(v) => ScalingFactor::Constant(v * k),
            ScalingFactor::Affine { slope, intercept } => ScalingFactor::Affine {
                slope: slope * k,
                intercept: intercept * k,
            },
            ScalingFactor::Power {
                coefficient,
                exponent,
            } => ScalingFactor::Power {
                coefficient: coefficient * k,
                exponent: *exponent,
            },
            ScalingFactor::ShiftedPower {
                coefficient,
                exponent,
            } => ScalingFactor::ShiftedPower {
                coefficient: coefficient * k,
                exponent: *exponent,
            },
            ScalingFactor::Polynomial(coeffs) => {
                ScalingFactor::Polynomial(coeffs.iter().map(|c| c * k).collect())
            }
            ScalingFactor::TwoSegment {
                breakpoint,
                left,
                right,
            } => ScalingFactor::TwoSegment {
                breakpoint: *breakpoint,
                left: (left.0 * k, left.1 * k),
                right: (right.0 * k, right.1 * k),
            },
            ScalingFactor::Table(points) => {
                ScalingFactor::Table(points.iter().map(|&(n, v)| (n, v * k)).collect())
            }
        }
    }

    /// The asymptotic order of growth: the `(coefficient, exponent)` pair of
    /// the highest-order term, i.e. `f(n) ≈ c·n^e` as `n → ∞`
    /// (paper Eqs. 14–15 keep only this term).
    pub fn leading_term(&self) -> (f64, f64) {
        match self {
            ScalingFactor::Constant(v) => (*v, 0.0),
            ScalingFactor::Affine { slope, intercept } => {
                if *slope != 0.0 {
                    (*slope, 1.0)
                } else {
                    (*intercept, 0.0)
                }
            }
            ScalingFactor::Power {
                coefficient,
                exponent,
            } => (*coefficient, *exponent),
            ScalingFactor::ShiftedPower {
                coefficient,
                exponent,
            } => (*coefficient, *exponent),
            ScalingFactor::Polynomial(coeffs) => {
                for (k, &c) in coeffs.iter().enumerate().rev() {
                    if c != 0.0 {
                        return (c, k as f64);
                    }
                }
                (0.0, 0.0)
            }
            ScalingFactor::TwoSegment { right, .. } => {
                if right.0 != 0.0 {
                    (right.0, 1.0)
                } else {
                    (right.1, 0.0)
                }
            }
            ScalingFactor::Table(points) => {
                // Slope of the final segment determines the extrapolation.
                let last = points.len() - 1;
                let slope =
                    (points[last].1 - points[last - 1].1) / (points[last].0 - points[last - 1].0);
                if slope.abs() > 1e-12 {
                    (slope, 1.0)
                } else {
                    (points[last].1, 0.0)
                }
            }
        }
    }

    /// Validates structural invariants (table sortedness and size). Called
    /// by the model builder.
    pub(crate) fn validate_structure(&self) -> Result<(), ModelError> {
        if let ScalingFactor::Table(points) = self {
            if points.len() < 2 {
                return Err(ModelError::InvalidFactor {
                    factor: "scaling",
                    reason: "table factor needs at least two points",
                });
            }
            if points.windows(2).any(|p| p[1].0 <= p[0].0) {
                return Err(ModelError::InvalidFactor {
                    factor: "scaling",
                    reason: "table points must be strictly increasing in n",
                });
            }
            if points
                .iter()
                .any(|&(n, v)| !n.is_finite() || !v.is_finite())
            {
                return Err(ModelError::InvalidFactor {
                    factor: "scaling",
                    reason: "table points must be finite",
                });
            }
        }
        Ok(())
    }
}

fn interpolate(a: (f64, f64), b: (f64, f64), n: f64) -> f64 {
    let t = (n - a.0) / (b.0 - a.0);
    a.1 + t * (b.1 - a.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_linear_shapes() {
        assert_eq!(ScalingFactor::one().eval(100.0), 1.0);
        assert_eq!(ScalingFactor::zero().eval(100.0), 0.0);
        assert_eq!(ScalingFactor::linear().eval(17.0), 17.0);
    }

    #[test]
    fn power_evaluates() {
        let f = ScalingFactor::power(0.5, 2.0);
        assert!((f.eval(4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn polynomial_uses_horner() {
        let f = ScalingFactor::Polynomial(vec![1.0, -2.0, 3.0]);
        // 1 - 2·2 + 3·4 = 9
        assert!((f.eval(2.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn two_segment_switches_at_breakpoint() {
        let f = ScalingFactor::TwoSegment {
            breakpoint: 15.0,
            left: (0.15, 0.85),
            right: (0.25, 0.8),
        };
        assert!((f.eval(10.0) - 2.35).abs() < 1e-12);
        assert!((f.eval(20.0) - 5.8).abs() < 1e-12);
    }

    #[test]
    fn table_interpolates_and_extrapolates() {
        let f = ScalingFactor::Table(vec![(1.0, 1.0), (2.0, 3.0), (4.0, 7.0)]);
        assert!((f.eval(1.5) - 2.0).abs() < 1e-12);
        assert!((f.eval(3.0) - 5.0).abs() < 1e-12);
        // Extrapolation continues the last segment (slope 2).
        assert!((f.eval(6.0) - 11.0).abs() < 1e-12);
        // Below the first point extrapolates the first segment.
        assert!((f.eval(0.5) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn induced_with_integer_gamma_is_exact_at_one() {
        let q = ScalingFactor::induced(0.01, 2.0);
        assert!(q.eval(1.0).abs() < 1e-15, "q(1) = {}", q.eval(1.0));
        assert!((q.eval(10.0) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn induced_leading_term_matches_gamma() {
        let q = ScalingFactor::induced(0.3, 2.0);
        let (c, e) = q.leading_term();
        assert!((c - 0.3).abs() < 1e-12);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_forces_unit_value_at_one() {
        let f = ScalingFactor::affine(0.36, -0.11); // f(1) = 0.25
        let g = f.normalized().unwrap();
        assert!((g.eval(1.0) - 1.0).abs() < 1e-12);
        assert!((g.eval(2.0) - f.eval(2.0) / 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalization_rejects_zero_at_one() {
        let f = ScalingFactor::affine(1.0, -1.0); // f(1) = 0
        assert!(f.normalized().is_err());
    }

    #[test]
    fn leading_terms() {
        assert_eq!(ScalingFactor::one().leading_term(), (1.0, 0.0));
        assert_eq!(ScalingFactor::linear().leading_term(), (1.0, 1.0));
        assert_eq!(ScalingFactor::power(2.0, 0.5).leading_term(), (2.0, 0.5));
        assert_eq!(
            ScalingFactor::Polynomial(vec![1.0, 2.0, 0.0]).leading_term(),
            (2.0, 1.0)
        );
        let t = ScalingFactor::Table(vec![(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(t.leading_term(), (1.0, 0.0));
    }

    #[test]
    fn table_structure_validation() {
        let bad = ScalingFactor::Table(vec![(1.0, 1.0)]);
        assert!(bad.validate_structure().is_err());
        let unsorted = ScalingFactor::Table(vec![(2.0, 1.0), (1.0, 2.0)]);
        assert!(unsorted.validate_structure().is_err());
        let good = ScalingFactor::Table(vec![(1.0, 1.0), (2.0, 2.0)]);
        assert!(good.validate_structure().is_ok());
    }

    #[test]
    fn scaled_multiplies_everything() {
        let f = ScalingFactor::TwoSegment {
            breakpoint: 5.0,
            left: (1.0, 0.0),
            right: (2.0, 1.0),
        };
        let g = f.scaled(3.0);
        assert!((g.eval(4.0) - 12.0).abs() < 1e-12);
        assert!((g.eval(6.0) - 39.0).abs() < 1e-12);
    }
}
