//! Lowering Spark jobs to the unified runtime's task-graph IR.
//!
//! The Spark engines are now *planners*: they translate a
//! [`SparkJobSpec`] into a [`TaskGraph`] and hand timing to
//! [`ipso_cluster::execute`], keeping only the framework-specific clock
//! walk (broadcast serialization, shuffle boundaries, event logs).
//!
//! Two lowerings exist, matching the two execution shapes:
//!
//! * [`lower_chain`] — the sequential stage chain of
//!   [`crate::engine::run_job`]: one graph stage per DAG stage, each
//!   depending on its predecessor, with uniform ideal tasks
//!   (`base × mem_mult`), first-wave costs as fixed extras, and
//!   [`LineageMode::RecomputeParents`] so a node crash replays the
//!   crashed node's parent partitions — Spark's RDD recovery, expressed
//!   as a graph property;
//! * [`lower_levels`] — the Dryad-style level DAG of
//!   [`crate::dag::run_dag`]: stages grouped into dependency levels, the
//!   members' tasks interleaved round-robin into one graph stage per
//!   level with a shared first-wave budget, explicit per-task ideal
//!   durations and no lineage (the level-to-member mapping makes
//!   per-stage replay ambiguous).
//!
//! Per-member broadcasts stay in the engines: the chain adds one
//! broadcast per stage (carried as the stage's `pre_overhead`), while
//! the level walk adds each member's broadcast to the clock
//! *individually* — floating-point association is part of the
//! byte-compatibility contract.

use ipso_cluster::{IdealReference, LineageMode, StageNode, TaskGraph};

use crate::dag::assign_levels;
use crate::engine::INPUT_READ_RATE;
use crate::job::SparkJobSpec;
use crate::stage::StageSpec;

/// The nominal per-task time of `stage` before noise: compute plus input
/// read, times the memory-pressure spill multiplier.
fn nominal_task_time(spec: &SparkJobSpec, stage: &StageSpec) -> f64 {
    let m = spec.parallelism;
    // Memory pressure: tasks per executor × cached partition size.
    let tasks_per_exec = (stage.tasks as f64 / m as f64).ceil();
    let working_set = if stage.caches_input {
        (stage.input_bytes_per_task as f64 * tasks_per_exec) as u64
    } else {
        stage.input_bytes_per_task
    };
    let mem_mult = if working_set > spec.executor_memory {
        spec.spill_slowdown
    } else {
        1.0
    };
    let base = stage.task_compute + stage.input_bytes_per_task as f64 / INPUT_READ_RATE;
    base * mem_mult
}

/// Lowers the sequential stage chain of `spec` into a [`TaskGraph`]:
/// one graph stage per DAG stage, in order, each depending on its
/// predecessor.
pub fn lower_chain(spec: &SparkJobSpec) -> TaskGraph {
    let m = spec.parallelism;
    let stages = spec
        .stages
        .iter()
        .enumerate()
        .map(|(k, stage)| {
            let nominal = nominal_task_time(spec, stage);
            let first_wave = m.min(stage.tasks) as usize;
            StageNode {
                name: stage.name.clone(),
                noisy_base: vec![nominal; stage.tasks as usize],
                fixed_extra: (0..stage.tasks as usize)
                    .map(|i| {
                        if i < first_wave {
                            spec.first_wave_cost
                        } else {
                            0.0
                        }
                    })
                    .collect(),
                deps: if k > 0 { vec![k - 1] } else { Vec::new() },
                pre_overhead: spec.network.broadcast_time(stage.broadcast_bytes, m),
                // The overhead yardstick: an idealized schedule with free
                // dispatch, no first-wave cost and no noise.
                ideal: IdealReference::Uniform { duration: nominal },
                lineage: LineageMode::RecomputeParents,
            }
        })
        .collect();
    TaskGraph {
        job: spec.name.clone(),
        stages,
        // Executor launch is serialized at the driver: pure scale-out-
        // induced time linear in m.
        setup_overhead: f64::from(m) * spec.executor_launch_cost,
        no_straggler_reference: true,
    }
}

/// Lowers `spec` with `(from, to)` stage edges into a level DAG: one
/// graph stage per dependency level, the members' tasks interleaved
/// round-robin with a shared first-wave budget. Returns the graph and
/// the member stage indices of each level.
///
/// # Errors
///
/// Returns DAG validation errors from [`assign_levels`].
pub fn lower_levels(
    spec: &SparkJobSpec,
    edges: &[(usize, usize)],
) -> Result<(TaskGraph, Vec<Vec<usize>>), String> {
    let levels = assign_levels(spec.stages.len(), edges)?;
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let m = spec.parallelism;

    let mut members_per_level: Vec<Vec<usize>> = Vec::with_capacity(max_level + 1);
    let mut nodes: Vec<StageNode> = Vec::with_capacity(max_level + 1);
    for level in 0..=max_level {
        let members: Vec<usize> = (0..spec.stages.len())
            .filter(|&s| levels[s] == level)
            .collect();

        // Round-robin over member stages so concurrent stages share the
        // executors fairly; the first-wave budget spans the whole level.
        let mut noisy_base: Vec<f64> = Vec::new();
        let mut fixed_extra: Vec<f64> = Vec::new();
        let mut ideal: Vec<f64> = Vec::new();
        let mut cursors: Vec<u32> = vec![0; members.len()];
        let mut first_wave_budget =
            m.min(members.iter().map(|&s| spec.stages[s].tasks).sum::<u32>()) as usize;
        loop {
            let mut emitted = false;
            for (mi, &s) in members.iter().enumerate() {
                let stage = &spec.stages[s];
                if cursors[mi] < stage.tasks {
                    cursors[mi] += 1;
                    emitted = true;
                    let nominal = nominal_task_time(spec, stage);
                    let fw = if first_wave_budget > 0 {
                        first_wave_budget -= 1;
                        spec.first_wave_cost
                    } else {
                        0.0
                    };
                    noisy_base.push(nominal);
                    fixed_extra.push(fw);
                    ideal.push(nominal);
                }
            }
            if !emitted {
                break;
            }
        }

        nodes.push(StageNode {
            name: format!("level-{level}"),
            noisy_base,
            fixed_extra,
            deps: if level > 0 {
                vec![level - 1]
            } else {
                Vec::new()
            },
            // Broadcasts are serialized per member and stay in the walk:
            // each member's time is added to the clock individually.
            pre_overhead: 0.0,
            ideal: IdealReference::Tasks(ideal),
            // Lineage recomputation across levels is modeled only by the
            // sequential chain engine, where the stage-to-predecessor
            // mapping is unambiguous.
            lineage: LineageMode::None,
        });
        members_per_level.push(members);
    }

    Ok((
        TaskGraph {
            job: spec.name.clone(),
            stages: nodes,
            setup_overhead: f64::from(m) * spec.executor_launch_cost,
            no_straggler_reference: false,
        },
        members_per_level,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> SparkJobSpec {
        SparkJobSpec::emr("t", 16, 4)
            .stage(StageSpec::new("load", 16).with_task_compute(0.5))
            .stage(StageSpec::new("train", 8).with_task_compute(1.0))
    }

    #[test]
    fn chain_lowering_is_one_node_per_stage() {
        let g = lower_chain(&job());
        g.validate().unwrap();
        assert_eq!(g.stages.len(), 2);
        assert_eq!(g.stages[0].deps, Vec::<usize>::new());
        assert_eq!(g.stages[1].deps, vec![0]);
        assert_eq!(g.total_tasks(), 24);
        assert!(g.no_straggler_reference);
        assert_eq!(g.stages[1].lineage, LineageMode::RecomputeParents);
    }

    #[test]
    fn chain_first_wave_pays_the_fixed_cost() {
        let spec = job();
        let g = lower_chain(&spec);
        // m = 4: the first four tasks of each stage pay first_wave_cost.
        for node in &g.stages {
            for (i, &fw) in node.fixed_extra.iter().enumerate() {
                let expected = if i < 4 { spec.first_wave_cost } else { 0.0 };
                assert_eq!(fw, expected, "task {i} of {}", node.name);
            }
        }
    }

    #[test]
    fn level_lowering_interleaves_members() {
        let spec = job();
        let (g, members) = lower_levels(&spec, &[]).unwrap();
        g.validate().unwrap();
        // No edges: both stages in level 0, tasks interleaved.
        assert_eq!(g.stages.len(), 1);
        assert_eq!(members, vec![vec![0, 1]]);
        assert_eq!(g.stages[0].tasks(), 24);
        assert_eq!(g.stages[0].lineage, LineageMode::None);
        // Round-robin: tasks alternate 0.5 / 1.0 while both have tasks.
        assert_eq!(g.stages[0].noisy_base[0], 0.5);
        assert_eq!(g.stages[0].noisy_base[1], 1.0);
    }

    #[test]
    fn level_lowering_respects_edges() {
        let spec = job();
        let (g, members) = lower_levels(&spec, &[(0, 1)]).unwrap();
        g.validate().unwrap();
        assert_eq!(g.stages.len(), 2);
        assert_eq!(members, vec![vec![0], vec![1]]);
        assert_eq!(g.stages[1].deps, vec![0]);
        assert!(lower_levels(&spec, &[(0, 1), (1, 0)]).is_err());
    }

    #[test]
    fn level_first_wave_budget_is_shared() {
        let spec = job();
        let (g, _) = lower_levels(&spec, &[]).unwrap();
        let paying = g.stages[0]
            .fixed_extra
            .iter()
            .filter(|&&fw| fw > 0.0)
            .count();
        assert_eq!(paying, 4, "budget is m, shared across members");
        // And it is the *first* m interleaved tasks that pay.
        assert!(g.stages[0].fixed_extra[..4].iter().all(|&fw| fw > 0.0));
    }
}
