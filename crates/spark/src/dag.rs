//! General stage DAGs (Dryad-style).
//!
//! [`run_job`](crate::engine::run_job) executes stages strictly in
//! sequence — the common Spark shape where each stage consumes its
//! predecessor's shuffle. Frameworks like Dryad (the paper's reference
//! \[3\]) schedule general DAGs where *independent* stages run
//! concurrently on the same executors. [`run_dag`] provides that:
//! stages are grouped into dependency levels; stages within a level share
//! the `m` executors (their tasks interleave round-robin into the same
//! wave schedule), and a barrier separates levels.
//!
//! Everything else matches the sequential engine: serialized driver
//! broadcasts, first-wave costs, memory pressure, incast shuffles, and
//! the same JSON event log.

use ipso_cluster::runtime::RuntimeConfig;
use ipso_cluster::{FaultSummary, SchedulerPolicy};
use ipso_sim::SimRng;

use crate::engine::SparkRun;
use crate::eventlog::{write_event_log, SparkEvent};
use crate::job::SparkJobSpec;
use crate::lower::lower_levels;

/// Groups the stages of `spec` into dependency levels.
///
/// `edges` are `(from, to)` stage-index pairs meaning `to` consumes
/// `from`'s output. Returns the level of each stage (level 0 has no
/// dependencies).
///
/// # Errors
///
/// Rejects out-of-range indices, self-edges and cycles.
pub fn assign_levels(num_stages: usize, edges: &[(usize, usize)]) -> Result<Vec<usize>, String> {
    for &(a, b) in edges {
        if a >= num_stages || b >= num_stages {
            return Err(format!(
                "edge ({a}, {b}) out of range for {num_stages} stages"
            ));
        }
        if a == b {
            return Err(format!("self-edge on stage {a}"));
        }
    }
    // Longest-path levels via Kahn's algorithm.
    let mut indegree = vec![0usize; num_stages];
    for &(_, b) in edges {
        indegree[b] += 1;
    }
    let mut level = vec![0usize; num_stages];
    let mut queue: Vec<usize> = (0..num_stages).filter(|&s| indegree[s] == 0).collect();
    let mut visited = 0;
    while let Some(s) = queue.pop() {
        visited += 1;
        for &(a, b) in edges {
            if a == s {
                level[b] = level[b].max(level[s] + 1);
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    queue.push(b);
                }
            }
        }
    }
    if visited != num_stages {
        return Err("stage dependency graph contains a cycle".into());
    }
    Ok(level)
}

/// Executes `spec.stages` as a DAG with the given `(from, to)` edges.
///
/// # Errors
///
/// Returns DAG validation errors from [`assign_levels`].
///
/// # Panics
///
/// Panics if `spec` itself fails validation.
///
/// # Example
///
/// ```
/// use ipso_spark::{run_dag, run_job, SparkJobSpec, StageSpec};
///
/// # fn main() -> Result<(), String> {
/// // A diamond: two independent 8-task stages feed an aggregation.
/// let job = SparkJobSpec::emr("diamond", 8, 8)
///     .stage(StageSpec::new("left", 8).with_task_compute(1.0))
///     .stage(StageSpec::new("right", 8).with_task_compute(1.0))
///     .stage(StageSpec::new("join", 4).with_task_compute(0.2));
/// let dag = run_dag(&job, &[(0, 2), (1, 2)])?;
/// let chain = run_job(&job); // same stages, forced sequential
/// assert!(dag.total_time <= chain.total_time);
/// # Ok(())
/// # }
/// ```
pub fn run_dag(spec: &SparkJobSpec, edges: &[(usize, usize)]) -> Result<SparkRun, String> {
    spec.validate()?;
    let (graph, members_per_level) = lower_levels(spec, edges)?;
    let m = spec.parallelism;
    let mut rng =
        SimRng::seed_from(spec.seed ^ (u64::from(m) << 32) ^ u64::from(spec.problem_size));
    let runtime = RuntimeConfig {
        executors: m as usize,
        scheduler: spec.scheduler,
        policy: SchedulerPolicy::Fifo,
        straggler: spec.straggler,
        faults: spec.faults,
        recovery: spec.recovery,
        threads: spec.engine.threads,
    };
    let outcome = ipso_cluster::execute(&graph, &runtime, &mut rng).map_err(|e| e.to_string())?;

    let mut clock = 0.0f64;
    let mut overhead = 0.0f64;
    let mut fault_summaries: Vec<FaultSummary> = Vec::new();
    let mut stage_times = vec![0.0f64; spec.stages.len()];
    let mut events = vec![SparkEvent::ApplicationStart {
        app_name: spec.name.clone(),
        timestamp: 0.0,
    }];

    // Serialized executor launch, as in the sequential engine.
    let launch = outcome.setup_overhead;
    clock += launch;
    overhead += launch;

    for (members, mut staged) in members_per_level.iter().zip(outcome.stages) {
        let submitted = clock;
        for &s in members {
            events.push(SparkEvent::StageSubmitted {
                stage_id: s as u32,
                stage_name: spec.stages[s].name.clone(),
                num_tasks: spec.stages[s].tasks,
                submission_time: submitted,
            });
        }

        // Broadcasts of all member stages are serialized at the driver,
        // each added to the clock individually.
        for &s in members {
            let b = spec
                .network
                .broadcast_time(spec.stages[s].broadcast_bytes, m);
            clock += b;
            overhead += b;
        }

        // The runtime's wave schedule over the level's interleaved task
        // list; its captured instrumentation lands here, in level order.
        // Recovery latency lengthened the tasks; wasted work is charged
        // as overhead. (Lineage recomputation across levels is modeled
        // only by the sequential chain engine, where the
        // stage-to-predecessor mapping is unambiguous.)
        ipso_obs::merge(std::mem::take(&mut staged.records));
        if let Some(fault) = staged.fault.take() {
            overhead += fault.summary.wasted_total();
            fault_summaries.push(fault.summary);
        }
        overhead += staged.schedule_overhead();
        clock += staged.schedule.makespan;

        // Combined shuffle of the level: all member outputs contend for
        // the receivers.
        let total_shuffle: u64 = members
            .iter()
            .map(|&s| spec.stages[s].total_shuffle_output())
            .sum();
        if total_shuffle > 0 {
            let per_receiver = total_shuffle as f64 / m as f64;
            clock += per_receiver / spec.network.incast_goodput(m);
        }

        for &s in members {
            stage_times[s] = clock - submitted;
            events.push(SparkEvent::StageCompleted {
                stage_id: s as u32,
                stage_name: spec.stages[s].name.clone(),
                num_tasks: spec.stages[s].tasks,
                submission_time: submitted,
                completion_time: clock,
            });
        }
    }

    events.push(SparkEvent::ApplicationEnd { timestamp: clock });
    let log = write_event_log(&events).expect("event log serialization cannot fail");
    Ok(SparkRun {
        total_time: clock,
        stage_times,
        overhead_time: overhead,
        fault_summaries,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_job;
    use crate::stage::StageSpec;
    use ipso_cluster::StragglerModel;

    fn job3() -> SparkJobSpec {
        let mut j = SparkJobSpec::emr("dag", 8, 8)
            .stage(StageSpec::new("a", 8).with_task_compute(1.0))
            .stage(StageSpec::new("b", 8).with_task_compute(1.0))
            .stage(StageSpec::new("c", 4).with_task_compute(0.2));
        j.straggler = StragglerModel::None;
        j.first_wave_cost = 0.0;
        j.executor_launch_cost = 0.0;
        j
    }

    #[test]
    fn levels_for_chain_and_diamond() {
        assert_eq!(assign_levels(3, &[(0, 1), (1, 2)]).unwrap(), vec![0, 1, 2]);
        assert_eq!(assign_levels(3, &[(0, 2), (1, 2)]).unwrap(), vec![0, 0, 1]);
        assert_eq!(assign_levels(1, &[]).unwrap(), vec![0]);
    }

    #[test]
    fn cycles_and_bad_edges_rejected() {
        assert!(assign_levels(2, &[(0, 1), (1, 0)]).is_err());
        assert!(assign_levels(2, &[(0, 5)]).is_err());
        assert!(assign_levels(2, &[(1, 1)]).is_err());
    }

    #[test]
    fn chain_dag_matches_sequential_engine() {
        let j = job3();
        let chain = run_dag(&j, &[(0, 1), (1, 2)]).unwrap();
        let seq = run_job(&j);
        assert!(
            (chain.total_time - seq.total_time).abs() < 0.05 * seq.total_time,
            "chain {} vs sequential {}",
            chain.total_time,
            seq.total_time
        );
    }

    #[test]
    fn diamond_is_faster_than_chain() {
        let j = job3();
        let diamond = run_dag(&j, &[(0, 2), (1, 2)]).unwrap();
        let chain = run_dag(&j, &[(0, 1), (1, 2)]).unwrap();
        // Stages a and b share the executors concurrently; the level takes
        // as long as both together (16 tasks on 8 executors = 2 waves),
        // same wall-clock work but one less barrier/dispatch round.
        assert!(diamond.total_time <= chain.total_time + 1e-9);
    }

    #[test]
    fn independent_stages_share_executors_fairly() {
        // Two independent 4-task stages on 8 executors: a single wave.
        let mut j = SparkJobSpec::emr("fair", 4, 8)
            .stage(StageSpec::new("x", 4).with_task_compute(1.0))
            .stage(StageSpec::new("y", 4).with_task_compute(1.0));
        j.straggler = StragglerModel::None;
        j.first_wave_cost = 0.0;
        j.executor_launch_cost = 0.0;
        let run = run_dag(&j, &[]).unwrap();
        assert!(
            (1.0..1.2).contains(&run.total_time),
            "t = {}",
            run.total_time
        );
    }

    #[test]
    fn event_log_contains_all_stages_with_levels() {
        let j = job3();
        let run = run_dag(&j, &[(0, 2), (1, 2)]).unwrap();
        let (stages, _) = crate::eventlog::parse_event_log(&run.log).unwrap();
        assert_eq!(stages.len(), 3);
        // a and b complete together; c strictly later.
        assert_eq!(run.stage_times.len(), 3);
        assert!(run.stage_times[2] < run.stage_times[0]);
    }

    #[test]
    fn dag_runs_are_deterministic() {
        let j = job3();
        assert_eq!(
            run_dag(&j, &[(0, 2)]).unwrap(),
            run_dag(&j, &[(0, 2)]).unwrap()
        );
    }
}
