//! Engine-equivalence suite for the unified cluster runtime.
//!
//! Both engines were refactored from private schedule/fault/accounting
//! loops onto one task-graph IR ([`ipso_cluster::TaskGraph`]) and one
//! executor ([`ipso_cluster::execute`]). The refactor's contract is
//! *byte*-equivalence: identical RNG draw order, float-operation
//! association and accumulation order, so every simulated time is
//! bit-for-bit the number the pre-refactor engines produced.
//!
//! The `golden_*` constants below are `f64::to_bits` patterns captured
//! from the last pre-refactor build (straggler noise on, seeds as in
//! the workload specs). If one of these tests fails, the runtime's
//! arithmetic drifted — every committed `results/*.csv` and trace
//! artifact would silently change with it.

use ipso_cluster::{FaultModel, RecoveryPolicy};
use ipso_spark::{run_dag, try_run_job, SparkRun};
use ipso_workloads::{bayes, join, sort, terasort, wordcount};

/// Recovery used for every faulted golden run.
fn golden_recovery() -> RecoveryPolicy {
    let mut recovery = RecoveryPolicy::hadoop_like().with_speculation();
    recovery.max_attempts = 12;
    recovery
}

fn assert_spark_bits(run: &SparkRun, total: u64, overhead: u64, stages: &[u64]) {
    assert_eq!(run.total_time.to_bits(), total, "total_time drifted");
    assert_eq!(run.overhead_time.to_bits(), overhead, "overhead drifted");
    let got: Vec<u64> = run.stage_times.iter().map(|t| t.to_bits()).collect();
    assert_eq!(got, stages, "stage_times drifted");
}

#[test]
fn mapreduce_totals_match_pre_refactor_bits() {
    let run = ipso_mapreduce::try_run_scale_out(
        &sort::job_spec(8),
        &sort::SortMapper,
        &sort::SortReducer,
        &sort::make_splits(8, 2),
    )
    .unwrap()
    .trace;
    assert_eq!(run.total_time().to_bits(), 0x40226db782e184dd);
    assert_eq!(run.scale_out_overhead.to_bits(), 0x3ff091148fd9fd37);

    let run = ipso_mapreduce::try_run_scale_out(
        &terasort::job_spec(8),
        &terasort::TeraSortMapper,
        &terasort::TeraSortReducer,
        &terasort::make_splits(8, 2),
    )
    .unwrap()
    .trace;
    assert_eq!(run.total_time().to_bits(), 0x4026a29dca047a8a);
    assert_eq!(run.scale_out_overhead.to_bits(), 0x3ff091148fd9fd36);

    let mapper = wordcount::WordCountMapper::new();
    let run = ipso_mapreduce::try_run_scale_out(
        &wordcount::job_spec(8),
        &mapper,
        &wordcount::WordCountReducer,
        &wordcount::make_splits(8, 2),
    )
    .unwrap()
    .trace;
    assert_eq!(run.total_time().to_bits(), 0x40321b96b0061364);
    assert_eq!(run.scale_out_overhead.to_bits(), 0x3ff091148fd9fd38);
}

#[test]
fn mapreduce_faulted_run_matches_pre_refactor_bits() {
    let mut spec = sort::job_spec(13);
    spec.faults = FaultModel::flaky(0.15);
    spec.faults.node_crash_prob = 0.02;
    spec.recovery = golden_recovery();
    let run = ipso_mapreduce::try_run_scale_out(
        &spec,
        &sort::SortMapper,
        &sort::SortReducer,
        &sort::make_splits(13, 2),
    )
    .unwrap()
    .trace;
    assert_eq!(run.total_time().to_bits(), 0x40273cad5dd04788);
    assert_eq!(run.scale_out_overhead.to_bits(), 0x3ff0fc8f6b2c7290);
}

#[test]
fn spark_chain_matches_pre_refactor_bits() {
    let cases: [(u32, u64, u64, &[u64]); 3] = [
        (
            4,
            0x40858805b3d36683,
            0x4012d799126648c5,
            &[0x408580499b2d3ce4, 0x3fe36b43e0549000],
        ),
        (
            8,
            0x40759fe9f9dd5b10,
            0x400d989f2d83c8dc,
            &[0x40758a81f0322116, 0x3fe3c5d5e5d01c00],
        ),
        (
            32,
            0x4056e23cd75854b0,
            0x4016f2fdf4417094,
            &[0x4055ff4c83a39e89, 0x3fe54f3417cbb780],
        ),
    ];
    for (m, total, overhead, stages) in cases {
        let run = try_run_job(&bayes::job(256, m)).unwrap();
        assert_spark_bits(&run, total, overhead, stages);
    }
}

#[test]
fn spark_chain_faulted_run_matches_pre_refactor_bits() {
    let mut spec = bayes::job(256, 8);
    spec.faults = FaultModel::flaky(0.12);
    spec.faults.node_crash_prob = 0.015;
    spec.recovery = golden_recovery();
    let run = try_run_job(&spec).unwrap();
    assert_spark_bits(
        &run,
        0x4076b1590c4e005b,
        0x406008c1281e605b,
        &[0x40768dabba58c08c, 0x3ff828333cede300],
    );
}

#[test]
fn spark_dag_matches_pre_refactor_bits() {
    let cases: [(u32, u64, u64, &[u64]); 2] = [
        (
            4,
            0x406ade5cb17222b7,
            0x3ffe04153abb6571,
            &[0x406685bca7159497, 0x406685bca7159497, 0x4041346bae90f0d0],
        ),
        (
            16,
            0x404d7dbf3cf5bb63,
            0x4002fa302d5812c9,
            &[0x404823bd16a38266, 0x404823bd16a38266, 0x402286c0eb346914],
        ),
    ];
    for (m, total, overhead, stages) in cases {
        let run = run_dag(&join::job(128, m), &join::job_edges()).unwrap();
        assert_spark_bits(&run, total, overhead, stages);
    }
}

#[test]
fn spark_dag_faulted_run_matches_pre_refactor_bits() {
    let mut spec = join::job(128, 8);
    spec.faults = FaultModel::flaky(0.1);
    spec.faults.node_crash_prob = 0.01;
    spec.recovery = golden_recovery();
    let run = run_dag(&spec, &join::job_edges()).unwrap();
    assert_spark_bits(
        &run,
        0x405ccdfe6a410df3,
        0x4051a6a40c99fa2d,
        &[0x4057cace06f33fec, 0x4057cace06f33fec, 0x4033546fa1b21964],
    );
}
