//! Machine and cluster specifications.

use serde::{Deserialize, Serialize};

/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * 1024;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;

/// Hardware description of a single node.
///
/// # Example
///
/// ```
/// use ipso_cluster::NodeSpec;
///
/// let worker = NodeSpec::m4_large();
/// assert_eq!(worker.cores, 2);
/// assert!(worker.net_bandwidth > 50e6); // ≥ 450 Mb/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of cores.
    pub cores: u32,
    /// Relative compute speed multiplier (1.0 = baseline worker core).
    pub core_speed: f64,
    /// RAM available to the framework, in bytes.
    pub memory_bytes: u64,
    /// Sequential disk bandwidth, bytes/s.
    pub disk_bandwidth: f64,
    /// NIC bandwidth, bytes/s.
    pub net_bandwidth: f64,
}

impl NodeSpec {
    /// The paper's worker instance (m4.large): 2 vCPU, 8 GiB RAM,
    /// ≥ 450 Mb/s network, EBS-backed disk ≈ 56 MB/s.
    pub fn m4_large() -> NodeSpec {
        NodeSpec {
            cores: 2,
            core_speed: 1.0,
            memory_bytes: 8 * GIB,
            disk_bandwidth: 56.0e6,
            net_bandwidth: 56.25e6, // 450 Mb/s
        }
    }

    /// The paper's master instance (m4.4xlarge): 16 vCPU, 64 GiB RAM,
    /// faster NIC (2 Gb/s class).
    pub fn m4_4xlarge() -> NodeSpec {
        NodeSpec {
            cores: 16,
            core_speed: 1.0,
            memory_bytes: 64 * GIB,
            disk_bandwidth: 250.0e6,
            net_bandwidth: 250.0e6, // 2 Gb/s
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("node must have at least one core".into());
        }
        if !(self.core_speed.is_finite() && self.core_speed > 0.0) {
            return Err("core speed must be positive".into());
        }
        if self.memory_bytes == 0 {
            return Err("node must have memory".into());
        }
        if !(self.disk_bandwidth.is_finite() && self.disk_bandwidth > 0.0) {
            return Err("disk bandwidth must be positive".into());
        }
        if !(self.net_bandwidth.is_finite() && self.net_bandwidth > 0.0) {
            return Err("network bandwidth must be positive".into());
        }
        Ok(())
    }
}

/// A master/worker cluster, as in the paper's EMR deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes (the scale-out degree `n`).
    pub workers: u32,
    /// Worker hardware.
    pub worker: NodeSpec,
    /// Master hardware.
    pub master: NodeSpec,
    /// Containers (executors) launched per worker. The paper configures
    /// the resource manager to launch exactly one container per unit.
    pub containers_per_worker: u32,
}

impl ClusterSpec {
    /// The paper's EMR configuration: one m4.4xlarge master plus
    /// `workers` m4.large processing units with one container each.
    pub fn emr(workers: u32) -> ClusterSpec {
        ClusterSpec {
            workers,
            worker: NodeSpec::m4_large(),
            master: NodeSpec::m4_4xlarge(),
            containers_per_worker: 1,
        }
    }

    /// Total parallel processing slots.
    pub fn total_slots(&self) -> u32 {
        self.workers * self.containers_per_worker
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("cluster needs at least one worker".into());
        }
        if self.containers_per_worker == 0 {
            return Err("each worker needs at least one container".into());
        }
        self.worker.validate()?;
        self.master.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(NodeSpec::m4_large().validate().is_ok());
        assert!(NodeSpec::m4_4xlarge().validate().is_ok());
        assert!(ClusterSpec::emr(16).validate().is_ok());
    }

    #[test]
    fn master_outclasses_worker() {
        let w = NodeSpec::m4_large();
        let m = NodeSpec::m4_4xlarge();
        assert!(m.cores > w.cores);
        assert!(m.memory_bytes > w.memory_bytes);
        assert!(m.net_bandwidth > w.net_bandwidth);
    }

    #[test]
    fn slots_multiply() {
        let mut c = ClusterSpec::emr(8);
        assert_eq!(c.total_slots(), 8);
        c.containers_per_worker = 2;
        assert_eq!(c.total_slots(), 16);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = ClusterSpec::emr(0);
        assert!(c.validate().is_err());
        c = ClusterSpec::emr(1);
        c.containers_per_worker = 0;
        assert!(c.validate().is_err());
        let mut n = NodeSpec::m4_large();
        n.cores = 0;
        assert!(n.validate().is_err());
        n = NodeSpec::m4_large();
        n.net_bandwidth = 0.0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClusterSpec::emr(4);
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
