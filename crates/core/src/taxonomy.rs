//! The IPSO solution-space taxonomy (paper Figs. 2–3).
//!
//! For each workload type the paper identifies four qualitative speedup
//! behaviours as `n → ∞`:
//!
//! | | fixed-time (`EX(n) = n`) | fixed-size (`EX(n) = 1`) |
//! |---|---|---|
//! | **I** | Gustafson-like linear, unbounded | linear `S(n) = n` (η = 1, q = 0) |
//! | **II** | sublinear, unbounded | sublinear, unbounded (η = 1, γ < 1) |
//! | **III** | *pathological*: monotone but upper-bounded | Amdahl-like upper-bounded |
//! | **IV** | *pathological*: peaks, falls, → 0 (γ > 1) | same |
//!
//! Types III split into sub-types with distinct bounds depending on whether
//! the bound stems from in-proportion scaling (`III·,1`) or from linear
//! scale-out-induced scaling (`III·,2`).

use crate::asymptotic::AsymptoticParams;
use crate::ModelError;

/// Tolerance for deciding whether an exponent equals an integral boundary
/// (δ = 0, δ = 1, γ = 0, γ = 1).
const EXP_EPS: f64 = 1e-9;

/// Which external-scaling scenario a workload follows (paper Section IV).
///
/// Fixed-time corresponds to the resource-constrained case (`EX(n) = n`,
/// Gustafson); fixed-size to the resource-abundant case (`EX(n) = 1`,
/// Amdahl). Memory-bounded workloads behave as fixed-time for the
/// data-intensive applications in the paper (`g(n) ≈ n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadType {
    /// `EX(n) = n`: the workload grows linearly with the scale-out degree.
    FixedTime,
    /// `EX(n) = 1`: the total workload is constant.
    FixedSize,
}

impl std::fmt::Display for WorkloadType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadType::FixedTime => write!(f, "fixed-time"),
            WorkloadType::FixedSize => write!(f, "fixed-size"),
        }
    }
}

/// The four fixed-time scaling behaviours of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixedTimeClass {
    /// `It` — Gustafson-like unbounded linear scaling.
    It,
    /// `IIt` — unbounded but sublinear scaling.
    IIt,
    /// `IIIt,1` — pathological bound caused by in-proportion scaling
    /// (δ = 0, γ < 1): `S → (ηα + 1 − η)/(1 − η)`.
    IIIt1,
    /// `IIIt,2` — pathological bound caused by linear scale-out-induced
    /// scaling (γ = 1).
    IIIt2,
    /// `IVt` — pathological peak-and-fall (γ > 1).
    IVt,
}

/// The four fixed-size scaling behaviours of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixedSizeClass {
    /// `Is` — perfect linear scaling `S(n) = n` (η = 1, no overhead).
    Is,
    /// `IIs` — unbounded sublinear scaling (η = 1, γ < 1).
    IIs,
    /// `IIIs,1` — Amdahl-like bound `(ηα + 1 − η)/(1 − η)` (γ < 1).
    /// Amdahl's law is the special case γ = 0, α = 1.
    IIIs1,
    /// `IIIs,2` — bound `(ηα + 1 − η)/(ηαβ + 1 − η)` (γ = 1).
    IIIs2,
    /// `IVs` — pathological peak-and-fall (γ > 1).
    IVs,
}

/// A classified scaling behaviour, for either workload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingClass {
    /// A fixed-time behaviour from Fig. 2.
    FixedTime(FixedTimeClass),
    /// A fixed-size behaviour from Fig. 3.
    FixedSize(FixedSizeClass),
}

impl std::fmt::Display for ScalingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ScalingClass::FixedTime(FixedTimeClass::It) => "It (Gustafson-like linear)",
            ScalingClass::FixedTime(FixedTimeClass::IIt) => "IIt (unbounded sublinear)",
            ScalingClass::FixedTime(FixedTimeClass::IIIt1) => {
                "IIIt,1 (bounded by in-proportion scaling)"
            }
            ScalingClass::FixedTime(FixedTimeClass::IIIt2) => {
                "IIIt,2 (bounded by linear scale-out-induced scaling)"
            }
            ScalingClass::FixedTime(FixedTimeClass::IVt) => "IVt (pathological peak-and-fall)",
            ScalingClass::FixedSize(FixedSizeClass::Is) => "Is (perfect linear)",
            ScalingClass::FixedSize(FixedSizeClass::IIs) => "IIs (unbounded sublinear)",
            ScalingClass::FixedSize(FixedSizeClass::IIIs1) => "IIIs,1 (Amdahl-like bounded)",
            ScalingClass::FixedSize(FixedSizeClass::IIIs2) => {
                "IIIs,2 (bounded by linear scale-out-induced scaling)"
            }
            ScalingClass::FixedSize(FixedSizeClass::IVs) => "IVs (pathological peak-and-fall)",
        };
        write!(f, "{name}")
    }
}

impl ScalingClass {
    /// Whether the speedup grows without bound.
    pub fn is_unbounded(&self) -> bool {
        matches!(
            self,
            ScalingClass::FixedTime(FixedTimeClass::It)
                | ScalingClass::FixedTime(FixedTimeClass::IIt)
                | ScalingClass::FixedSize(FixedSizeClass::Is)
                | ScalingClass::FixedSize(FixedSizeClass::IIs)
        )
    }

    /// Whether the paper calls the behaviour pathological. For fixed-time
    /// workloads any bounded behaviour is pathological (Gustafson promises
    /// unbounded speedup); for fixed-size only the peak-and-fall type is
    /// (Amdahl-like bounds have been expected since 1967).
    pub fn is_pathological(&self) -> bool {
        matches!(
            self,
            ScalingClass::FixedTime(FixedTimeClass::IIIt1)
                | ScalingClass::FixedTime(FixedTimeClass::IIIt2)
                | ScalingClass::FixedTime(FixedTimeClass::IVt)
                | ScalingClass::FixedSize(FixedSizeClass::IVs)
        )
    }

    /// Whether the speedup eventually peaks and falls (type IV).
    pub fn peaks(&self) -> bool {
        matches!(
            self,
            ScalingClass::FixedTime(FixedTimeClass::IVt)
                | ScalingClass::FixedSize(FixedSizeClass::IVs)
        )
    }
}

/// Classifies an asymptotic parameter set under the given workload type and
/// returns the class together with its speedup bound (`None` when
/// unbounded, `Some(0.0)` for the decaying type IV).
///
/// # Errors
///
/// Returns [`ModelError::InvalidFactor`] when δ is outside the admissible
/// range for the workload type (`0 ≤ δ ≤ 1` for fixed-time, `δ = 0` for
/// fixed-size — see the paper's Section IV arguments).
pub fn classify(
    params: &AsymptoticParams,
    workload: WorkloadType,
) -> Result<(ScalingClass, Option<f64>), ModelError> {
    match workload {
        WorkloadType::FixedTime => classify_fixed_time(params),
        WorkloadType::FixedSize => classify_fixed_size(params),
    }
}

fn classify_fixed_time(p: &AsymptoticParams) -> Result<(ScalingClass, Option<f64>), ModelError> {
    if !(-EXP_EPS..=1.0 + EXP_EPS).contains(&p.delta) {
        return Err(ModelError::InvalidFactor {
            factor: "EX",
            reason: "fixed-time workloads require 0 <= delta <= 1",
        });
    }
    let eta = p.eta;
    let serial_free = p.is_serial_free();
    let no_q = p.no_induced_workload();
    let gamma = if no_q { 0.0 } else { p.gamma };
    let delta_is_zero = p.delta.abs() <= EXP_EPS;
    let delta_is_one = (p.delta - 1.0).abs() <= EXP_EPS;

    let class = if gamma > 1.0 + EXP_EPS {
        FixedTimeClass::IVt
    } else if (gamma - 1.0).abs() <= EXP_EPS {
        // Linear induced scaling bounds the speedup.
        FixedTimeClass::IIIt2
    } else if no_q {
        if serial_free || delta_is_one {
            FixedTimeClass::It
        } else if delta_is_zero {
            FixedTimeClass::IIIt1
        } else {
            FixedTimeClass::IIt
        }
    } else {
        // 0 < γ < 1.
        if serial_free || !delta_is_zero {
            FixedTimeClass::IIt
        } else {
            FixedTimeClass::IIIt1
        }
    };

    let bound = match class {
        FixedTimeClass::It | FixedTimeClass::IIt => None,
        FixedTimeClass::IIIt1 => Some((eta * p.alpha + (1.0 - eta)) / (1.0 - eta)),
        FixedTimeClass::IIIt2 => {
            if serial_free {
                Some(1.0 / p.beta)
            } else if delta_is_zero {
                Some((eta * p.alpha + (1.0 - eta)) / (eta * p.alpha * p.beta + (1.0 - eta)))
            } else {
                // 0 < δ ≤ 1 with γ = 1: numerator and denominator share the
                // order n^δ; bound = 1/β (Fig. 2 annotation).
                Some(1.0 / p.beta)
            }
        }
        FixedTimeClass::IVt => Some(0.0),
    };
    Ok((ScalingClass::FixedTime(class), bound))
}

fn classify_fixed_size(p: &AsymptoticParams) -> Result<(ScalingClass, Option<f64>), ModelError> {
    if p.delta.abs() > EXP_EPS {
        return Err(ModelError::InvalidFactor {
            factor: "EX",
            reason: "fixed-size workloads require delta = 0 (IN(n) = 1)",
        });
    }
    let eta = p.eta;
    let serial_free = p.is_serial_free();
    let no_q = p.no_induced_workload();
    let gamma = if no_q { 0.0 } else { p.gamma };

    let class = if gamma > 1.0 + EXP_EPS {
        FixedSizeClass::IVs
    } else if (gamma - 1.0).abs() <= EXP_EPS {
        FixedSizeClass::IIIs2
    } else if serial_free {
        if no_q {
            FixedSizeClass::Is
        } else {
            FixedSizeClass::IIs
        }
    } else {
        FixedSizeClass::IIIs1
    };

    let bound = match class {
        FixedSizeClass::Is | FixedSizeClass::IIs => None,
        FixedSizeClass::IIIs1 => Some((eta * p.alpha + (1.0 - eta)) / (1.0 - eta)),
        FixedSizeClass::IIIs2 => {
            if serial_free {
                Some(1.0 / p.beta)
            } else {
                Some((eta * p.alpha + (1.0 - eta)) / (eta * p.alpha * p.beta + (1.0 - eta)))
            }
        }
        FixedSizeClass::IVs => Some(0.0),
    };
    Ok((ScalingClass::FixedSize(class), bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(eta: f64, alpha: f64, delta: f64, beta: f64, gamma: f64) -> AsymptoticParams {
        AsymptoticParams::new(eta, alpha, delta, beta, gamma).unwrap()
    }

    #[test]
    fn gustafson_is_type_it() {
        let (class, bound) =
            classify(&pt(0.8, 1.0, 1.0, 0.0, 0.0), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::It));
        assert_eq!(bound, None);
        assert!(class.is_unbounded());
        assert!(!class.is_pathological());
    }

    #[test]
    fn serial_free_without_overhead_is_it() {
        let (class, _) = classify(&pt(1.0, 1.0, 0.0, 0.0, 0.0), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::It));
    }

    #[test]
    fn sublinear_induced_overhead_is_iit() {
        let (class, bound) =
            classify(&pt(0.9, 1.0, 1.0, 0.1, 0.5), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::IIt));
        assert_eq!(bound, None);
    }

    #[test]
    fn partial_in_proportion_scaling_is_iit() {
        let (class, _) = classify(&pt(0.9, 1.0, 0.5, 0.0, 0.0), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::IIt));
    }

    #[test]
    fn full_in_proportion_scaling_is_iiit1_with_bound() {
        // Sort/TeraSort in the paper: δ ≈ 0, small γ.
        let (eta, alpha) = (0.8, 4.3);
        let (class, bound) =
            classify(&pt(eta, alpha, 0.0, 0.0, 0.0), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::IIIt1));
        let expected = (eta * alpha + (1.0 - eta)) / (1.0 - eta);
        assert!((bound.unwrap() - expected).abs() < 1e-12);
        assert!(class.is_pathological());
    }

    #[test]
    fn linear_induced_overhead_is_iiit2() {
        let (class, bound) =
            classify(&pt(1.0, 1.0, 0.0, 0.05, 1.0), WorkloadType::FixedTime).unwrap();
        assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::IIIt2));
        assert!((bound.unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn iiit2_bound_with_serial_and_delta_zero() {
        let (eta, alpha, beta) = (0.7, 2.0, 0.1);
        let (_, bound) =
            classify(&pt(eta, alpha, 0.0, beta, 1.0), WorkloadType::FixedTime).unwrap();
        let expected = (eta * alpha + 0.3) / (eta * alpha * beta + 0.3);
        assert!((bound.unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn superlinear_induced_overhead_is_ivt_regardless() {
        for delta in [0.0, 0.5, 1.0] {
            let (class, bound) =
                classify(&pt(0.9, 1.0, delta, 0.01, 2.0), WorkloadType::FixedTime).unwrap();
            assert_eq!(class, ScalingClass::FixedTime(FixedTimeClass::IVt));
            assert_eq!(bound, Some(0.0));
            assert!(class.peaks());
        }
    }

    #[test]
    fn fixed_size_perfect_linear_is_special() {
        let (class, bound) =
            classify(&pt(1.0, 1.0, 0.0, 0.0, 0.0), WorkloadType::FixedSize).unwrap();
        assert_eq!(class, ScalingClass::FixedSize(FixedSizeClass::Is));
        assert_eq!(bound, None);
    }

    #[test]
    fn fixed_size_sublinear_overhead_is_iis() {
        let (class, _) = classify(&pt(1.0, 1.0, 0.0, 0.1, 0.5), WorkloadType::FixedSize).unwrap();
        assert_eq!(class, ScalingClass::FixedSize(FixedSizeClass::IIs));
        assert!(!class.is_pathological());
    }

    #[test]
    fn amdahl_is_iiis1() {
        let (class, bound) =
            classify(&pt(0.9, 1.0, 0.0, 0.0, 0.0), WorkloadType::FixedSize).unwrap();
        assert_eq!(class, ScalingClass::FixedSize(FixedSizeClass::IIIs1));
        assert!((bound.unwrap() - 10.0).abs() < 1e-12);
        // Amdahl-like bounds are expected, not pathological.
        assert!(!class.is_pathological());
    }

    #[test]
    fn collaborative_filtering_is_ivs() {
        // The paper's CF case: η = 1, γ = 2.
        let (class, bound) =
            classify(&pt(1.0, 1.0, 0.0, 0.006, 2.0), WorkloadType::FixedSize).unwrap();
        assert_eq!(class, ScalingClass::FixedSize(FixedSizeClass::IVs));
        assert_eq!(bound, Some(0.0));
        assert!(class.is_pathological());
    }

    #[test]
    fn fixed_time_rejects_delta_out_of_range() {
        assert!(classify(&pt(0.9, 1.0, 0.0, 0.0, 0.0), WorkloadType::FixedTime).is_ok());
        let p = AsymptoticParams::new(0.9, 1.0, 1.5, 0.0, 0.0).unwrap();
        assert!(classify(&p, WorkloadType::FixedTime).is_err());
    }

    #[test]
    fn fixed_size_rejects_nonzero_delta() {
        let p = AsymptoticParams::new(0.9, 1.0, 0.5, 0.0, 0.0).unwrap();
        assert!(classify(&p, WorkloadType::FixedSize).is_err());
    }

    #[test]
    fn bounds_match_asymptotic_limits() {
        // The classifier's bounds must agree with AsymptoticParams::limit.
        let cases = [
            pt(0.8, 4.3, 0.0, 0.0, 0.0),
            pt(0.7, 2.0, 0.0, 0.1, 1.0),
            pt(1.0, 1.0, 0.0, 0.05, 1.0),
            pt(0.9, 1.0, 1.0, 0.01, 2.0),
        ];
        for p in cases {
            let (_, bound) = classify(&p, WorkloadType::FixedTime).unwrap();
            match (bound, p.limit()) {
                (Some(b), Some(l)) => assert!((b - l).abs() < 1e-9, "bound {b} vs limit {l}"),
                (None, None) => {}
                other => panic!("bound/limit disagreement: {other:?} for {p:?}"),
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            ScalingClass::FixedTime(FixedTimeClass::IVt).to_string(),
            "IVt (pathological peak-and-fall)"
        );
        assert_eq!(WorkloadType::FixedTime.to_string(), "fixed-time");
    }
}
