//! Error type for the IPSO model crate.

use std::error::Error;
use std::fmt;

/// Error returned by model construction, evaluation and analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The parallelizable fraction η must lie in `(0, 1]`.
    InvalidEta(f64),
    /// The scale-out degree `n` must be ≥ 1 and finite.
    InvalidScaleOut(f64),
    /// A scaling-factor parameter is out of its admissible range.
    InvalidFactor {
        /// Which factor was rejected (`"EX"`, `"IN"` or `"q"`).
        factor: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A scaling factor must satisfy a boundary condition (e.g. `EX(1) = 1`,
    /// `q(1) = 0`) and does not.
    BoundaryCondition {
        /// Which factor violates the condition.
        factor: &'static str,
        /// The required value at the boundary.
        expected: f64,
        /// The value actually produced.
        actual: f64,
    },
    /// Not enough measurement points for the requested analysis.
    InsufficientData {
        /// Points available.
        points: usize,
        /// Points required.
        required: usize,
    },
    /// An underlying regression failed.
    Fit(ipso_fit::FitError),
    /// A computed quantity was non-finite.
    NonFinite(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidEta(eta) => {
                write!(
                    f,
                    "parallelizable fraction eta must be in (0, 1], got {eta}"
                )
            }
            ModelError::InvalidScaleOut(n) => {
                write!(f, "scale-out degree n must be finite and >= 1, got {n}")
            }
            ModelError::InvalidFactor { factor, reason } => {
                write!(f, "invalid {factor} scaling factor: {reason}")
            }
            ModelError::BoundaryCondition {
                factor,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{factor}(1) must equal {expected} but evaluates to {actual}"
                )
            }
            ModelError::InsufficientData { points, required } => {
                write!(
                    f,
                    "{points} measurement points supplied but {required} required"
                )
            }
            ModelError::Fit(err) => write!(f, "regression failed: {err}"),
            ModelError::NonFinite(what) => write!(f, "computed {what} is not finite"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Fit(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ipso_fit::FitError> for ModelError {
    fn from(err: ipso_fit::FitError) -> Self {
        ModelError::Fit(err)
    }
}

/// Validates a scale-out degree.
pub(crate) fn check_scale_out(n: f64) -> Result<(), ModelError> {
    if !n.is_finite() || n < 1.0 {
        return Err(ModelError::InvalidScaleOut(n));
    }
    Ok(())
}

/// Validates a parallelizable fraction.
pub(crate) fn check_eta(eta: f64) -> Result<(), ModelError> {
    if !eta.is_finite() || eta <= 0.0 || eta > 1.0 {
        return Err(ModelError::InvalidEta(eta));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ModelError::InvalidEta(1.5).to_string(),
            "parallelizable fraction eta must be in (0, 1], got 1.5"
        );
        assert_eq!(
            ModelError::InvalidScaleOut(0.0).to_string(),
            "scale-out degree n must be finite and >= 1, got 0"
        );
        let err = ModelError::BoundaryCondition {
            factor: "EX",
            expected: 1.0,
            actual: 2.0,
        };
        assert_eq!(err.to_string(), "EX(1) must equal 1 but evaluates to 2");
    }

    #[test]
    fn fit_error_converts_and_chains() {
        let err: ModelError = ipso_fit::FitError::Singular.into();
        assert!(err.to_string().contains("singular"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn eta_bounds() {
        assert!(check_eta(0.5).is_ok());
        assert!(check_eta(1.0).is_ok());
        assert!(check_eta(0.0).is_err());
        assert!(check_eta(-0.1).is_err());
        assert!(check_eta(f64::NAN).is_err());
    }

    #[test]
    fn scale_out_bounds() {
        assert!(check_scale_out(1.0).is_ok());
        assert!(check_scale_out(1e6).is_ok());
        assert!(check_scale_out(0.99).is_err());
        assert!(check_scale_out(f64::INFINITY).is_err());
    }
}
