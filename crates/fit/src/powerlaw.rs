//! Power-law fits for the asymptotic scaling factors of IPSO.
//!
//! The paper keeps only the highest-order term of each scaling factor
//! (Eqs. 14–15): `ε(n) ≈ α·n^δ` and `q(n) ≈ β·n^γ`. Estimating those
//! exponents from measurements is exactly a power-law fit.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::nonlinear::{levenberg_marquardt, NonlinearOptions};
use crate::{fit_line, FitError};

/// Result of fitting `y = a·x^b` (optionally with additive offset `c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Multiplicative coefficient `a` (the paper's α or β).
    pub coefficient: f64,
    /// Exponent `b` (the paper's δ or γ).
    pub exponent: f64,
    /// Additive offset `c`; zero for the plain power-law fit.
    pub offset: f64,
    /// Goodness-of-fit statistics in the original (non-log) domain.
    pub gof: GoodnessOfFit,
}

impl PowerLawFit {
    /// Evaluates `a·x^b + c` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent) + self.offset
    }
}

/// Fits `y = a·x^b` by ordinary least squares in log–log space.
///
/// # Errors
///
/// Returns [`FitError::InvalidDomain`] unless every `x` and `y` is strictly
/// positive, plus the usual validation errors.
///
/// # Example
///
/// ```
/// use ipso_fit::fit_power_law;
///
/// # fn main() -> Result<(), ipso_fit::FitError> {
/// let n = [10.0, 30.0, 60.0, 90.0];
/// // The collaborative-filtering overhead in the paper: q(n) ∝ n².
/// let w: Vec<f64> = n.iter().map(|v| 0.0061 * v * v).collect();
/// let fit = fit_power_law(&n, &w)?;
/// assert!((fit.exponent - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_power_law(x: &[f64], y: &[f64]) -> Result<PowerLawFit, FitError> {
    validate_xy(x, y, 2)?;
    if x.iter().any(|&v| v <= 0.0) {
        return Err(FitError::InvalidDomain(
            "x must be strictly positive for a power-law fit",
        ));
    }
    if y.iter().any(|&v| v <= 0.0) {
        return Err(FitError::InvalidDomain(
            "y must be strictly positive for a power-law fit",
        ));
    }
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let line = fit_line(&lx, &ly)?;
    let coefficient = line.intercept.exp();
    let exponent = line.slope;
    let predicted: Vec<f64> = x
        .iter()
        .map(|&xv| coefficient * xv.powf(exponent))
        .collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, 2);
    Ok(PowerLawFit {
        coefficient,
        exponent,
        offset: 0.0,
        gof,
    })
}

/// Fits `y = a·x^b + c` by Levenberg–Marquardt, seeded from the plain
/// log–log fit.
///
/// # Errors
///
/// Returns the validation errors of [`fit_power_law`] (the seed fit ignores
/// non-positive `y` by falling back to a generic seed) or a solver error
/// from [`levenberg_marquardt`].
pub fn fit_power_law_offset(x: &[f64], y: &[f64]) -> Result<PowerLawFit, FitError> {
    validate_xy(x, y, 3)?;
    if x.iter().any(|&v| v <= 0.0) {
        return Err(FitError::InvalidDomain(
            "x must be strictly positive for a power-law fit",
        ));
    }
    let seed = match fit_power_law(x, y) {
        Ok(f) => vec![f.coefficient, f.exponent, 0.0],
        Err(_) => vec![1.0, 1.0, 0.0],
    };
    let fit = levenberg_marquardt(
        |p, xv| p[0] * xv.powf(p[1]) + p[2],
        x,
        y,
        &seed,
        &NonlinearOptions::default(),
    )?;
    let predicted: Vec<f64> = x
        .iter()
        .map(|&xv| fit.params[0] * xv.powf(fit.params[1]) + fit.params[2])
        .collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, 3);
    Ok(PowerLawFit {
        coefficient: fit.params[0],
        exponent: fit.params[1],
        offset: fit.params[2],
        gof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v.powf(1.3)).collect();
        let fit = fit_power_law(&x, &y).unwrap();
        assert!((fit.coefficient - 2.5).abs() < 1e-10);
        assert!((fit.exponent - 1.3).abs() < 1e-12);
        assert_eq!(fit.offset, 0.0);
    }

    #[test]
    fn quadratic_overhead_detected() {
        let x = [10.0, 30.0, 60.0, 90.0];
        let y: Vec<f64> = x.iter().map(|v| 0.0061 * v * v).collect();
        let fit = fit_power_law(&x, &y).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
        assert!(fit.gof.r_squared > 1.0 - 1e-10);
    }

    #[test]
    fn rejects_non_positive_domain() {
        assert!(matches!(
            fit_power_law(&[0.0, 1.0], &[1.0, 2.0]).unwrap_err(),
            FitError::InvalidDomain(_)
        ));
        assert!(matches!(
            fit_power_law(&[1.0, 2.0], &[-1.0, 2.0]).unwrap_err(),
            FitError::InvalidDomain(_)
        ));
    }

    #[test]
    fn offset_variant_recovers_additive_constant() {
        let x: Vec<f64> = (1..=15).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.4 * v.powf(1.5) + 7.0).collect();
        let fit = fit_power_law_offset(&x, &y).unwrap();
        assert!(
            (fit.coefficient - 0.4).abs() < 1e-4,
            "a = {}",
            fit.coefficient
        );
        assert!((fit.exponent - 1.5).abs() < 1e-4, "b = {}", fit.exponent);
        assert!((fit.offset - 7.0).abs() < 1e-3, "c = {}", fit.offset);
    }

    #[test]
    fn predict_includes_offset() {
        let fit = PowerLawFit {
            coefficient: 2.0,
            exponent: 1.0,
            offset: 3.0,
            gof: GoodnessOfFit::from_predictions(&[1.0], &[1.0], 1),
        };
        assert!((fit.predict(5.0) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_power_law_close() {
        let x: Vec<f64> = (1..=40).map(|v| v as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.2 * v.powf(0.8) * if i % 2 == 0 { 1.02 } else { 0.98 })
            .collect();
        let fit = fit_power_law(&x, &y).unwrap();
        assert!((fit.exponent - 0.8).abs() < 0.02);
    }
}
