//! Typed errors for cluster-model construction and fault recovery.

use std::fmt;

/// Errors produced by the cluster models: invalid parameters at
/// construction time, and unrecoverable failures surfaced by the fault
/// recovery layer at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A model parameter was outside its valid range.
    InvalidParameter {
        /// Which parameter was rejected (e.g. `"pareto shape"`).
        what: &'static str,
        /// The violated constraint, rendered for display.
        message: String,
    },
    /// A task failed on every allowed attempt; the job cannot complete.
    RetriesExhausted {
        /// The task that could not complete.
        task: u32,
        /// Attempts consumed — equal to the policy's `max_attempts`.
        attempts: u32,
    },
    /// The job burned more wasted work than its fail-fast budget allows.
    WastedWorkExceeded {
        /// Wasted work accumulated so far, seconds.
        wasted: f64,
        /// The budget that was exceeded, seconds.
        budget: f64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidParameter { what, message } => {
                write!(f, "invalid {what}: {message}")
            }
            ClusterError::RetriesExhausted { task, attempts } => {
                write!(f, "task {task} failed all {attempts} attempts")
            }
            ClusterError::WastedWorkExceeded { wasted, budget } => {
                write!(
                    f,
                    "wasted work {wasted:.3} s exceeds the fail-fast budget of {budget:.3} s"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClusterError::RetriesExhausted {
            task: 7,
            attempts: 4,
        };
        assert_eq!(e.to_string(), "task 7 failed all 4 attempts");
        let e = ClusterError::WastedWorkExceeded {
            wasted: 12.5,
            budget: 10.0,
        };
        assert!(e.to_string().contains("12.500"));
        let e = ClusterError::InvalidParameter {
            what: "pareto shape",
            message: "must exceed 1".into(),
        };
        assert!(e.to_string().starts_with("invalid pareto shape"));
    }
}
