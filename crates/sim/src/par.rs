//! Deterministic scoped-thread fan-out for the execution engines.
//!
//! The MapReduce engine executes its map tasks — and the Spark engine
//! its per-stage wave schedules — on host threads, the way the paper's
//! clusters execute the split phase in parallel waves. Determinism is
//! preserved by construction: work items are pure functions of their
//! index, workers claim indices off a shared atomic counter (work
//! stealing, so one slow task cannot serialize the wave behind it), and
//! results land in index-ordered slots. The output is therefore
//! byte-identical for every thread count, including `threads = 1`,
//! which bypasses thread spawning entirely.
//!
//! This is the same pattern as the sweep runner in `ipso-bench`, pushed
//! down to the engine layer where individual jobs (not whole sweeps)
//! need it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves an engine thread-count knob: `0` means one worker per
/// available hardware thread, anything else is taken as-is.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// Runs `f(0), f(1), …, f(len - 1)` across up to `threads` scoped
/// workers and returns the results in index order.
///
/// The determinism contract: as long as `f(i)` depends only on `i` (and
/// state it does not share mutably with other indices), the returned
/// vector is identical for every `threads` value. `threads = 0` uses one
/// worker per hardware thread; `threads = 1` (or `len <= 1`) runs the
/// plain sequential loop with no synchronization at all.
///
/// # Panics
///
/// A panic inside `f` aborts the whole wave and propagates.
pub fn ordered_map_indexed<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(len).max(1);
    if workers == 1 {
        return (0..len).map(f).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    let result = f(index);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload survives instead
        // of the scope's generic "a scoped thread panicked".
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("index not executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        // Heavier work at the front so completion order differs from
        // index order under a real scheduler.
        let expected: Vec<u64> = (0..64).map(|i| i * 3).collect();
        for threads in [1usize, 2, 3, 8] {
            let out = ordered_map_indexed(threads, 64, |i| {
                std::hint::black_box((0..(64 - i as u64) * 1000).sum::<u64>());
                i as u64 * 3
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zero_resolves_to_hardware_threads() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn empty_and_singleton_inputs_are_fine() {
        let empty: Vec<u32> = ordered_map_indexed(4, 0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(ordered_map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn single_thread_never_spawns() {
        // A non-Send-unfriendly sanity: with threads = 1 the closure runs
        // on the calling thread, so thread-id observations are uniform.
        let main_id = std::thread::current().id();
        let ids = ordered_map_indexed(1, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == main_id));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = ordered_map_indexed(4, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
