//! Fault injection and recovery.
//!
//! Re-executed and speculative tasks are a canonical, superlinearly
//! growing contributor to the paper's scale-out-induced workload
//! `Wo(n) = (Wp(n)/n)·q(n)`: every failure burns work that must be
//! redone, and the more tasks a job launches, the more failures it
//! collects. This module injects faults into a task wave and resolves
//! them under a recovery policy, deterministically:
//!
//! * [`FaultModel`] — per-attempt failure probability, a time-to-failure
//!   distribution ([`TimeToFailure`]: exponential or Weibull) deciding how
//!   much of the attempt was wasted, and correlated node crashes that
//!   lose every task resident on the crashed executor;
//! * [`RecoveryPolicy`] — retry with capped exponential backoff and
//!   deterministic jitter, speculative execution (a backup copy launches
//!   when a task exceeds `speculation_threshold ×` the running median;
//!   first copy to finish wins, the loser's work is charged to `Wo`), and
//!   an optional fail-fast wasted-work budget;
//! * [`resolve_faults`] — turns nominal task durations into *effective*
//!   durations (recovery latency on the schedule's critical path) plus a
//!   [`FaultSummary`] of wasted-work seconds (charged into `Wo(n)` by the
//!   engines) and per-task [`RecoveryEvent`]s.
//!
//! All randomness flows through the caller's [`SimRng`] in a fixed task
//! order, and a disabled model ([`FaultModel::enabled`] = `false`)
//! consumes zero draws — so runs stay byte-deterministic for any host
//! thread count and byte-identical to pre-fault builds when disabled.

use ipso_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Distribution of the time into an attempt at which a failure strikes.
///
/// The sampled value is clamped to the attempt's duration: a failure
/// cannot waste more work than the attempt had performed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimeToFailure {
    /// Memoryless failures at a constant hazard rate.
    Exponential {
        /// Mean time to failure, seconds.
        mean: f64,
    },
    /// Weibull failures: `shape < 1` models infant mortality (crashes
    /// early in the attempt — bad container placements, cold JVMs),
    /// `shape > 1` models wear-out.
    Weibull {
        /// Weibull shape parameter, `> 0`.
        shape: f64,
        /// Weibull scale parameter, seconds, `> 0`.
        scale: f64,
    },
}

impl TimeToFailure {
    /// Draws a failure time (seconds into the attempt).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            TimeToFailure::Exponential { mean } => rng.exponential(mean),
            TimeToFailure::Weibull { shape, scale } => rng.weibull(shape, scale),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] on a violated range.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let ok = match *self {
            TimeToFailure::Exponential { mean } => mean.is_finite() && mean > 0.0,
            TimeToFailure::Weibull { shape, scale } => {
                shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ClusterError::InvalidParameter {
                what: "time-to-failure",
                message: format!("parameters must be positive and finite, got {self:?}"),
            })
        }
    }
}

/// The fault-injection model for one task wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that any single task attempt fails.
    pub task_fail_prob: f64,
    /// How far into a failing attempt the failure strikes.
    pub ttf: TimeToFailure,
    /// Probability that a node (executor) crashes during the wave,
    /// losing the outputs of *all* tasks resident on it — the correlated
    /// failure mode that motivates Spark's lineage re-execution.
    pub node_crash_prob: f64,
    /// Fixed cost to restart a task after any failure (container
    /// re-negotiation, input re-read), seconds.
    pub restart_cost: f64,
}

impl FaultModel {
    /// The disabled model: no failures, no crashes, zero RNG draws.
    pub fn none() -> FaultModel {
        FaultModel {
            task_fail_prob: 0.0,
            ttf: TimeToFailure::Exponential { mean: 1.0 },
            node_crash_prob: 0.0,
            restart_cost: 0.0,
        }
    }

    /// A flaky-cluster preset: attempts fail with probability `p`, with
    /// infant-mortality (Weibull, shape 0.7) failure times and a 0.25 s
    /// restart cost. Node crashes stay disabled; set
    /// [`FaultModel::node_crash_prob`] separately.
    pub fn flaky(p: f64) -> FaultModel {
        FaultModel {
            task_fail_prob: p,
            ttf: TimeToFailure::Weibull {
                shape: 0.7,
                scale: 1.0,
            },
            node_crash_prob: 0.0,
            restart_cost: 0.25,
        }
    }

    /// Whether any fault source is active. When `false`, the engines
    /// bypass [`resolve_faults`] entirely: zero RNG draws, no events, no
    /// metrics — outputs stay byte-identical to a fault-free build.
    pub fn enabled(&self) -> bool {
        self.task_fail_prob > 0.0 || self.node_crash_prob > 0.0
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] on a violated range.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if !(0.0..=1.0).contains(&self.task_fail_prob) || !self.task_fail_prob.is_finite() {
            return Err(ClusterError::InvalidParameter {
                what: "task failure probability",
                message: format!("must be in [0, 1], got {}", self.task_fail_prob),
            });
        }
        if !(0.0..=1.0).contains(&self.node_crash_prob) || !self.node_crash_prob.is_finite() {
            return Err(ClusterError::InvalidParameter {
                what: "node crash probability",
                message: format!("must be in [0, 1], got {}", self.node_crash_prob),
            });
        }
        if !self.restart_cost.is_finite() || self.restart_cost < 0.0 {
            return Err(ClusterError::InvalidParameter {
                what: "restart cost",
                message: format!("must be finite and >= 0, got {}", self.restart_cost),
            });
        }
        self.ttf.validate()
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// How injected faults are recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum attempts per task (first run included), `>= 1`. A task
    /// failing all attempts aborts the job with
    /// [`ClusterError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Backoff before retry `k` is `min(cap, base · factor^(k−1))`,
    /// jittered. Base wait, seconds.
    pub backoff_base: f64,
    /// Exponential backoff growth factor, `>= 1`.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff wait, seconds.
    pub backoff_cap: f64,
    /// Multiplicative jitter half-width in `[0, 1)`: the wait is scaled
    /// by a seeded uniform draw in `[1 − jitter, 1 + jitter]`, so jitter
    /// is deterministic given the run's seed.
    pub backoff_jitter: f64,
    /// Launch a backup copy of a task whose effective duration exceeds
    /// `speculation_threshold ×` the running median of earlier tasks.
    /// First copy to finish wins; the loser's work is charged to `Wo`.
    pub speculation: bool,
    /// Slowdown multiple that triggers speculation, `> 1`.
    pub speculation_threshold: f64,
    /// Fail-fast guard: abort with [`ClusterError::WastedWorkExceeded`]
    /// when wasted work exceeds this fraction of the wave's useful work.
    /// `0` disables the guard.
    pub max_wasted_fraction: f64,
}

impl RecoveryPolicy {
    /// Hadoop-like defaults: 4 attempts, 0.25 s base backoff doubling up
    /// to 4 s with ±20% jitter, speculation off, no fail-fast budget.
    pub fn hadoop_like() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 4,
            backoff_base: 0.25,
            backoff_factor: 2.0,
            backoff_cap: 4.0,
            backoff_jitter: 0.2,
            speculation: false,
            speculation_threshold: 1.5,
            max_wasted_fraction: 0.0,
        }
    }

    /// This policy with speculative execution enabled.
    pub fn with_speculation(mut self) -> RecoveryPolicy {
        self.speculation = true;
        self
    }

    /// The jittered wait before retry attempt `attempt + 1` (i.e. after
    /// the `attempt`-th failure, 1-based).
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> f64 {
        let exp = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let wait = (self.backoff_base * exp).min(self.backoff_cap);
        wait * rng.jitter(self.backoff_jitter)
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] on a violated range.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.max_attempts == 0 {
            return Err(ClusterError::InvalidParameter {
                what: "max attempts",
                message: "must be at least 1".into(),
            });
        }
        for (what, v) in [
            ("backoff base", self.backoff_base),
            ("backoff cap", self.backoff_cap),
            ("max wasted fraction", self.max_wasted_fraction),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ClusterError::InvalidParameter {
                    what,
                    message: format!("must be finite and >= 0, got {v}"),
                });
            }
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(ClusterError::InvalidParameter {
                what: "backoff factor",
                message: format!("must be >= 1, got {}", self.backoff_factor),
            });
        }
        if !(0.0..1.0).contains(&self.backoff_jitter) {
            return Err(ClusterError::InvalidParameter {
                what: "backoff jitter",
                message: format!("must be in [0, 1), got {}", self.backoff_jitter),
            });
        }
        if !self.speculation_threshold.is_finite() || self.speculation_threshold <= 1.0 {
            return Err(ClusterError::InvalidParameter {
                what: "speculation threshold",
                message: format!("must exceed 1, got {}", self.speculation_threshold),
            });
        }
        Ok(())
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::hadoop_like()
    }
}

/// What happened to one task during fault resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryEventKind {
    /// An attempt failed and was retried after a backoff.
    AttemptFailed {
        /// Which attempt failed (1-based).
        attempt: u32,
        /// Work burned by the failed attempt, seconds (restart excluded).
        lost_s: f64,
        /// Jittered backoff waited before the retry, seconds.
        backoff_s: f64,
    },
    /// A completed task's output was lost to a node crash and recomputed.
    OutputLost {
        /// The crashed node (executor slot).
        node: u32,
        /// Work redone to restore the output, seconds.
        recompute_s: f64,
    },
    /// A backup copy was launched for a slow task.
    Speculated {
        /// Whether the backup finished before the original.
        backup_won: bool,
        /// The losing copy's work, charged to `Wo`, seconds.
        wasted_s: f64,
    },
}

/// One recovery event, attributed to a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// The task the event happened to.
    pub task: u32,
    /// What happened.
    pub kind: RecoveryEventKind,
}

/// Aggregated fault/recovery accounting of one run, recorded on the
/// [`crate::JobTrace`] so wasted work is attributable after the fact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Total attempts launched, speculative backups included. At least
    /// one per task.
    pub attempts: u32,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Nodes that crashed during the wave.
    pub node_crashes: u32,
    /// Completed task outputs lost to node crashes.
    pub outputs_lost: u32,
    /// Speculative backup copies launched.
    pub speculative_launches: u32,
    /// Backup copies that finished before their originals.
    pub speculative_wins: u32,
    /// Work burned by failed attempts and their restarts, seconds.
    pub retry_wasted_s: f64,
    /// Work redone after node crashes (lost outputs + restarts), seconds.
    pub crash_wasted_s: f64,
    /// Losing-copy work from speculative execution, seconds.
    pub speculation_wasted_s: f64,
    /// Per-task recovery events, in resolution order (task order within
    /// each resolution phase) — thread-count-invariant by construction.
    pub events: Vec<RecoveryEvent>,
}

impl FaultSummary {
    /// All wasted work, seconds — the amount the engines charge into
    /// `Wo(n)` on top of the recovery latency already in the schedule.
    pub fn wasted_total(&self) -> f64 {
        self.retry_wasted_s + self.crash_wasted_s + self.speculation_wasted_s
    }

    /// Checks the structural invariants of an engine-produced summary.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, v) in [
            ("retry_wasted_s", self.retry_wasted_s),
            ("crash_wasted_s", self.crash_wasted_s),
            ("speculation_wasted_s", self.speculation_wasted_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if self.speculative_wins > self.speculative_launches {
            return Err(format!(
                "{} speculative wins exceed {} launches",
                self.speculative_wins, self.speculative_launches
            ));
        }
        let speculated = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, RecoveryEventKind::Speculated { .. }))
            .count() as u32;
        if speculated != self.speculative_launches {
            return Err(format!(
                "{} Speculated events disagree with {} launches",
                speculated, self.speculative_launches
            ));
        }
        Ok(())
    }
}

/// The result of resolving a task wave's faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Effective per-task durations: nominal duration plus recovery
    /// latency (failed-attempt time, restarts, backoff waits, crash
    /// recomputation), shortened where a speculative backup won. These
    /// feed the wave schedule, so recovery latency lands on the critical
    /// path like any other task time.
    pub durations: Vec<f64>,
    /// Attempts per task (first run, retries, and speculative backups).
    pub attempts: Vec<u32>,
    /// Nodes (executor slots) that crashed, ascending.
    pub crashed_nodes: Vec<u32>,
    /// Aggregated accounting for the trace.
    pub summary: FaultSummary,
}

/// Resolves a task wave's faults under a recovery policy.
///
/// Deterministic by construction: RNG draws happen in a fixed order —
/// per task in index order (retry loop), then per node in slot order
/// (crash decisions) — and speculation consumes no randomness at all.
/// Tasks are assigned to nodes round-robin (`task i` on `node i %
/// executors`), matching [`crate::run_wave_schedule`]'s executor labels.
///
/// When observability is enabled, emits `fault.*` counters, a
/// `fault.task_attempts` histogram, and `overhead.*_wasted_s` gauges.
///
/// # Errors
///
/// * [`ClusterError::RetriesExhausted`] when a task fails all allowed
///   attempts;
/// * [`ClusterError::WastedWorkExceeded`] when the fail-fast budget
///   (`recovery.max_wasted_fraction > 0`) is exceeded;
/// * [`ClusterError::InvalidParameter`] when the model or policy fails
///   validation.
///
/// # Panics
///
/// Panics if `executors` is zero or any duration is negative/non-finite
/// (the same contract as [`crate::run_wave_schedule`]).
pub fn resolve_faults(
    durations: &[f64],
    executors: usize,
    faults: &FaultModel,
    recovery: &RecoveryPolicy,
    rng: &mut SimRng,
) -> Result<FaultOutcome, ClusterError> {
    faults.validate()?;
    recovery.validate()?;
    assert!(executors > 0, "need at least one executor");
    for &d in durations {
        assert!(
            d.is_finite() && d >= 0.0,
            "task durations must be finite and >= 0"
        );
    }

    let mut summary = FaultSummary::default();
    let mut attempts = vec![1u32; durations.len()];
    let mut effective = Vec::with_capacity(durations.len());

    // Phase 1 — per-task retry loop, in task order. Every attempt draws
    // one failure decision; a failed attempt additionally draws its
    // time-to-failure and backoff jitter.
    for (i, &dur) in durations.iter().enumerate() {
        let mut delay = 0.0;
        let mut attempt = 1u32;
        while faults.task_fail_prob > 0.0 && rng.uniform(0.0, 1.0) < faults.task_fail_prob {
            if attempt >= recovery.max_attempts {
                return Err(ClusterError::RetriesExhausted {
                    task: i as u32,
                    attempts: attempt,
                });
            }
            let lost = faults.ttf.sample(rng).min(dur);
            let backoff = recovery.backoff(attempt, rng);
            delay += lost + faults.restart_cost + backoff;
            summary.retry_wasted_s += lost + faults.restart_cost;
            summary.retries += 1;
            summary.events.push(RecoveryEvent {
                task: i as u32,
                kind: RecoveryEventKind::AttemptFailed {
                    attempt,
                    lost_s: lost,
                    backoff_s: backoff,
                },
            });
            attempt += 1;
        }
        attempts[i] = attempt;
        effective.push(delay + dur);
    }

    // Phase 2 — correlated node crashes, in node order. A crash loses
    // the (partially) completed outputs of every resident task: each is
    // recomputed, charging the lost fraction plus a restart.
    let mut crashed_nodes = Vec::new();
    if faults.node_crash_prob > 0.0 {
        for node in 0..executors.min(durations.len()) {
            if rng.uniform(0.0, 1.0) >= faults.node_crash_prob {
                continue;
            }
            let completed_fraction = rng.uniform(0.0, 1.0);
            crashed_nodes.push(node as u32);
            summary.node_crashes += 1;
            for i in (node..durations.len()).step_by(executors) {
                let lost = completed_fraction * durations[i];
                effective[i] += lost + faults.restart_cost;
                summary.crash_wasted_s += lost + faults.restart_cost;
                summary.outputs_lost += 1;
                attempts[i] += 1;
                summary.events.push(RecoveryEvent {
                    task: i as u32,
                    kind: RecoveryEventKind::OutputLost {
                        node: node as u32,
                        recompute_s: lost,
                    },
                });
            }
        }
    }

    // Phase 3 — speculative execution. No randomness: a backup copy of
    // task `i` launches once it exceeds `threshold ×` the running median
    // of the earlier (already-final) tasks and runs a median-length
    // copy; the first finisher wins and the loser's work is wasted.
    if recovery.speculation {
        let threshold = recovery.speculation_threshold;
        for i in 1..effective.len() {
            let median = median(&effective[..i]);
            if median <= 0.0 || effective[i] <= threshold * median {
                continue;
            }
            let launch = threshold * median;
            let backup_finish = launch + median;
            summary.speculative_launches += 1;
            attempts[i] += 1;
            let backup_won = backup_finish < effective[i];
            let wasted = if backup_won {
                // The original is killed when the backup finishes; its
                // whole run up to that point is wasted.
                effective[i] = backup_finish;
                backup_finish
            } else {
                // The original finishes first; the backup's partial run
                // is killed and wasted.
                effective[i] - launch
            };
            summary.speculation_wasted_s += wasted;
            if backup_won {
                summary.speculative_wins += 1;
            }
            summary.events.push(RecoveryEvent {
                task: i as u32,
                kind: RecoveryEventKind::Speculated {
                    backup_won,
                    wasted_s: wasted,
                },
            });
        }
    }

    summary.attempts = attempts.iter().sum();

    // Fail fast when the wasted-work budget is blown.
    if recovery.max_wasted_fraction > 0.0 {
        let useful: f64 = durations.iter().sum();
        let budget = recovery.max_wasted_fraction * useful;
        let wasted = summary.wasted_total();
        if wasted > budget {
            return Err(ClusterError::WastedWorkExceeded { wasted, budget });
        }
    }

    if ipso_obs::enabled() {
        ipso_obs::counter_add("fault.task_retries", u64::from(summary.retries));
        ipso_obs::counter_add("fault.node_crashes", u64::from(summary.node_crashes));
        ipso_obs::counter_add("fault.outputs_lost", u64::from(summary.outputs_lost));
        ipso_obs::counter_add(
            "fault.speculative_launches",
            u64::from(summary.speculative_launches),
        );
        ipso_obs::counter_add(
            "fault.speculative_wins",
            u64::from(summary.speculative_wins),
        );
        for &a in &attempts {
            ipso_obs::histogram_record("fault.task_attempts", u64::from(a));
        }
        ipso_obs::gauge_add("overhead.retry_wasted_s", summary.retry_wasted_s);
        ipso_obs::gauge_add("overhead.crash_wasted_s", summary.crash_wasted_s);
        ipso_obs::gauge_add(
            "overhead.speculation_wasted_s",
            summary.speculation_wasted_s,
        );
    }

    Ok(FaultOutcome {
        durations: effective,
        attempts,
        crashed_nodes,
        summary,
    })
}

/// Median of a non-empty slice (mean of the middle pair when even).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durations(n: usize) -> Vec<f64> {
        (0..n).map(|i| 8.0 + (i % 3) as f64).collect()
    }

    #[test]
    fn disabled_model_is_a_pass_through_with_zero_draws() {
        let d = durations(6);
        let mut rng = SimRng::seed_from(7);
        let out = resolve_faults(
            &d,
            3,
            &FaultModel::none(),
            &RecoveryPolicy::hadoop_like(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.durations, d);
        assert_eq!(out.attempts, vec![1; 6]);
        // One (successful) first attempt per task; nothing else recorded.
        assert_eq!(
            out.summary,
            FaultSummary {
                attempts: 6,
                ..FaultSummary::default()
            }
        );
        assert!(out.crashed_nodes.is_empty());
        // Zero draws consumed: the stream continues exactly where a
        // fresh generator with the same seed starts.
        let mut fresh = SimRng::seed_from(7);
        assert_eq!(rng.uniform(0.0, 1.0), fresh.uniform(0.0, 1.0));
    }

    #[test]
    fn resolution_is_deterministic_given_the_seed() {
        let d = durations(32);
        let faults = FaultModel {
            node_crash_prob: 0.1,
            ..FaultModel::flaky(0.2)
        };
        let recovery = RecoveryPolicy::hadoop_like().with_speculation();
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            resolve_faults(&d, 8, &faults, &recovery, &mut rng).unwrap()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).durations, run(12).durations);
    }

    #[test]
    fn retries_lengthen_tasks_and_charge_wasted_work() {
        let d = vec![10.0; 64];
        let faults = FaultModel::flaky(0.3);
        let mut rng = SimRng::seed_from(5);
        let out =
            resolve_faults(&d, 16, &faults, &RecoveryPolicy::hadoop_like(), &mut rng).unwrap();
        assert!(out.summary.retries > 0, "p = 0.3 over 64 tasks must fail");
        assert!(out.summary.retry_wasted_s > 0.0);
        assert_eq!(out.summary.attempts, out.attempts.iter().sum::<u32>());
        for (i, (&eff, &nominal)) in out.durations.iter().zip(&d).enumerate() {
            assert!(eff >= nominal, "task {i}: {eff} < {nominal}");
        }
        // Wasted work excludes backoff waits (idle, not burned work), so
        // it is bounded by retries × (max possible loss + restart).
        let bound = out.summary.retries as f64 * (10.0 + faults.restart_cost);
        assert!(out.summary.retry_wasted_s <= bound + 1e-9);
    }

    #[test]
    fn exhausted_retries_abort_with_typed_error() {
        let d = vec![1.0; 4];
        let faults = FaultModel::flaky(1.0); // every attempt fails
        let mut rng = SimRng::seed_from(1);
        let err = resolve_faults(&d, 2, &faults, &RecoveryPolicy::hadoop_like(), &mut rng)
            .expect_err("must exhaust");
        assert_eq!(
            err,
            ClusterError::RetriesExhausted {
                task: 0,
                attempts: 4
            }
        );
    }

    #[test]
    fn node_crash_loses_all_resident_tasks() {
        let d = vec![6.0; 12];
        let faults = FaultModel {
            node_crash_prob: 1.0,
            ..FaultModel::none()
        };
        let mut rng = SimRng::seed_from(3);
        let out = resolve_faults(&d, 4, &faults, &RecoveryPolicy::hadoop_like(), &mut rng).unwrap();
        // Every node crashes, so all 12 outputs are lost once.
        assert_eq!(out.crashed_nodes, vec![0, 1, 2, 3]);
        assert_eq!(out.summary.node_crashes, 4);
        assert_eq!(out.summary.outputs_lost, 12);
        assert!(out.summary.crash_wasted_s > 0.0);
        assert!(out.durations.iter().all(|&e| e >= 6.0));
    }

    #[test]
    fn speculation_caps_stragglers_and_charges_the_loser() {
        // Nine 1 s tasks and one 40 s straggler: the backup launches at
        // 1.5 × median = 1.5 s, finishes at 2.5 s and wins.
        let mut d = vec![1.0; 10];
        d[9] = 40.0;
        let recovery = RecoveryPolicy::hadoop_like().with_speculation();
        let mut rng = SimRng::seed_from(9);
        let out = resolve_faults(&d, 10, &FaultModel::none(), &recovery, &mut rng).unwrap();
        assert_eq!(out.summary.speculative_launches, 1);
        assert_eq!(out.summary.speculative_wins, 1);
        assert!(
            (out.durations[9] - 2.5).abs() < 1e-12,
            "{}",
            out.durations[9]
        );
        // The killed original ran 2.5 s — all wasted.
        assert!((out.summary.speculation_wasted_s - 2.5).abs() < 1e-12);
        assert_eq!(out.attempts[9], 2);
    }

    #[test]
    fn losing_backup_charges_only_its_partial_run() {
        // A 2 s task against a 1 s median: backup launches at 1.5 s,
        // would finish at 2.5 s — the original wins at 2 s, wasting the
        // backup's 0.5 s.
        let mut d = vec![1.0; 8];
        d[7] = 2.0;
        let recovery = RecoveryPolicy::hadoop_like().with_speculation();
        let mut rng = SimRng::seed_from(2);
        let out = resolve_faults(&d, 8, &FaultModel::none(), &recovery, &mut rng).unwrap();
        assert_eq!(out.summary.speculative_launches, 1);
        assert_eq!(out.summary.speculative_wins, 0);
        assert_eq!(out.durations[7], 2.0, "original's finish unchanged");
        assert!((out.summary.speculation_wasted_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fail_fast_budget_aborts_wasteful_runs() {
        let d = vec![5.0; 32];
        let faults = FaultModel::flaky(0.4);
        let mut recovery = RecoveryPolicy::hadoop_like();
        // Generous retry budget so the typed error below is the budget
        // check, not retry exhaustion.
        recovery.max_attempts = 12;
        recovery.max_wasted_fraction = 1e-6; // essentially any waste aborts
        let mut rng = SimRng::seed_from(8);
        let err = resolve_faults(&d, 8, &faults, &recovery, &mut rng).expect_err("must abort");
        assert!(matches!(err, ClusterError::WastedWorkExceeded { .. }));
        // A permissive budget admits the same run.
        recovery.max_wasted_fraction = 100.0;
        let mut rng = SimRng::seed_from(8);
        assert!(resolve_faults(&d, 8, &faults, &recovery, &mut rng).is_ok());
    }

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RecoveryPolicy {
            backoff_jitter: 0.0,
            ..RecoveryPolicy::hadoop_like()
        };
        let mut rng = SimRng::seed_from(1);
        let waits: Vec<f64> = (1..=6).map(|k| policy.backoff(k, &mut rng)).collect();
        assert_eq!(waits[0], 0.25);
        assert_eq!(waits[1], 0.5);
        assert_eq!(waits[2], 1.0);
        assert_eq!(waits[5], 4.0, "capped at backoff_cap");
        assert!(waits.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn summaries_satisfy_their_invariants() {
        let d = durations(24);
        let faults = FaultModel {
            node_crash_prob: 0.2,
            ..FaultModel::flaky(0.25)
        };
        let recovery = RecoveryPolicy::hadoop_like().with_speculation();
        let mut rng = SimRng::seed_from(6);
        let out = resolve_faults(&d, 6, &faults, &recovery, &mut rng).unwrap();
        out.summary.check_invariants().unwrap();
        assert!(out.summary.wasted_total() > 0.0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::flaky(1.5).validate().is_err());
        assert!(FaultModel {
            restart_cost: -1.0,
            ..FaultModel::none()
        }
        .validate()
        .is_err());
        assert!(TimeToFailure::Weibull {
            shape: 0.0,
            scale: 1.0
        }
        .validate()
        .is_err());
        assert!(TimeToFailure::Exponential { mean: 0.0 }.validate().is_err());
        let mut r = RecoveryPolicy::hadoop_like();
        r.max_attempts = 0;
        assert!(r.validate().is_err());
        let mut r = RecoveryPolicy::hadoop_like();
        r.backoff_factor = 0.5;
        assert!(r.validate().is_err());
        let mut r = RecoveryPolicy::hadoop_like();
        r.speculation_threshold = 1.0;
        assert!(r.validate().is_err());
        let mut r = RecoveryPolicy::hadoop_like();
        r.backoff_jitter = 1.0;
        assert!(r.validate().is_err());
        assert!(FaultModel::none().validate().is_ok());
        assert!(RecoveryPolicy::hadoop_like().validate().is_ok());
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let d = durations(16);
        let faults = FaultModel {
            node_crash_prob: 0.3,
            ..FaultModel::flaky(0.3)
        };
        let recovery = RecoveryPolicy::hadoop_like().with_speculation();
        let mut rng = SimRng::seed_from(4);
        let out = resolve_faults(&d, 4, &faults, &recovery, &mut rng).unwrap();
        assert!(!out.summary.events.is_empty());
        let json = serde_json::to_string(&out.summary).unwrap();
        let back: FaultSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out.summary);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }
}
