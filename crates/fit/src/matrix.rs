//! A small dense linear-algebra kernel.
//!
//! The fitting routines in this crate only need matrices with a handful of
//! columns (one per model parameter), so a simple row-major `Vec<f64>`
//! representation with partial-pivot Gaussian elimination is both adequate
//! and dependency-free.

use crate::FitError;

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use ipso_fit::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let b = a.mul(&Matrix::identity(2));
/// assert_eq!(b.get(1, 1), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a column vector from a slice.
    pub fn column(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "column vector must be non-empty");
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix multiplication `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Adds `lambda` to every diagonal element, in place. Used by the
    /// Levenberg–Marquardt damping step.
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let v = self.get(i, i) + lambda;
            self.set(i, i, v);
        }
    }

    /// Solves the linear system `self · x = rhs` for `x` using Gaussian
    /// elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::Singular`] if the matrix is (numerically)
    /// singular, and [`FitError::NonFinite`] if a non-finite value appears
    /// during elimination.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `rhs` has a different row count.
    pub fn solve(&self, rhs: &Matrix) -> Result<Matrix, FitError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(rhs.rows, self.rows, "rhs row count must match");
        let n = self.rows;
        let m = rhs.cols;

        // Augmented working copies.
        let mut a = self.clone();
        let mut b = rhs.clone();

        for col in 0..n {
            // Partial pivot: find the row with the largest magnitude in this
            // column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a.get(col, col).abs();
            for r in (col + 1)..n {
                let v = a.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if !pivot_val.is_finite() {
                return Err(FitError::NonFinite);
            }
            if pivot_val < 1e-12 {
                return Err(FitError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot_row, c));
                    a.set(col, c, y);
                    a.set(pivot_row, c, x);
                }
                for c in 0..m {
                    let (x, y) = (b.get(col, c), b.get(pivot_row, c));
                    b.set(col, c, y);
                    b.set(pivot_row, c, x);
                }
            }
            // Eliminate below the pivot.
            let pivot = a.get(col, col);
            for r in (col + 1)..n {
                let factor = a.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a.get(r, c) - factor * a.get(col, c);
                    a.set(r, c, v);
                }
                for c in 0..m {
                    let v = b.get(r, c) - factor * b.get(col, c);
                    b.set(r, c, v);
                }
            }
        }

        // Back substitution.
        let mut x = Matrix::zeros(n, m);
        for c in 0..m {
            for r in (0..n).rev() {
                let mut sum = b.get(r, c);
                for k in (r + 1)..n {
                    sum -= a.get(r, k) * x.get(k, c);
                }
                let v = sum / a.get(r, r);
                if !v.is_finite() {
                    return Err(FitError::NonFinite);
                }
                x.set(r, c, v);
            }
        }
        Ok(x)
    }

    /// Solves the normal equations `(Xᵀ·X)·β = Xᵀ·y` for least squares.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError::Singular`] / [`FitError::NonFinite`] from
    /// [`Matrix::solve`].
    pub fn least_squares(design: &Matrix, y: &Matrix) -> Result<Matrix, FitError> {
        let xt = design.transpose();
        let xtx = xt.mul(design);
        let xty = xt.mul(y);
        xtx.solve(&xty)
    }

    /// Returns the contents of a single-column matrix as a `Vec<f64>`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than one column.
    pub fn into_column_vec(self) -> Vec<f64> {
        assert_eq!(
            self.cols, 1,
            "into_column_vec requires a single-column matrix"
        );
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, -1.0]]);
        let b = Matrix::column(&[5.0, 1.0]);
        let x = a.solve(&b).unwrap().into_column_vec();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal requires a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::column(&[3.0, 7.0]);
        let x = a.solve(&b).unwrap().into_column_vec();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::column(&[1.0, 2.0]);
        assert_eq!(a.solve(&b).unwrap_err(), FitError::Singular);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3 + 2x sampled at x = 0..5, design matrix [1, x].
        let xs: Vec<f64> = (0..5).map(|v| v as f64).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let design = Matrix::from_rows(&row_refs);
        let y = Matrix::column(&xs.iter().map(|&x| 3.0 + 2.0 * x).collect::<Vec<_>>());
        let beta = Matrix::least_squares(&design, &y)
            .unwrap()
            .into_column_vec();
        assert!((beta[0] - 3.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn add_diagonal_damps_in_place() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(0.5);
        for i in 0..3 {
            assert!((a.get(i, i) - 1.5).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions must match")]
    fn mul_rejects_mismatched_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn solve_3x3_system() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[0.0, 2.0, 5.0], &[2.0, 5.0, -1.0]]);
        let b = Matrix::column(&[6.0, -4.0, 27.0]);
        let x = a.solve(&b).unwrap().into_column_vec();
        // Known solution: x = 5, y = 3, z = -2
        assert!((x[0] - 5.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 2.0).abs() < 1e-10);
    }
}
