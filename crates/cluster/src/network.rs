//! Network transfer-time models.
//!
//! Three patterns dominate the paper's case studies:
//!
//! * **point-to-point** — a plain `bytes / bandwidth` transfer;
//! * **broadcast** — the master pushes the same payload to every worker.
//!   Without a broadcast tree the master NIC serializes the `n` unicasts,
//!   so the cost grows *linearly in `n`* — exactly the overhead that gives
//!   Collaborative Filtering its `q(n) ∝ n²` pathology (\[12\], Fig. 8);
//! * **shuffle / incast** — `n` mappers push to one reducer. Beyond raw
//!   bytes the reducer suffers TCP incast collapse as fan-in grows (\[13\]),
//!   modelled as a goodput penalty increasing with `n`.

use serde::{Deserialize, Serialize};

use crate::spec::ClusterSpec;

/// Transfer-time model for a master/worker cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Master NIC bandwidth, bytes/s.
    pub master_bandwidth: f64,
    /// Worker NIC bandwidth, bytes/s.
    pub worker_bandwidth: f64,
    /// Per-message latency floor, seconds.
    pub latency: f64,
    /// Incast goodput degradation per additional concurrent sender
    /// (dimensionless; 0 disables the effect). With fan-in `n` the
    /// effective receive goodput is `worker_bandwidth / (1 + incast·(n−1))`.
    pub incast_coefficient: f64,
    /// `true` to broadcast over a binomial tree (cost ~ log₂ n) instead of
    /// serialized master unicasts (cost ~ n). The paper's Spark era used
    /// serialized HTTP broadcast, which is the pathological default.
    pub tree_broadcast: bool,
}

impl NetworkModel {
    /// Builds the model from a cluster specification with the paper-era
    /// defaults: serialized broadcast, mild incast.
    pub fn from_cluster(spec: &ClusterSpec) -> NetworkModel {
        NetworkModel {
            master_bandwidth: spec.master.net_bandwidth,
            worker_bandwidth: spec.worker.net_bandwidth,
            latency: 0.5e-3,
            incast_coefficient: 0.02,
            tree_broadcast: false,
        }
    }

    /// Point-to-point transfer time for `bytes` between two workers.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        ipso_obs::counter_add("network.p2p_transfers", 1);
        self.latency + bytes as f64 / self.worker_bandwidth
    }

    /// Time for the master to broadcast `bytes` to `n` workers.
    ///
    /// Serialized unicast: `n · (latency + bytes/master_bw)` — linear in
    /// `n`. Tree broadcast: `ceil(log₂(n+1))` rounds of worker-bandwidth
    /// transfers.
    pub fn broadcast_time(&self, bytes: u64, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        if ipso_obs::enabled() {
            ipso_obs::counter_add("network.broadcasts", 1);
            ipso_obs::counter_add("network.broadcast_bytes", bytes * u64::from(n));
        }
        if self.tree_broadcast {
            let rounds = (n as f64 + 1.0).log2().ceil();
            rounds * (self.latency + bytes as f64 / self.worker_bandwidth)
        } else {
            n as f64 * (self.latency + bytes as f64 / self.master_bandwidth)
        }
    }

    /// Time for `n` senders to deliver `bytes_per_sender` each into a
    /// single receiver (the single-reducer shuffle), including the incast
    /// goodput penalty.
    pub fn incast_shuffle_time(&self, bytes_per_sender: u64, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        if ipso_obs::enabled() {
            ipso_obs::counter_add("network.incast_shuffles", 1);
            ipso_obs::counter_add("network.shuffle_bytes", bytes_per_sender * u64::from(n));
        }
        let total = bytes_per_sender as f64 * n as f64;
        let goodput = self.worker_bandwidth / (1.0 + self.incast_coefficient * (n as f64 - 1.0));
        self.latency + total / goodput
    }

    /// Effective receive goodput (bytes/s) at fan-in `n`.
    pub fn incast_goodput(&self, n: u32) -> f64 {
        self.worker_bandwidth / (1.0 + self.incast_coefficient * (n.max(1) as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MIB;

    fn model() -> NetworkModel {
        NetworkModel::from_cluster(&ClusterSpec::emr(8))
    }

    #[test]
    fn p2p_is_bandwidth_bound() {
        let m = model();
        let t = m.p2p_time(56 * MIB);
        // ~56 MiB at 56.25 MB/s ≈ 1.04 s.
        assert!((1.0..1.2).contains(&t), "t = {t}");
    }

    #[test]
    fn serialized_broadcast_is_linear_in_n() {
        let m = model();
        let t10 = m.broadcast_time(10 * MIB, 10);
        let t20 = m.broadcast_time(10 * MIB, 20);
        assert!((t20 / t10 - 2.0).abs() < 1e-9);
        assert_eq!(m.broadcast_time(MIB, 0), 0.0);
    }

    #[test]
    fn tree_broadcast_is_logarithmic() {
        let mut m = model();
        m.tree_broadcast = true;
        let t15 = m.broadcast_time(10 * MIB, 15);
        let t255 = m.broadcast_time(10 * MIB, 255);
        // log2(16) = 4 rounds vs log2(256) = 8 rounds.
        assert!((t255 / t15 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tree_beats_serial_at_scale() {
        let serial = model();
        let mut tree = model();
        tree.tree_broadcast = true;
        assert!(tree.broadcast_time(100 * MIB, 60) < serial.broadcast_time(100 * MIB, 60));
    }

    #[test]
    fn incast_penalty_grows_with_fanin() {
        let m = model();
        // Same total bytes, split among more senders: incast makes wider
        // fan-in slower.
        let narrow = m.incast_shuffle_time(64 * MIB, 4);
        let wide = m.incast_shuffle_time(16 * MIB, 16);
        assert!(wide > narrow, "wide = {wide}, narrow = {narrow}");
        assert!(m.incast_goodput(16) < m.incast_goodput(4));
    }

    #[test]
    fn zero_incast_coefficient_disables_penalty() {
        let mut m = model();
        m.incast_coefficient = 0.0;
        let narrow = m.incast_shuffle_time(64 * MIB, 4);
        let wide = m.incast_shuffle_time(16 * MIB, 16);
        assert!((narrow - wide).abs() < 1e-12);
    }

    #[test]
    fn shuffle_scales_with_total_bytes() {
        let m = model();
        let t1 = m.incast_shuffle_time(10 * MIB, 8);
        let t2 = m.incast_shuffle_time(20 * MIB, 8);
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1);
    }
}
