//! Ordinary least squares for straight lines.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::FitError;

/// Result of fitting `y = intercept + slope · x`.
///
/// # Example
///
/// ```
/// use ipso_fit::fit_line;
///
/// # fn main() -> Result<(), ipso_fit::FitError> {
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let fit = fit_line(&x, &y)?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!(fit.gof.r_squared > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept (zero for [`fit_line_through_origin`]).
    pub intercept: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Goodness-of-fit statistics.
    pub gof: GoodnessOfFit,
}

impl LineFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by ordinary least squares.
///
/// # Errors
///
/// Returns an error if the inputs are mismatched, have fewer than two
/// points, contain non-finite values, or all `x` values are identical
/// ([`FitError::Singular`]).
pub fn fit_line(x: &[f64], y: &[f64]) -> Result<LineFit, FitError> {
    validate_xy(x, y, 2)?;
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mean_x).powi(2)).sum();
    if sxx < 1e-18 {
        return Err(FitError::Singular);
    }
    let sxy: f64 = x
        .iter()
        .zip(y)
        .map(|(xv, yv)| (xv - mean_x) * (yv - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let predicted: Vec<f64> = x.iter().map(|&xv| intercept + slope * xv).collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, 2);
    let dof = (x.len() as f64 - 2.0).max(1.0);
    let slope_stderr = (gof.ss_res / dof / sxx).sqrt();
    Ok(LineFit {
        slope,
        intercept,
        slope_stderr,
        gof,
    })
}

/// Fits `y = b·x` (a line through the origin) by least squares.
///
/// Useful for external-scaling factors which satisfy `EX(1) = 1` and are
/// expected to be proportional to `n`.
///
/// # Errors
///
/// Returns an error on mismatched input, fewer than one point, non-finite
/// values, or all-zero `x` ([`FitError::Singular`]).
pub fn fit_line_through_origin(x: &[f64], y: &[f64]) -> Result<LineFit, FitError> {
    validate_xy(x, y, 1)?;
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx < 1e-18 {
        return Err(FitError::Singular);
    }
    let sxy: f64 = x.iter().zip(y).map(|(xv, yv)| xv * yv).sum();
    let slope = sxy / sxx;
    let predicted: Vec<f64> = x.iter().map(|&xv| slope * xv).collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, 1);
    let dof = (x.len() as f64 - 1.0).max(1.0);
    let slope_stderr = (gof.ss_res / dof / sxx).sqrt();
    Ok(LineFit {
        slope,
        intercept: 0.0,
        slope_stderr,
        gof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let x: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.11 + 0.36 * v).collect();
        let fit = fit_line(&x, &y).unwrap();
        assert!((fit.slope - 0.36).abs() < 1e-12);
        assert!((fit.intercept + 0.11).abs() < 1e-12);
        assert_eq!(fit.gof.r_squared, 1.0);
        assert!(fit.slope_stderr < 1e-10);
    }

    #[test]
    fn noisy_line_close_to_truth() {
        // Deterministic pseudo-noise so the test is stable.
        let x: Vec<f64> = (1..=50).map(|v| v as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 5.0 + 2.0 * v + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = fit_line(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!((fit.intercept - 5.0).abs() < 0.35);
        assert!(fit.gof.r_squared > 0.999);
    }

    #[test]
    fn identical_x_is_singular() {
        let err = fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, FitError::Singular);
    }

    #[test]
    fn through_origin_recovers_slope() {
        let x = [1.0, 2.0, 4.0, 8.0];
        let y = [1.5, 3.0, 6.0, 12.0];
        let fit = fit_line_through_origin(&x, &y).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-12);
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn through_origin_rejects_all_zero_x() {
        let err = fit_line_through_origin(&[0.0, 0.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, FitError::Singular);
    }

    #[test]
    fn predict_evaluates_line() {
        let fit = fit_line(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_rejected() {
        let err = fit_line(&[1.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            FitError::TooFewPoints {
                points: 1,
                required: 2
            }
        );
    }
}
