#![warn(missing_docs)]

//! Experiment harness shared by the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it: the binary prints the series the paper
//! plots (aligned, human-readable) and writes the same data as CSV under
//! `results/`. Run them all with `cargo run -p ipso-bench --bin
//! all_experiments --release`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_taxonomy_fixed_time` | Fig. 2 — fixed-time taxonomy curves |
//! | `fig3_taxonomy_fixed_size` | Fig. 3 — fixed-size taxonomy curves |
//! | `fig4_mapreduce_speedups` | Fig. 4 — measured vs Gustafson, 4 jobs |
//! | `fig5_terasort_stepwise` | Fig. 5 — TeraSort step-wise `IN(n)` |
//! | `fig6_scaling_factors` | Fig. 6 — `EX(n)`, `IN(n)` fits |
//! | `fig7_ipso_prediction` | Fig. 7 — IPSO vs measured vs Gustafson |
//! | `table1_collab_filtering` | Table I — CF workload measurements |
//! | `fig8_collab_filtering` | Fig. 8 — CF workload fits and speedups |
//! | `fig9_spark_fixed_time` | Fig. 9 — Spark fixed-time dimension |
//! | `fig10_spark_fixed_size` | Fig. 10 — Spark fixed-size dimension |
//! | `provisioning_tradeoffs` | §I/§VI — speedup-versus-cost analysis |

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub mod parallel;

pub use parallel::{jobs_from_args, PointCtx, SweepRunner};

/// Where experiment CSVs are written: `<workspace>/results/`.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Locates the workspace root by walking up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels down")
        .to_path_buf()
}

/// A rectangular experiment result: named columns plus rows of numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment identifier (`fig4-sort`, `table1`, …).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(name: &str, columns: &[&str]) -> Table {
        assert!(!columns.is_empty(), "a table needs columns");
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format_number(*v)).collect())
            .collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Writes the table as `results/<name>.csv` and returns the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (experiment binaries want loud failures).
    pub fn write_csv(&self) -> PathBuf {
        let path = results_dir().join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("cannot create CSV");
        writeln!(f, "{}", self.columns.join(",")).expect("csv write failed");
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format_number(*v)).collect();
            writeln!(f, "{}", line.join(",")).expect("csv write failed");
        }
        path
    }

    /// Prints the table and writes the CSV — what every binary does.
    pub fn emit(&self) {
        print!("{}", self.render());
        let path = self.write_csv();
        println!("-> {}\n", path.display());
    }

    /// Column index by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn column(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name:?} in table {}", self.name))
    }

    /// All values of one column.
    pub fn values(&self, name: &str) -> Vec<f64> {
        let idx = self.column(name);
        self.rows.iter().map(|r| r[idx]).collect()
    }
}

/// The experiment binaries' shared `--trace-out FILE` support.
///
/// Call [`trace_out_from_env`] first thing in `main`; if the flag is
/// present the observability layer is enabled for the whole run, and
/// [`TraceOut::finish`] writes the collected spans as a Chrome
/// trace-event (Perfetto) file. Without the flag both calls are no-ops.
#[derive(Debug)]
#[must_use = "call finish() at the end of main to write the trace"]
pub struct TraceOut {
    path: Option<PathBuf>,
}

/// Parses `--trace-out FILE` (or `--trace-out=FILE`) from the process
/// arguments and, when present, switches tracing on.
pub fn trace_out_from_env() -> TraceOut {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--trace-out" && i + 1 < raw.len() {
            path = Some(PathBuf::from(&raw[i + 1]));
            i += 2;
        } else if let Some(p) = raw[i].strip_prefix("--trace-out=") {
            path = Some(PathBuf::from(p));
            i += 1;
        } else {
            i += 1;
        }
    }
    if path.is_some() {
        ipso_obs::set_enabled(true);
        ipso_obs::reset();
    }
    TraceOut { path }
}

impl TraceOut {
    /// Writes the timeline collected since [`trace_out_from_env`] (if
    /// `--trace-out` was given) and disables tracing again.
    ///
    /// # Panics
    ///
    /// Panics if the output file cannot be written (experiment binaries
    /// want loud failures).
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        let events = ipso_obs::take_events();
        ipso_obs::set_enabled(false);
        ipso_obs::write_chrome_trace(&path, &events).expect("cannot write --trace-out file");
        println!(
            "{} trace events -> {} (open in https://ui.perfetto.dev)",
            events.len(),
            path.display()
        );
    }
}

fn format_number(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.fract() == 0.0 && v.abs() < 1e9 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "speedup"]);
        t.push(vec![1.0, 1.0]);
        t.push(vec![128.0, 20.5]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("n  speedup"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn column_lookup() {
        let mut t = Table::new("x", &["n", "s"]);
        t.push(vec![2.0, 3.0]);
        assert_eq!(t.column("s"), 1);
        assert_eq!(t.values("n"), vec![2.0]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(3.25), "3.250");
        assert_eq!(format_number(0.0061), "0.00610");
        // Banker's rounding of {:.0}.
        assert_eq!(format_number(1602.5), "1602");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = Table::new("unit-test-csv", &["a", "b"]);
        t.push(vec![1.0, 2.0]);
        let path = t.write_csv();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a,b\n1,2\n"));
        std::fs::remove_file(path).ok();
    }
}
