//! Criterion micro-benchmarks of the regression substrate — the fitting
//! cost bounds how fast the measurement-based provisioning loop the paper
//! proposes could run online.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipso_fit::{
    fit_line, fit_polynomial, fit_power_law, fit_two_segment, levenberg_marquardt, NonlinearOptions,
};

fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (1..=n).map(|v| v as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 0.36 * x - 0.11 + 0.01 * (x * 12.9898).sin())
        .collect();
    (xs, ys)
}

fn bench_linear(c: &mut Criterion) {
    let (xs, ys) = data(64);
    c.bench_function("fit_line_64", |b| {
        b.iter(|| fit_line(black_box(&xs), black_box(&ys)).expect("fits"))
    });
    c.bench_function("fit_polynomial_deg3_64", |b| {
        b.iter(|| fit_polynomial(black_box(&xs), black_box(&ys), 3).expect("fits"))
    });
}

fn bench_power_law(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=64).map(|v| v as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 0.0061 * x * x).collect();
    c.bench_function("fit_power_law_64", |b| {
        b.iter(|| fit_power_law(black_box(&xs), black_box(&ys)).expect("fits"))
    });
}

fn bench_segmented(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=64).map(|v| v as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            if x <= 15.0 {
                0.15 * x + 0.85
            } else {
                0.25 * x + 1.5
            }
        })
        .collect();
    c.bench_function("fit_two_segment_64", |b| {
        b.iter(|| fit_two_segment(black_box(&xs), black_box(&ys), 3).expect("fits"))
    });
}

fn bench_levenberg_marquardt(c: &mut Criterion) {
    let xs = [10.0, 30.0, 60.0, 90.0];
    let ys: Vec<f64> = xs.iter().map(|&n| 1800.0 / n + 12.0).collect();
    c.bench_function("lm_hyperbola_4pt", |b| {
        b.iter(|| {
            levenberg_marquardt(
                |p, n| p[0] / n + p[1],
                black_box(&xs),
                black_box(&ys),
                &[1000.0, 0.0],
                &NonlinearOptions::default(),
            )
            .expect("converges")
        })
    });
}

criterion_group!(
    benches,
    bench_linear,
    bench_power_law,
    bench_segmented,
    bench_levenberg_marquardt
);
criterion_main!(benches);
