//! Random text over a 1000-word dictionary.
//!
//! The paper: *"The working data sets for WordCount and Sort are randomly
//! generated text, drawn from a UNIX dictionary that contains 1000
//! words."* We synthesize a deterministic 1000-word dictionary with a
//! UNIX-`words`-like length distribution and draw text from it.

use ipso_sim::SimRng;

/// Number of words in the generated dictionary.
pub const DICTIONARY_SIZE: usize = 1000;

const SYLLABLES: &[&str] = &[
    "an", "ber", "cal", "dor", "el", "fin", "gra", "hol", "in", "jun", "kel", "lor", "mer", "nor",
    "ol", "per", "qua", "rin", "sol", "tur", "ul", "ver", "win", "xen", "yor", "zan",
];

/// The deterministic 1000-word dictionary. Words are distinct, lowercase
/// and between 2 and 12 characters, resembling `/usr/share/dict/words`
/// entries.
pub fn unix_dictionary() -> Vec<String> {
    let mut words = Vec::with_capacity(DICTIONARY_SIZE);
    let mut i = 0usize;
    while words.len() < DICTIONARY_SIZE {
        // Compose 1–3 syllables deterministically from the index.
        let s1 = SYLLABLES[i % SYLLABLES.len()];
        let s2 = SYLLABLES[(i / SYLLABLES.len()) % SYLLABLES.len()];
        let s3 = SYLLABLES[(i / (SYLLABLES.len() * SYLLABLES.len())) % SYLLABLES.len()];
        let word = match i % 3 {
            0 => s1.to_string(),
            1 => format!("{s1}{s2}"),
            _ => format!("{s1}{s2}{s3}"),
        };
        if !words.contains(&word) {
            words.push(word);
        }
        i += 1;
    }
    words
}

/// Generates `lines` lines of `words_per_line` random dictionary words.
pub fn random_lines(lines: usize, words_per_line: usize, rng: &mut SimRng) -> Vec<String> {
    let dict = unix_dictionary();
    (0..lines)
        .map(|_| {
            let mut line = String::new();
            for w in 0..words_per_line {
                if w > 0 {
                    line.push(' ');
                }
                line.push_str(&dict[rng.index(dict.len())]);
            }
            line
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_has_exactly_1000_distinct_words() {
        let d = unix_dictionary();
        assert_eq!(d.len(), DICTIONARY_SIZE);
        let unique: std::collections::HashSet<&String> = d.iter().collect();
        assert_eq!(unique.len(), DICTIONARY_SIZE);
    }

    #[test]
    fn words_look_like_dictionary_entries() {
        for w in unix_dictionary() {
            assert!((2..=12).contains(&w.len()), "bad word {w:?}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dictionary_is_deterministic() {
        assert_eq!(unix_dictionary(), unix_dictionary());
    }

    #[test]
    fn lines_draw_from_the_dictionary() {
        let dict: std::collections::HashSet<String> = unix_dictionary().into_iter().collect();
        let mut rng = SimRng::seed_from(1);
        let lines = random_lines(50, 8, &mut rng);
        assert_eq!(lines.len(), 50);
        for line in &lines {
            let words: Vec<&str> = line.split(' ').collect();
            assert_eq!(words.len(), 8);
            for w in words {
                assert!(dict.contains(w), "unknown word {w:?}");
            }
        }
    }

    #[test]
    fn lines_are_seeded() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        assert_eq!(random_lines(10, 5, &mut a), random_lines(10, 5, &mut b));
    }
}
