//! The six-step diagnostic procedure of Section V.
//!
//! Given a measured speedup curve and the workload type, the paper
//! recommends:
//!
//! 1. determine the use-case scenario (fixed-time or fixed-size);
//! 2. measure the speedup as the scale-out degree increases;
//! 3. plot the points (optionally with a regression curve as a guide);
//! 4. compare the trend with Fig. 2 / Fig. 3 to identify the matched type;
//! 5. for types I, II and IV the root cause is directly identified;
//! 6. for type III, estimate δ and γ from detailed measurements to pin
//!    down the sub-type.
//!
//! [`Diagnostician`] automates steps 4–5 from the curve alone and step 6
//! when factor estimates are available.

use crate::estimate::FactorEstimates;
use crate::measurement::SpeedupCurve;
use crate::taxonomy::{classify, FixedSizeClass, FixedTimeClass, ScalingClass, WorkloadType};
use crate::ModelError;
use ipso_fit::{fit_power_law, levenberg_marquardt, NonlinearOptions};

/// Fraction of the peak below which the final point must fall before we
/// call a curve "peaked" rather than noisy-flat.
const PEAK_DROP: f64 = 0.93;

/// Tail log–log slope above which growth is considered linear.
const LINEAR_SLOPE: f64 = 0.85;

/// Tail log–log slope below which the curve is treated as saturating.
const FLAT_SLOPE: f64 = 0.12;

/// The coarse trend identified from the speedup curve alone (step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Near-linear unbounded growth (type I).
    Linear,
    /// Sublinear but clearly still growing (type II).
    SublinearUnbounded,
    /// Monotone growth that saturates towards a bound (type III).
    Bounded,
    /// A peak followed by decline (type IV).
    Peaked,
}

impl std::fmt::Display for Trend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trend::Linear => write!(f, "linear unbounded"),
            Trend::SublinearUnbounded => write!(f, "sublinear unbounded"),
            Trend::Bounded => write!(f, "monotone, upper-bounded"),
            Trend::Peaked => write!(f, "peaked (rises then falls)"),
        }
    }
}

/// The outcome of a diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisReport {
    /// The workload type assumed (step 1).
    pub workload: WorkloadType,
    /// Coarse trend matched from the curve (step 4).
    pub trend: Trend,
    /// The matched scaling class. For type III the sub-type is only
    /// resolved when factor estimates were supplied (step 6); without them
    /// the `·,1` sub-type is reported with a note.
    pub class: ScalingClass,
    /// Whether the sub-type of a type-III diagnosis was resolved exactly.
    pub subtype_resolved: bool,
    /// Estimated tail growth exponent of the speedup curve.
    pub tail_exponent: f64,
    /// Estimated speedup bound for bounded trends.
    pub bound_estimate: Option<f64>,
    /// Observed peak `(n, S)` for peaked trends.
    pub peak: Option<(u32, f64)>,
    /// Human-readable root-cause analysis (step 5).
    pub root_cause: String,
}

impl std::fmt::Display for DiagnosisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "workload type : {}", self.workload)?;
        writeln!(f, "trend         : {}", self.trend)?;
        writeln!(f, "scaling class : {}", self.class)?;
        writeln!(f, "tail exponent : {:.3}", self.tail_exponent)?;
        if let Some(b) = self.bound_estimate {
            writeln!(f, "speedup bound : {b:.2}")?;
        }
        if let Some((n, s)) = self.peak {
            writeln!(f, "peak          : S({n}) = {s:.2}")?;
        }
        write!(f, "root cause    : {}", self.root_cause)
    }
}

/// Runs the diagnostic procedure on measured speedup curves.
#[derive(Debug, Clone, Copy, Default)]
pub struct Diagnostician {
    _private: (),
}

impl Diagnostician {
    /// Creates a diagnostician.
    pub fn new() -> Self {
        Diagnostician::default()
    }

    /// Steps 4–5: identify the scaling type from the curve alone.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InsufficientData`] with fewer than four
    /// points, or regression errors from the trend fits.
    pub fn diagnose(
        &self,
        curve: &SpeedupCurve,
        workload: WorkloadType,
    ) -> Result<DiagnosisReport, ModelError> {
        if curve.len() < 4 {
            return Err(ModelError::InsufficientData {
                points: curve.len(),
                required: 4,
            });
        }
        let ns = curve.ns();
        let speedups = curve.speedups();
        let peak = curve.peak().expect("non-empty curve");
        let last = *curve.points().last().expect("non-empty curve");

        // Tail exponent from the upper half of the curve in log–log space.
        let half = curve.len() / 2;
        let tail_n: Vec<f64> = ns[half..].to_vec();
        let tail_s: Vec<f64> = speedups[half..].to_vec();
        let tail_exponent = match fit_power_law(&tail_n, &tail_s) {
            Ok(f) => f.exponent,
            Err(_) => 0.0, // non-positive speedups: decayed to ~0, IVish
        };

        // Peaked: the peak is interior and the curve has clearly dropped.
        let peaked = peak.n < last.n && last.speedup < PEAK_DROP * peak.speedup;

        let (trend, bound_estimate) = if peaked {
            (Trend::Peaked, Some(0.0))
        } else if tail_exponent >= LINEAR_SLOPE {
            (Trend::Linear, None)
        } else if tail_exponent <= FLAT_SLOPE {
            let bound = estimate_bound(&ns, &speedups).unwrap_or(last.speedup);
            (Trend::Bounded, Some(bound))
        } else {
            // Ambiguous middle ground: compare an unbounded power law with
            // a saturating model S(n) = L·n/(n+k) on the whole curve.
            match compare_models(&ns, &speedups)? {
                ModelChoice::PowerLaw => (Trend::SublinearUnbounded, None),
                ModelChoice::Saturating(bound) => (Trend::Bounded, Some(bound)),
            }
        };

        let (class, root_cause) = match (workload, trend) {
            (WorkloadType::FixedTime, Trend::Linear) => (
                ScalingClass::FixedTime(FixedTimeClass::It),
                "Gustafson-like: no internal scaling (δ = 1) or no serial workload (η = 1), \
                 and negligible scale-out-induced workload (γ = 0)"
                    .to_string(),
            ),
            (WorkloadType::FixedTime, Trend::SublinearUnbounded) => (
                ScalingClass::FixedTime(FixedTimeClass::IIt),
                "unbounded but sublinear: sub-linear scale-out-induced workload (γ < 1) \
                 or partial in-proportion scaling (0 < δ < 1)"
                    .to_string(),
            ),
            (WorkloadType::FixedTime, Trend::Bounded) => (
                ScalingClass::FixedTime(FixedTimeClass::IIIt1),
                "pathological bound for a fixed-time workload: in-proportion scaling \
                 (δ ≈ 0, sub-type IIIt,1) or linear induced scaling (γ = 1, sub-type IIIt,2); \
                 estimate δ and γ to resolve the sub-type (step 6)"
                    .to_string(),
            ),
            (WorkloadType::FixedTime, Trend::Peaked) => (
                ScalingClass::FixedTime(FixedTimeClass::IVt),
                "pathological peak-and-fall: the scale-out-induced workload grows \
                 superlinearly (γ > 1), e.g. centralized scheduling or broadcast"
                    .to_string(),
            ),
            (WorkloadType::FixedSize, Trend::Linear) => (
                ScalingClass::FixedSize(FixedSizeClass::Is),
                "perfect linear scaling: no serial portion and no induced workload \
                 (a very special case)"
                    .to_string(),
            ),
            (WorkloadType::FixedSize, Trend::SublinearUnbounded) => (
                ScalingClass::FixedSize(FixedSizeClass::IIs),
                "unbounded sublinear: no serial portion, induced workload grows \
                 sublinearly (γ < 1)"
                    .to_string(),
            ),
            (WorkloadType::FixedSize, Trend::Bounded) => (
                ScalingClass::FixedSize(FixedSizeClass::IIIs1),
                "Amdahl-like bound: serial portion present (sub-type IIIs,1) or linear \
                 induced scaling (γ = 1, sub-type IIIs,2); estimate γ to resolve (step 6)"
                    .to_string(),
            ),
            (WorkloadType::FixedSize, Trend::Peaked) => (
                ScalingClass::FixedSize(FixedSizeClass::IVs),
                "pathological peak-and-fall: superlinear induced workload (γ > 1); \
                 scaling out beyond the peak only harms performance"
                    .to_string(),
            ),
        };

        Ok(DiagnosisReport {
            workload,
            trend,
            class,
            subtype_resolved: trend != Trend::Bounded,
            tail_exponent,
            bound_estimate,
            peak: if peaked {
                Some((peak.n, peak.speedup))
            } else {
                None
            },
            root_cause,
        })
    }

    /// Step 6: refine a coarse diagnosis with exact factor estimates,
    /// resolving III sub-types through the full taxonomy.
    ///
    /// # Errors
    ///
    /// Propagates classification errors (e.g. out-of-range δ).
    pub fn refine(
        &self,
        report: &DiagnosisReport,
        estimates: &FactorEstimates,
    ) -> Result<DiagnosisReport, ModelError> {
        let params = estimates.to_asymptotic()?;
        let (class, bound) = classify(&params, report.workload)?;
        let mut refined = report.clone();
        refined.class = class;
        refined.subtype_resolved = true;
        if bound.is_some() {
            refined.bound_estimate = bound;
        }
        refined.root_cause = format!(
            "{} — resolved with η = {:.3}, α = {:.3}, δ = {:.3}, β = {:.4}, γ = {:.3}",
            class, params.eta, params.alpha, params.delta, params.beta, params.gamma
        );
        Ok(refined)
    }
}

enum ModelChoice {
    PowerLaw,
    Saturating(f64),
}

/// Chooses between an unbounded power law and a saturating hyperbola by R².
fn compare_models(ns: &[f64], speedups: &[f64]) -> Result<ModelChoice, ModelError> {
    let power = fit_power_law(ns, speedups);
    let sat = levenberg_marquardt(
        |p, n| p[0] * n / (n + p[1].abs()),
        ns,
        speedups,
        &[speedups.last().copied().unwrap_or(1.0) * 1.5, 5.0],
        &NonlinearOptions::default(),
    );
    match (power, sat) {
        (Ok(p), Ok(s)) => {
            if s.gof.r_squared > p.gof.r_squared + 1e-6 {
                Ok(ModelChoice::Saturating(s.params[0]))
            } else {
                Ok(ModelChoice::PowerLaw)
            }
        }
        (Ok(_), Err(_)) => Ok(ModelChoice::PowerLaw),
        (Err(_), Ok(s)) => Ok(ModelChoice::Saturating(s.params[0])),
        (Err(e), Err(_)) => Err(e.into()),
    }
}

/// Estimates the bound of a saturating curve with `S(n) = L·n/(n + k)`.
fn estimate_bound(ns: &[f64], speedups: &[f64]) -> Option<f64> {
    levenberg_marquardt(
        |p, n| p[0] * n / (n + p[1].abs()),
        ns,
        speedups,
        &[speedups.last().copied()? * 1.2, 5.0],
        &NonlinearOptions::default(),
    )
    .ok()
    .map(|f| f.params[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::SpeedupCurve;

    fn curve_from<F: Fn(f64) -> f64>(ns: &[u32], f: F) -> SpeedupCurve {
        SpeedupCurve::from_pairs(ns.iter().map(|&n| (n, f(n as f64)))).unwrap()
    }

    const NS: &[u32] = &[1, 2, 4, 8, 16, 32, 64, 96, 128, 160, 200];

    #[test]
    fn diagnoses_gustafson_as_it() {
        let c = curve_from(NS, |n| 0.99 * n + 0.01);
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedTime)
            .unwrap();
        assert_eq!(r.trend, Trend::Linear);
        assert_eq!(r.class, ScalingClass::FixedTime(FixedTimeClass::It));
        assert!(r.root_cause.contains("Gustafson"));
    }

    #[test]
    fn diagnoses_sublinear_as_iit() {
        let c = curve_from(NS, |n| n.powf(0.6));
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedTime)
            .unwrap();
        assert_eq!(r.trend, Trend::SublinearUnbounded);
        assert_eq!(r.class, ScalingClass::FixedTime(FixedTimeClass::IIt));
    }

    #[test]
    fn diagnoses_sort_like_bound_as_iiit() {
        // Sort in the paper saturates near S ≈ 3–5.
        let c = curve_from(NS, |n| 4.6 * n / (n + 7.0));
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedTime)
            .unwrap();
        assert_eq!(r.trend, Trend::Bounded);
        assert!(matches!(
            r.class,
            ScalingClass::FixedTime(FixedTimeClass::IIIt1 | FixedTimeClass::IIIt2)
        ));
        let bound = r.bound_estimate.unwrap();
        assert!((bound - 4.6).abs() < 0.5, "bound = {bound}");
        assert!(!r.subtype_resolved);
    }

    #[test]
    fn diagnoses_collaborative_filtering_as_ivs() {
        // CF: S(n) = tp1 / (a/n + c + b n²) — peaks near n = 60.
        let c = curve_from(&[1, 10, 30, 60, 90, 120, 150], |n| {
            1602.5 / (2000.0 / n + 10.0 + 0.0061 * n * n)
        });
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedSize)
            .unwrap();
        assert_eq!(r.trend, Trend::Peaked);
        assert_eq!(r.class, ScalingClass::FixedSize(FixedSizeClass::IVs));
        let (n_peak, _) = r.peak.unwrap();
        assert!((30..=90).contains(&n_peak));
        assert_eq!(r.bound_estimate, Some(0.0));
    }

    #[test]
    fn diagnoses_amdahl_as_bounded_fixed_size() {
        let c = curve_from(NS, |n| 1.0 / (0.9 / n + 0.1));
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedSize)
            .unwrap();
        assert_eq!(r.trend, Trend::Bounded);
        assert!(matches!(r.class, ScalingClass::FixedSize(_)));
        let bound = r.bound_estimate.unwrap();
        assert!((bound - 10.0).abs() < 1.5, "bound = {bound}");
    }

    #[test]
    fn refine_resolves_subtype() {
        use crate::estimate::estimate_factors;
        use crate::measurement::RunMeasurement;

        // δ = 0 fixed-time workload: IN grows like EX. Expected IIIt,1.
        let runs: Vec<RunMeasurement> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&n| {
                let nf = n as f64;
                RunMeasurement {
                    n,
                    seq_parallel_work: 10.0 * nf,
                    seq_serial_work: 2.0 * nf,
                    par_map_time: 10.0,
                    par_serial_time: 2.0 * nf,
                    par_overhead: 0.0,
                }
            })
            .collect();
        let est = estimate_factors(&runs).unwrap();
        let curve = curve_from(NS, |n| {
            let eta: f64 = 10.0 / 12.0;
            (eta * n + (1.0 - eta) * n) / (eta + (1.0 - eta) * n)
        });
        let d = Diagnostician::new();
        let coarse = d.diagnose(&curve, WorkloadType::FixedTime).unwrap();
        let refined = d.refine(&coarse, &est).unwrap();
        assert_eq!(
            refined.class,
            ScalingClass::FixedTime(FixedTimeClass::IIIt1)
        );
        assert!(refined.subtype_resolved);
        assert!(refined.root_cause.contains("η ="));
    }

    #[test]
    fn too_few_points_rejected() {
        let c = curve_from(&[1, 2, 4], |n| n);
        assert!(matches!(
            Diagnostician::new()
                .diagnose(&c, WorkloadType::FixedTime)
                .unwrap_err(),
            ModelError::InsufficientData { .. }
        ));
    }

    #[test]
    fn report_display_is_readable() {
        let c = curve_from(NS, |n| 0.9 * n + 0.1);
        let r = Diagnostician::new()
            .diagnose(&c, WorkloadType::FixedTime)
            .unwrap();
        let text = r.to_string();
        assert!(text.contains("workload type : fixed-time"));
        assert!(text.contains("scaling class : It"));
    }
}
