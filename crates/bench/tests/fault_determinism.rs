//! Determinism under fault injection, end to end: a faulted engine
//! sweep through [`SweepRunner`] is bit-identical for any `--jobs`
//! value and any engine thread count, and a spec that merely *spells
//! out* the disabled fault model reproduces the stock trace exactly.
//! These are the properties the `ablation_faults` CSV and
//! `BENCH_faults.json` regression record rest on.

use ipso_bench::SweepRunner;
use ipso_cluster::{FaultModel, JobTrace, RecoveryPolicy};
use ipso_mapreduce::try_run_scale_out;
use ipso_workloads::sort;
use proptest::prelude::*;

/// One faulted Sort run per grid point; the whole trace is the result,
/// so any divergence — durations, overhead, recovery events — fails the
/// bitwise comparison.
fn faulted_sweep(jobs: usize, fail_prob: f64, threads: usize, ns: &[u32]) -> Vec<JobTrace> {
    SweepRunner::new(jobs)
        .map(ns.to_vec(), |_ctx, n| {
            let mut spec = sort::job_spec(n);
            let mut faults = FaultModel::flaky(fail_prob);
            faults.node_crash_prob = fail_prob / 10.0;
            spec.faults = faults;
            spec.recovery = RecoveryPolicy::hadoop_like().with_speculation();
            spec.recovery.max_attempts = 12;
            spec.engine.threads = threads;
            try_run_scale_out(
                &spec,
                &sort::SortMapper,
                &sort::SortReducer,
                &sort::make_splits(n, 2),
            )
            .expect("recoverable under 12 attempts")
            .trace
        })
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-for-bit equality between the sequential runner and every
    /// tested worker count, with faults active, for arbitrary failure
    /// rates and grids.
    #[test]
    fn faulted_sweep_is_identical_for_any_jobs(
        jobs in 2usize..7,
        fail_prob in 0.01f64..0.3,
        ns in prop::collection::vec(1u32..24, 1..6),
    ) {
        let sequential = faulted_sweep(1, fail_prob, 0, &ns);
        let parallel = faulted_sweep(jobs, fail_prob, 0, &ns);
        prop_assert_eq!(parallel, sequential);
    }

    /// The engine's own map-execution thread count never leaks into a
    /// faulted trace: fault resolution happens on the sequential
    /// simulation clock, not on the host threads.
    #[test]
    fn faulted_traces_are_engine_thread_invariant(
        fail_prob in 0.01f64..0.3,
        threads in 1usize..6,
    ) {
        let ns = [3u32, 7];
        let baseline = faulted_sweep(1, fail_prob, 0, &ns);
        prop_assert_eq!(faulted_sweep(1, fail_prob, threads, &ns), baseline);
    }
}

/// Spelling out the disabled fault model must be a no-op: the stock
/// spec and an explicit `FaultModel::none()` spec produce identical
/// traces (zero fault RNG draws), so a fault-free build of this PR
/// reproduces every pre-PR artifact byte for byte.
#[test]
fn disabled_faults_reproduce_the_stock_traces() {
    for n in [1u32, 4, 16] {
        let stock = sort::sweep(&[n]);
        let explicit = {
            let mut spec = sort::job_spec(n);
            spec.faults = FaultModel::none();
            spec.recovery = RecoveryPolicy::hadoop_like().with_speculation();
            try_run_scale_out(
                &spec,
                &sort::SortMapper,
                &sort::SortReducer,
                &sort::make_splits(n, 2),
            )
            .expect("fault-free run cannot fail")
        };
        assert_eq!(explicit.trace, stock.points[0].par, "n = {n}");
        assert!(explicit.trace.faults.is_none(), "n = {n}");
    }
}
