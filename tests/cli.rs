//! Tests of the `ipso` CLI layer (argument parsing, CSV parsing and the
//! command implementations).

use ipso_repro::cli::{
    cmd_classify, cmd_diagnose, cmd_estimate, cmd_predict, cmd_provision, cmd_report, parse_args,
    parse_curve_csv, parse_runs_csv, run, usage,
};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A Sort-like runs CSV: EX = n, IN = 0.4n + 0.6, no overhead.
fn runs_csv() -> String {
    let mut out = String::from("n,seq_parallel,seq_serial,par_map,par_serial,par_overhead\n");
    for n in [1u32, 2, 4, 8, 12, 16, 32, 64] {
        let nf = f64::from(n);
        let inn = 0.4 * nf + 0.6;
        out.push_str(&format!(
            "{n},{},{},{},{},0\n",
            10.0 * nf,
            3.0 * inn,
            10.0,
            3.0 * inn
        ));
    }
    out
}

#[test]
fn arg_parser_handles_flags_and_positionals() {
    let a = parse_args(&args(&[
        "file.csv",
        "--window",
        "16",
        "--fixed-size",
        "--at",
        "1,2",
    ]))
    .unwrap();
    assert_eq!(a.positional, vec!["file.csv"]);
    assert_eq!(a.flags.get("window").unwrap(), "16");
    assert_eq!(a.flags.get("at").unwrap(), "1,2");
    assert!(a.flags.contains_key("fixed-size"));
    assert!(parse_args(&args(&["--"])).is_err());
}

#[test]
fn curve_csv_accepts_header_and_blank_lines() {
    let curve = parse_curve_csv("n,speedup\n\n1,1.0\n4,3.5\n2,1.9\n").unwrap();
    assert_eq!(curve.len(), 3);
    assert_eq!(curve.points()[1].n, 2);
    assert!(parse_curve_csv("header only\n").is_err());
    assert!(parse_curve_csv("1\n").is_err());
    assert!(parse_curve_csv("x,y\nnot,a number\n").is_err());
}

#[test]
fn runs_csv_roundtrip() {
    let runs = parse_runs_csv(&runs_csv()).unwrap();
    assert_eq!(runs.len(), 8);
    assert_eq!(runs[0].n, 1);
    assert!((runs[7].speedup() - (640.0 + 3.0 * 26.2) / (10.0 + 3.0 * 26.2)).abs() < 1e-9);
    assert!(parse_runs_csv("1,2,3\n").is_err());
}

#[test]
fn classify_command_formats_report() {
    let a = parse_args(&args(&["--eta", "0.9", "--alpha", "2.8"])).unwrap();
    let out = cmd_classify(&a).unwrap();
    assert!(out.contains("IIIt,1"));
    assert!(out.contains("bound    : 26.200"));
    // Missing eta is an error.
    let bad = parse_args(&args(&["--alpha", "2.8"])).unwrap();
    assert!(cmd_classify(&bad).is_err());
}

#[test]
fn classify_fixed_size_flag() {
    let a = parse_args(&args(&["--eta", "0.9", "--fixed-size"])).unwrap();
    let out = cmd_classify(&a).unwrap();
    assert!(out.contains("fixed-size"));
    assert!(out.contains("IIIs,1"));
}

#[test]
fn diagnose_command_detects_peak() {
    let csv = "n,speedup\n1,1\n10,15\n30,21\n60,22\n90,18\n120,14\n150,11\n";
    let a = parse_args(&args(&["--fixed-size"])).unwrap();
    let out = cmd_diagnose(&a, csv).unwrap();
    assert!(out.contains("IVs"));
    assert!(out.contains("peaked"));
}

#[test]
fn estimate_command_reports_factors() {
    let out = cmd_estimate(&runs_csv()).unwrap();
    assert!(out.contains("eta    : 0.7692"), "{out}");
    assert!(out.contains("Affine"));
    assert!(out.contains("delta = 0.0000"), "{out}");
}

#[test]
fn predict_command_extrapolates() {
    let a = parse_args(&args(&["--window", "16", "--at", "64"])).unwrap();
    let out = cmd_predict(&a, &runs_csv()).unwrap();
    // True S(64) from the synthetic model.
    let expected = (640.0 + 3.0 * 26.2) / (10.0 + 3.0 * 26.2);
    let line = out
        .lines()
        .find(|l| l.contains("S(  64)"))
        .expect("prediction line");
    let value: f64 = line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!(
        (value - expected).abs() / expected < 0.02,
        "{line} vs {expected}"
    );
}

#[test]
fn predict_command_supports_bootstrap_intervals() {
    let a = parse_args(&args(&[
        "--window",
        "16",
        "--at",
        "64",
        "--confidence",
        "0.9",
    ]))
    .unwrap();
    let out = cmd_predict(&a, &runs_csv()).unwrap();
    assert!(out.contains("90% bootstrap intervals"), "{out}");
    assert!(out.contains('['), "{out}");
    let bad = parse_args(&args(&["--confidence", "nope"])).unwrap();
    assert!(cmd_predict(&bad, &runs_csv()).is_err());
}

#[test]
fn provision_command_recommends() {
    let a = parse_args(&args(&[
        "--window",
        "16",
        "--n-max",
        "100",
        "--deadline",
        "30",
    ]))
    .unwrap();
    let out = cmd_provision(&a, &runs_csv()).unwrap();
    assert!(out.contains("fastest"));
    assert!(out.contains("most efficient"));
    assert!(out.contains("90%-peak knee"));
    assert!(out.contains("deadline 30s"));
}

#[test]
fn report_command_renders_markdown() {
    let a = parse_args(&args(&["--window", "16", "--n-max", "64"])).unwrap();
    let out = cmd_report(&a, &runs_csv()).unwrap();
    assert!(out.contains("# IPSO scaling analysis"));
    assert!(out.contains("## Scaling classification"));
    assert!(out.contains("IIIt,1"));
    assert!(out.contains("## Provisioning"));
}

#[test]
fn run_dispatches_and_reports_unknown_commands() {
    assert!(run(&args(&[])).unwrap().contains("USAGE"));
    assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
    let err = run(&args(&["frobnicate"])).unwrap_err();
    assert!(err.0.contains("unknown command"));
    let err = run(&args(&["diagnose"])).unwrap_err();
    assert!(err.0.contains("missing input CSV"));
    let err = run(&args(&["diagnose", "/definitely/not/here.csv"])).unwrap_err();
    assert!(err.0.contains("cannot read"));
}

#[test]
fn usage_mentions_every_command() {
    let u = usage();
    for cmd in [
        "classify",
        "diagnose",
        "estimate",
        "predict",
        "provision",
        "report",
    ] {
        assert!(u.contains(cmd), "usage missing {cmd}");
    }
    for flag in ["--fail-prob", "--speculate", "--fail-fast", "--scheduler"] {
        assert!(u.contains(flag), "usage missing {flag}");
    }
}

/// Serializes the tests below: `metrics` toggles the global
/// observability recorder.
static OBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn metrics_command_reports_fault_recovery() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let cmd = args(&[
        "metrics",
        "sort",
        "--n",
        "4",
        "--fail-prob",
        "0.6",
        "--max-attempts",
        "8",
        "--speculate",
    ]);
    let out = run(&cmd).unwrap();
    assert!(out.contains("fault.task_retries"), "got:\n{out}");
    // Byte-deterministic: the same flags reproduce the same report.
    assert_eq!(run(&cmd).unwrap(), out);
}

#[test]
fn fail_fast_flag_aborts_with_an_error() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let err = run(&args(&[
        "metrics",
        "sort",
        "--n",
        "4",
        "--fail-prob",
        "0.6",
        "--max-attempts",
        "16",
        "--fail-fast",
        "0.0000001",
    ]))
    .unwrap_err();
    assert!(err.0.contains("aborted"), "got: {err}");
    assert!(err.0.contains("fail-fast budget"), "got: {err}");
}

#[test]
fn invalid_fault_flags_are_rejected() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let err = run(&args(&[
        "metrics",
        "sort",
        "--n",
        "4",
        "--fail-prob",
        "1.5",
    ]))
    .unwrap_err();
    assert!(err.0.contains("invalid"), "got: {err}");
}

#[test]
fn scheduler_flag_selects_a_policy() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let fifo = run(&args(&["metrics", "sort", "--n", "4"])).unwrap();
    // Explicit fifo is the default.
    let explicit = run(&args(&[
        "metrics",
        "sort",
        "--n",
        "4",
        "--scheduler",
        "fifo",
    ]))
    .unwrap();
    assert_eq!(fifo, explicit);
    // The other policies run; with a straggler model active the
    // shortest-first dispatch changes the barrier stretch.
    for policy in ["fair", "locality"] {
        let out = run(&args(&[
            "metrics",
            "sort",
            "--n",
            "4",
            "--scheduler",
            policy,
        ]))
        .unwrap();
        assert!(out.contains("sort @ n = 4"), "got:\n{out}");
    }
}

#[test]
fn unknown_scheduler_is_a_typed_error_not_a_panic() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let err = run(&args(&[
        "metrics",
        "sort",
        "--n",
        "4",
        "--scheduler",
        "gang",
    ]))
    .unwrap_err();
    assert!(err.0.contains("invalid scheduler policy"), "got: {err}");
    assert!(err.0.contains("fifo, fair or locality"), "got: {err}");
}
