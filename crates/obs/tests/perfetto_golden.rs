//! Golden-file test of the Chrome trace-event exporter: a fixed little
//! timeline must serialize byte-for-byte to the checked-in JSON. Any
//! intentional format change must update `tests/golden/mini.trace.json`.

use ipso_obs::{export_chrome_trace, record_instant, record_span, take_events, VirtualSpan};

const GOLDEN: &str = include_str!("golden/mini.trace.json");

#[test]
fn mini_timeline_matches_golden_file() {
    ipso_obs::set_enabled(true);
    ipso_obs::reset();

    record_span("driver", "init", "mapreduce", 0.0, 2.0);
    record_span("driver", "map", "mapreduce", 2.0, 5.5);
    record_span("executor-0", "task-0", "mapreduce", 2.0, 4.25);
    let span = VirtualSpan::new("executor-1", "task-1", "mapreduce", 2.0);
    span.complete(5.5);
    record_instant("executor-1", "straggler", "mapreduce", 5.5);
    record_span("driver", "reduce", "mapreduce", 5.5, 6.125);

    let events = take_events();
    ipso_obs::set_enabled(false);
    ipso_obs::reset();

    let json = export_chrome_trace(&events);
    if std::env::var("BLESS_GOLDEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mini.trace.json");
        std::fs::write(path, &json).expect("cannot bless golden file");
    }
    assert_eq!(json, GOLDEN, "exporter output drifted from the golden file");
}
