//! The global metrics registry.
//!
//! Three instrument kinds, all registered by name on first use:
//!
//! * **counters** — monotonically increasing `u64` ([`counter_add`]);
//! * **gauges** — last-written / accumulated `f64` ([`gauge_set`],
//!   [`gauge_add`]) stored as atomic bit patterns;
//! * **histograms** — log₂-bucketed `u64` distributions
//!   ([`histogram_record`]), e.g. queueing delays in microseconds.
//!
//! Values live in `Arc<AtomicU64>` cells, so updates after registration
//! are lock-free; the registry map itself is behind a mutex taken only
//! on name lookup. Every entry point is gated on [`crate::enabled`]:
//! disabled cost is one relaxed atomic load.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    f(&mut REGISTRY.lock().expect("metrics registry poisoned"))
}

/// One recorded metric update, replayable against the global registry.
///
/// Inside a [`crate::capture`] scope updates are buffered as ops on the
/// capturing thread and applied later, in a caller-chosen order — which
/// is how the parallel sweep runner keeps even order-sensitive updates
/// ([`gauge_set`], float accumulation in [`gauge_add`]) deterministic.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MetricOp {
    CounterAdd(String, u64),
    GaugeSet(String, f64),
    GaugeAdd(String, f64),
    HistogramRecord(String, u64),
}

thread_local! {
    static LOCAL_OPS: RefCell<Option<Vec<MetricOp>>> = const { RefCell::new(None) };
}

/// Installs a fresh thread-local op buffer, returning the previous one.
pub(crate) fn install_local_ops() -> Option<Vec<MetricOp>> {
    LOCAL_OPS.with(|l| l.borrow_mut().replace(Vec::new()))
}

/// Removes the thread-local op buffer, restoring `previous`, and returns
/// the captured ops.
pub(crate) fn take_local_ops(previous: Option<Vec<MetricOp>>) -> Vec<MetricOp> {
    LOCAL_OPS.with(|l| {
        let mut slot = l.borrow_mut();
        let captured = slot.take().expect("no local metric buffer installed");
        *slot = previous;
        captured
    })
}

/// Buffers `op` locally when a capture scope is active; returns it back
/// for direct application otherwise.
fn buffer_locally(op: MetricOp) -> Option<MetricOp> {
    LOCAL_OPS.with(|l| match l.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(op);
            None
        }
        None => Some(op),
    })
}

/// Replays one captured op: into the local capture buffer when one is
/// installed on this thread (nested parallel sections compose), else
/// against the global registry.
pub(crate) fn apply_op(op: MetricOp) {
    let Some(op) = buffer_locally(op) else { return };
    match op {
        MetricOp::CounterAdd(name, delta) => counter_add_global(&name, delta),
        MetricOp::GaugeSet(name, value) => {
            gauge_cell(&name).store(value.to_bits(), Ordering::Relaxed);
        }
        MetricOp::GaugeAdd(name, delta) => gauge_add_global(&name, delta),
        MetricOp::HistogramRecord(name, value) => histogram_record_global(&name, value),
    }
}

/// Adds `delta` to the named counter (registering it on first use).
/// No-op unless tracing is enabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    if let Some(MetricOp::CounterAdd(name, delta)) =
        buffer_locally(MetricOp::CounterAdd(name.to_string(), delta))
    {
        counter_add_global(&name, delta);
    }
}

fn counter_add_global(name: &str, delta: u64) {
    let cell = with_registry(|r| {
        Arc::clone(
            r.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    });
    cell.fetch_add(delta, Ordering::Relaxed);
}

/// The current value of a counter (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| {
        r.counters
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    })
}

fn gauge_cell(name: &str) -> Arc<AtomicU64> {
    with_registry(|r| {
        Arc::clone(
            r.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    })
}

/// Sets the named gauge. No-op unless tracing is enabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    if let Some(MetricOp::GaugeSet(name, value)) =
        buffer_locally(MetricOp::GaugeSet(name.to_string(), value))
    {
        gauge_cell(&name).store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Adds `delta` to the named gauge (an accumulating gauge, used for the
/// overhead-component breakdown). No-op unless tracing is enabled.
pub fn gauge_add(name: &str, delta: f64) {
    if !crate::enabled() {
        return;
    }
    if let Some(MetricOp::GaugeAdd(name, delta)) =
        buffer_locally(MetricOp::GaugeAdd(name.to_string(), delta))
    {
        gauge_add_global(&name, delta);
    }
}

fn gauge_add_global(name: &str, delta: f64) {
    let cell = gauge_cell(name);
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// The current value of a gauge (0.0 if never touched).
pub fn gauge_value(name: &str) -> f64 {
    with_registry(|r| {
        r.gauges
            .get(name)
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    })
}

/// Records `value` into the named log₂ histogram. No-op unless tracing
/// is enabled.
pub fn histogram_record(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    if let Some(MetricOp::HistogramRecord(name, value)) =
        buffer_locally(MetricOp::HistogramRecord(name.to_string(), value))
    {
        histogram_record_global(&name, value);
    }
}

fn histogram_record_global(name: &str, value: u64) {
    let hist = with_registry(|r| {
        Arc::clone(
            r.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    });
    hist.record(value);
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets as `(lower, upper_exclusive, count)`; the zero
    /// bucket is `(0, 1, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter   {name:<40} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge     {name:<40} {v:.6}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "histogram {name:<40} count={} mean={:.1}",
                h.count,
                h.mean()
            )?;
            for &(lo, hi, c) in &h.buckets {
                writeln!(f, "            [{lo}, {hi})  {c}")?;
            }
        }
        Ok(())
    }
}

/// Captures the current state of every registered instrument.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let c = b.load(Ordering::Relaxed);
                        if c == 0 {
                            return None;
                        }
                        let (lo, hi) = if i == 0 {
                            (0, 1)
                        } else {
                            (1u64 << (i - 1), if i == 64 { u64::MAX } else { 1u64 << i })
                        };
                        Some((lo, hi, c))
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect(),
    })
}

/// Drops every registered instrument.
pub fn reset_metrics() {
    with_registry(|r| {
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::test_lock;

    #[test]
    fn disabled_registry_stays_empty() {
        let _guard = test_lock();
        crate::set_enabled(false);
        reset_metrics();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        histogram_record("h", 1);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _guard = test_lock();
        crate::set_enabled(true);
        reset_metrics();
        counter_add("tasks", 3);
        counter_add("tasks", 2);
        gauge_set("depth", 4.0);
        gauge_add("overhead", 0.25);
        gauge_add("overhead", 0.5);
        histogram_record("delay", 0);
        histogram_record("delay", 1);
        histogram_record("delay", 900);
        crate::set_enabled(false);

        assert_eq!(counter_value("tasks"), 5);
        assert_eq!(counter_value("missing"), 0);
        assert_eq!(gauge_value("depth"), 4.0);
        assert!((gauge_value("overhead") - 0.75).abs() < 1e-12);

        let snap = snapshot();
        let h = &snap.histograms["delay"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 901);
        // 0 → zero bucket; 1 → [1, 2); 900 → [512, 1024).
        assert_eq!(h.buckets[0], (0, 1, 1));
        assert_eq!(h.buckets[1], (1, 2, 1));
        assert_eq!(h.buckets[2], (512, 1024, 1));
        assert!(format!("{snap}").contains("histogram delay"));
        reset_metrics();
    }

    #[test]
    fn reset_clears_all_instruments() {
        let _guard = test_lock();
        crate::set_enabled(true);
        reset_metrics();
        counter_add("x", 1);
        crate::set_enabled(false);
        assert_eq!(counter_value("x"), 1);
        reset_metrics();
        assert_eq!(counter_value("x"), 0);
        assert!(snapshot().counters.is_empty());
    }
}
