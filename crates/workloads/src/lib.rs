#![warn(missing_docs)]

//! The nine case-study workloads of the IPSO paper.
//!
//! Four single-stage MapReduce benchmarks (HiBench micro benchmarks plus
//! the Hadoop-examples QMC job, paper Section V-A, fixed-time):
//!
//! * [`qmc`] — Quasi-Monte-Carlo π estimation (no serial workload, type It);
//! * [`wordcount`] — WordCount over dictionary text (`IN(n) ≈ 1`, It/IIt);
//! * [`sort`] — Sort (in-proportion scaling, type IIIt,1);
//! * [`terasort`] — TeraSort (in-proportion scaling plus the memory-spill
//!   step of Fig. 5);
//!
//! one fixed-size Spark case extracted from the Orchestra paper \[12\]:
//!
//! * [`collab_filter`] — Collaborative Filtering with per-iteration driver
//!   broadcasts (Table I / Fig. 8, the pathological type IVs);
//!
//! and four multi-stage Spark benchmarks (Section V-B, Figs. 9–10):
//!
//! * [`bayes`] — naive Bayes training;
//! * [`random_forest`] — random-forest training;
//! * [`svm`] — SVM via distributed gradient descent;
//! * [`nweight`] — the NWeight graph workload;
//!
//! plus a Dryad-style extension beyond the paper's nine:
//!
//! * [`join`] — a two-branch hash join exercising the general stage DAG
//!   of [`ipso_spark::run_dag`].
//!
//! Every workload really computes: the MapReduce jobs sort/count real
//! records and the Spark jobs run real miniature kernels (naive Bayes
//! counting, gradient steps, tree building, n-hop graph expansion) whose
//! measured logical volumes parameterize the stage DAGs. [`datagen`]
//! provides the synthetic datasets matching the paper's generators.

pub mod bayes;
pub mod collab_filter;
pub mod datagen;
pub mod join;
pub mod nweight;
pub mod qmc;
pub mod random_forest;
pub mod sort;
pub mod svm;
pub mod terasort;
pub mod wordcount;

/// The n-sweep used by the paper's MapReduce figures (n up to 200, fitted
/// on n ≤ 16).
pub const PAPER_SWEEP: &[u32] = &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 200];

/// The small-n fitting window the paper uses for scaling prediction.
pub const FIT_WINDOW: u32 = 16;
