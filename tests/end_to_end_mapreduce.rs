//! End-to-end integration: simulated MapReduce execution → measurement →
//! factor estimation → classification → prediction, across crates.

use ipso::diagnose::Trend;
use ipso::estimate::{estimate_factors, FactorShape};
use ipso::predict::ScalingPredictor;
use ipso::taxonomy::{FixedTimeClass, ScalingClass, WorkloadType};
use ipso::Diagnostician;
use ipso_workloads::{qmc, sort, terasort, wordcount};

const SWEEP: &[u32] = &[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128];

#[test]
fn sort_pipeline_identifies_in_proportion_scaling() {
    let sweep = sort::sweep(SWEEP);
    let measurements = sweep.measurements();

    // The factor estimates expose the in-proportion scaling.
    let est = estimate_factors(&measurements).unwrap();
    assert_eq!(est.internal.shape, FactorShape::Linear);
    assert!((0.5..0.7).contains(&est.eta), "eta = {}", est.eta);

    // The diagnosis lands on the pathological bounded type; refinement
    // resolves the sub-type to IIIt,1.
    let curve = sweep.speedup_curve().unwrap();
    let d = Diagnostician::new();
    let coarse = d.diagnose(&curve, WorkloadType::FixedTime).unwrap();
    assert_eq!(coarse.trend, Trend::Bounded);
    let refined = d.refine(&coarse, &est).unwrap();
    assert_eq!(
        refined.class,
        ScalingClass::FixedTime(FixedTimeClass::IIIt1)
    );
    assert!(refined.subtype_resolved);
}

#[test]
fn qmc_pipeline_identifies_gustafson_like_scaling() {
    let sweep = qmc::sweep(SWEEP);
    let curve = sweep.speedup_curve().unwrap();
    let report = Diagnostician::new()
        .diagnose(&curve, WorkloadType::FixedTime)
        .unwrap();
    assert_eq!(report.trend, Trend::Linear, "report: {report}");
    assert_eq!(report.class, ScalingClass::FixedTime(FixedTimeClass::It));
}

#[test]
fn prediction_from_small_n_matches_large_n_within_tolerance() {
    // The paper's central prediction claim, on all four applications.
    for (name, sweep, lo, hi) in [
        ("qmc", qmc::sweep(SWEEP), 0u32, 16u32),
        ("wordcount", wordcount::sweep(SWEEP), 0, 16),
        ("sort", sort::sweep(SWEEP), 0, 16),
        ("terasort", terasort::sweep(SWEEP), 16, 64),
    ] {
        let measurements = sweep.measurements();
        let predictor = if lo > 0 {
            ScalingPredictor::fit_range(&measurements, lo, hi).unwrap()
        } else {
            ScalingPredictor::fit(&measurements, hi).unwrap()
        };
        for m in measurements.iter().filter(|m| m.n > hi) {
            let predicted = predictor.predict(f64::from(m.n)).unwrap();
            let measured = m.speedup();
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.12,
                "{name} at n = {}: predicted {predicted:.2}, measured {measured:.2} ({:.0}%)",
                m.n,
                rel * 100.0
            );
        }
    }
}

#[test]
fn terasort_speedup_dips_near_the_spill_boundary() {
    // Fig. 4d: "a small surge of the speedup around n = 15 and then falls
    // back before it grows again" — in factor terms, the spill raises the
    // serial workload discontinuously at the boundary.
    // 16 shards of 128 MiB equal the 2 GiB reducer memory exactly; the
    // 17th pushes it over and triggers the spill.
    let sweep = terasort::sweep(&[14, 15, 16, 17, 18, 20]);
    let ms = sweep.measurements();
    let ws: Vec<f64> = ms.iter().map(|m| m.seq_serial_work).collect();
    // Crossing 16 -> 17 jumps Ws by more than the neighbouring steps.
    let step_before = ws[1] - ws[0];
    let step_across = ws[3] - ws[2];
    assert!(
        step_across > 3.0 * step_before.max(1e-9),
        "no spill jump: before = {step_before}, across = {step_across}"
    );
}

#[test]
fn outputs_are_correct_across_the_sweep() {
    // The engines really compute: verify Sort output order and WordCount
    // totals at a mid-size scale.
    let splits = sort::make_splits(8, 123);
    let run = ipso_mapreduce::run_scale_out(
        &sort::job_spec(8),
        &sort::SortMapper,
        &sort::SortReducer,
        &splits,
    );
    assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(
        run.output.len(),
        splits.iter().map(|s| s.records.len()).sum::<usize>()
    );

    let wc_splits = wordcount::make_splits(4, 5);
    let wc = ipso_mapreduce::run_sequential(
        &wordcount::job_spec(4),
        &wordcount::WordCountMapper::new(),
        &wordcount::WordCountReducer,
        &wc_splits,
    );
    let words_in: u64 = wc_splits
        .iter()
        .flat_map(|s| s.records.iter())
        .map(|l| l.split_whitespace().count() as u64)
        .sum();
    let words_out: u64 = wc.output.iter().map(|(_, c)| c).sum();
    assert_eq!(words_in, words_out);
}

#[test]
fn sweeps_are_deterministic() {
    let a = sort::sweep(&[1, 4, 16]);
    let b = sort::sweep(&[1, 4, 16]);
    assert_eq!(a, b);
}
