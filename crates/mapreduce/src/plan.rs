//! Lowering a MapReduce job to the unified runtime's task-graph IR.
//!
//! The paper's single-stage MapReduce model — `n` map tasks released
//! together, a synchronization barrier, then a single reducer — lowers to
//! a one-stage [`TaskGraph`]:
//!
//! * each split becomes one task whose nominal work is the cost model's
//!   `map_time` for the split's nominal bytes (straggler noise is the
//!   runtime's job);
//! * the ideal reference is [`IdealReference::SlowestTask`]: the barrier
//!   can never beat the slowest mapper, so everything beyond it —
//!   dispatch serialization, recovery latency — is the barrier stretch
//!   charged into `Wo(n)`;
//! * Hadoop re-executes lost tasks from durable input, so lineage mode is
//!   [`LineageMode::None`];
//! * the graph's one-time `setup_overhead` is the scale-out job setup in
//!   excess of the sequential environment's init.
//!
//! The serial merging portion (shuffle, merge, reduce) is not part of the
//! graph: it models a single-node pipeline behind the barrier and stays
//! in the engine, charged from real intermediate volumes the data path
//! produced.

use ipso_cluster::{IdealReference, LineageMode, StageNode, TaskGraph};

use crate::config::JobSpec;
use crate::split::InputSplit;

/// Lowers the scale-out run of `spec` over `splits` into a single-stage
/// [`TaskGraph`] for [`ipso_cluster::execute`].
pub fn plan_scale_out<I>(spec: &JobSpec, splits: &[InputSplit<I>]) -> TaskGraph {
    TaskGraph {
        job: spec.name.clone(),
        stages: vec![StageNode {
            name: "map".to_string(),
            noisy_base: splits
                .iter()
                .map(|s| spec.cost.map_time(s.nominal_bytes))
                .collect(),
            fixed_extra: Vec::new(),
            deps: Vec::new(),
            pre_overhead: 0.0,
            ideal: IdealReference::SlowestTask,
            lineage: LineageMode::None,
        }],
        setup_overhead: (spec.scheduler.job_setup - spec.cost.seq_init).max(0.0),
        no_straggler_reference: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splits(n: u32) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| InputSplit::new(vec![u64::from(i)], 8, 128 * 1024 * 1024))
            .collect()
    }

    #[test]
    fn lowering_is_one_stage_per_job() {
        let spec = JobSpec::emr("sort", 8);
        let graph = plan_scale_out(&spec, &splits(8));
        graph.validate().unwrap();
        assert_eq!(graph.stages.len(), 1);
        assert_eq!(graph.total_tasks(), 8);
        assert_eq!(graph.stages[0].ideal, IdealReference::SlowestTask);
        assert_eq!(graph.stages[0].lineage, LineageMode::None);
        assert!(!graph.no_straggler_reference);
    }

    #[test]
    fn task_work_comes_from_the_cost_model() {
        let spec = JobSpec::emr("sort", 2);
        let s = splits(2);
        let graph = plan_scale_out(&spec, &s);
        for (task, split) in graph.stages[0].noisy_base.iter().zip(&s) {
            assert_eq!(*task, spec.cost.map_time(split.nominal_bytes));
        }
    }

    #[test]
    fn setup_overhead_is_the_scale_out_excess() {
        let spec = JobSpec::emr("sort", 4);
        let graph = plan_scale_out(&spec, &splits(4));
        assert_eq!(
            graph.setup_overhead,
            (spec.scheduler.job_setup - spec.cost.seq_init).max(0.0)
        );
    }
}
