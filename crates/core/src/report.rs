//! One-shot analysis reports.
//!
//! [`analyze`] runs the full pipeline on a set of run measurements —
//! factor estimation, taxonomy classification, large-`n` prediction and
//! provisioning — and renders a self-contained Markdown report, the
//! artifact a practitioner would attach to a capacity-planning decision.

use std::fmt::Write as _;

use crate::diagnose::Diagnostician;
use crate::estimate::estimate_factors;
use crate::measurement::{speedup_curve_from_runs, RunMeasurement};
use crate::predict::ScalingPredictor;
use crate::provision::{CostModel, Provisioner};
use crate::taxonomy::WorkloadType;
use crate::ModelError;

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportOptions {
    /// Workload type (step 1 of the paper's procedure).
    pub workload: WorkloadType,
    /// Fit window: factors are fitted on `n ≤ fit_window`.
    pub fit_window: u32,
    /// Largest scale-out degree to consider for predictions and
    /// provisioning.
    pub n_max: u32,
    /// Price model for the provisioning section.
    pub cost: CostModel,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            workload: WorkloadType::FixedTime,
            fit_window: 16,
            n_max: 200,
            cost: CostModel::default(),
        }
    }
}

/// Runs the full analysis pipeline and renders a Markdown report.
///
/// # Errors
///
/// Propagates estimation, diagnosis, prediction and provisioning errors;
/// requires at least four runs.
///
/// # Example
///
/// ```
/// use ipso::report::{analyze, ReportOptions};
/// use ipso::RunMeasurement;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// let runs: Vec<RunMeasurement> = [1u32, 2, 4, 8, 16, 32]
///     .iter()
///     .map(|&n| {
///         let nf = f64::from(n);
///         RunMeasurement {
///             n,
///             seq_parallel_work: 10.0 * nf,
///             seq_serial_work: 2.0 * (0.4 * nf + 0.6),
///             par_map_time: 10.0,
///             par_serial_time: 2.0 * (0.4 * nf + 0.6),
///             par_overhead: 0.0,
///         }
///     })
///     .collect();
/// let report = analyze(&runs, &ReportOptions::default())?;
/// assert!(report.contains("## Scaling classification"));
/// # Ok(())
/// # }
/// ```
pub fn analyze(runs: &[RunMeasurement], opts: &ReportOptions) -> Result<String, ModelError> {
    if runs.len() < 4 {
        return Err(ModelError::InsufficientData {
            points: runs.len(),
            required: 4,
        });
    }
    let curve = speedup_curve_from_runs(runs)?;
    let estimates = estimate_factors(runs)?;
    let diagnostician = Diagnostician::new();
    let coarse = diagnostician.diagnose(&curve, opts.workload)?;
    let refined = diagnostician.refine(&coarse, &estimates)?;
    let predictor = ScalingPredictor::fit(runs, opts.fit_window)?;
    let t1 = runs
        .iter()
        .min_by_key(|r| r.n)
        .expect("non-empty")
        .sequential_time();
    let provisioner = Provisioner::new(predictor.model().clone(), t1, opts.cost)?;

    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "# IPSO scaling analysis").expect("string write");
    writeln!(w).expect("string write");
    writeln!(w, "- workload type: {}", opts.workload).expect("string write");
    writeln!(
        w,
        "- measured degrees: {:?}",
        curve.ns().iter().map(|v| *v as u32).collect::<Vec<_>>()
    )
    .expect("string write");
    writeln!(w, "- fit window: n <= {}", opts.fit_window).expect("string write");

    writeln!(w, "\n## Measured speedups\n").expect("string write");
    writeln!(w, "| n | speedup |").expect("string write");
    writeln!(w, "|---|---|").expect("string write");
    for p in curve.points() {
        writeln!(w, "| {} | {:.2} |", p.n, p.speedup).expect("string write");
    }

    writeln!(w, "\n## Fitted scaling factors\n").expect("string write");
    writeln!(
        w,
        "- eta (parallelizable fraction): **{:.4}**",
        estimates.eta
    )
    .expect("string write");
    writeln!(
        w,
        "- EX(n): {:?} ({:?})",
        estimates.external.shape, estimates.external.factor
    )
    .expect("string write");
    writeln!(
        w,
        "- IN(n): {:?} ({:?})",
        estimates.internal.shape, estimates.internal.factor
    )
    .expect("string write");
    writeln!(
        w,
        "- q(n): {:?} ({:?})",
        estimates.induced.shape, estimates.induced.factor
    )
    .expect("string write");
    if let Ok(params) = estimates.to_asymptotic() {
        writeln!(
            w,
            "- asymptotic form: alpha = {:.3}, delta = {:.3}, beta = {:.5}, gamma = {:.3}",
            params.alpha, params.delta, params.beta, params.gamma
        )
        .expect("string write");
    }

    writeln!(w, "\n## Scaling classification\n").expect("string write");
    writeln!(w, "**{}**", refined.class).expect("string write");
    writeln!(w).expect("string write");
    writeln!(w, "{}", refined.root_cause).expect("string write");
    if let Some(bound) = refined.bound_estimate {
        if bound > 0.0 {
            writeln!(w, "\nEstimated speedup bound: **{bound:.2}**").expect("string write");
        } else if refined.class.peaks() {
            writeln!(
                w,
                "\nThe speedup peaks and then falls — scaling out past the peak harms performance."
            )
            .expect("string write");
        }
    }

    writeln!(w, "\n## Predictions\n").expect("string write");
    writeln!(w, "| n | predicted speedup |").expect("string write");
    writeln!(w, "|---|---|").expect("string write");
    let mut n = opts.fit_window.max(1) * 2;
    while n <= opts.n_max {
        writeln!(w, "| {} | {:.2} |", n, predictor.predict(f64::from(n))?).expect("string write");
        n *= 2;
    }

    writeln!(
        w,
        "\n## Provisioning (worker ${:.2}/h, master ${:.2}/h)\n",
        opts.cost.worker_hourly, opts.cost.master_hourly
    )
    .expect("string write");
    let fastest = provisioner.fastest(opts.n_max)?;
    let efficient = provisioner.most_efficient(opts.n_max)?;
    let knee = provisioner.knee(0.9, opts.n_max)?;
    writeln!(
        w,
        "| objective | n | speedup | job time (s) | job cost ($) |"
    )
    .expect("string write");
    writeln!(w, "|---|---|---|---|---|").expect("string write");
    for (label, p) in [
        ("fastest", fastest),
        ("most efficient", efficient),
        ("90%-of-peak knee", knee),
    ] {
        writeln!(
            w,
            "| {label} | {} | {:.2} | {:.1} | {:.4} |",
            p.n, p.speedup, p.job_time, p.job_cost
        )
        .expect("string write");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_like_runs() -> Vec<RunMeasurement> {
        [1u32, 2, 4, 8, 12, 16, 32, 64]
            .iter()
            .map(|&n| {
                let nf = f64::from(n);
                let inn = 0.4 * nf + 0.6;
                RunMeasurement {
                    n,
                    seq_parallel_work: 10.0 * nf,
                    seq_serial_work: 3.0 * inn,
                    par_map_time: 10.0,
                    par_serial_time: 3.0 * inn,
                    par_overhead: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn report_contains_all_sections() {
        let report = analyze(&sort_like_runs(), &ReportOptions::default()).unwrap();
        for section in [
            "# IPSO scaling analysis",
            "## Measured speedups",
            "## Fitted scaling factors",
            "## Scaling classification",
            "## Predictions",
            "## Provisioning",
        ] {
            assert!(report.contains(section), "missing {section}: {report}");
        }
    }

    #[test]
    fn sort_like_runs_classify_as_iiit1_in_the_report() {
        let report = analyze(&sort_like_runs(), &ReportOptions::default()).unwrap();
        assert!(report.contains("IIIt,1"), "{report}");
        assert!(report.contains("Estimated speedup bound"), "{report}");
    }

    #[test]
    fn prediction_rows_cover_the_requested_range() {
        let opts = ReportOptions {
            n_max: 128,
            ..ReportOptions::default()
        };
        let report = analyze(&sort_like_runs(), &opts).unwrap();
        assert!(report.contains("| 32 |"));
        assert!(report.contains("| 128 |"));
    }

    #[test]
    fn too_few_runs_rejected() {
        let err = analyze(&sort_like_runs()[..3], &ReportOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::InsufficientData { .. }));
    }
}
