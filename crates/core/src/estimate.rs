//! Estimating the three scaling factors from measurements.
//!
//! This implements the measurement methodology of Section V ("Scaling
//! Prediction"): given per-run decompositions ([`RunMeasurement`]) at small
//! scale-out degrees,
//!
//! 1. `Wo(n)` is identified as the overhead present only in the scale-out
//!    execution, yielding `q(n) = Wo(n)·n / Wp(n)`;
//! 2. `EX(n) = Wp(n)/Wp(1)` is fitted (expected ≈ `n` for fixed-time
//!    workloads, Fig. 6 left);
//! 3. `IN(n) = Ws(n)/Ws(1)` is fitted by linear regression, with a
//!    two-segment fallback for step-wise behaviour such as TeraSort's
//!    memory-overflow burst (Figs. 5–6 right).

use crate::factors::ScalingFactor;
use crate::measurement::RunMeasurement;
use crate::model::IpsoModel;
use crate::{AsymptoticParams, ModelError};
use ipso_fit::{fit_line, fit_power_law, fit_two_segment, levenberg_marquardt};

/// Threshold below which a measured `q(n)` is treated as "negligibly
/// small", as the paper concludes for all four MapReduce cases.
const NEGLIGIBLE_Q: f64 = 0.02;

/// Relative residual improvement a two-segment fit must deliver over a
/// single line before we accept the extra complexity.
const SEGMENT_GAIN: f64 = 0.35;

/// The shape selected for a fitted factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorShape {
    /// `f(n) = c` — no scaling (the traditional laws' `IN`).
    Constant,
    /// `f(n) = a·n + b`.
    Linear,
    /// Two linear regimes with a changepoint (TeraSort-style).
    StepWise,
    /// `f(n) = c·n^e`.
    PowerLaw,
    /// Piecewise-linear through the measured samples, anchored at
    /// `(1, 1)` — the fallback when a fitted line extrapolates to a
    /// non-positive value at `n = 1` (a late fit window, as the paper
    /// uses for TeraSort).
    Tabulated,
    /// Identically zero (no scale-out-induced workload).
    Zero,
}

/// A fitted scaling factor with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedFactor {
    /// The fitted function (un-normalized; the model builder normalizes).
    pub factor: ScalingFactor,
    /// Selected shape.
    pub shape: FactorShape,
    /// R² of the selected fit over the samples (1.0 for exact shapes).
    pub r_squared: f64,
}

/// The complete set of factor estimates for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorEstimates {
    /// Parallelizable fraction at `n = 1` (paper Eq. 11).
    pub eta: f64,
    /// Fitted external scaling `EX(n)`.
    pub external: FittedFactor,
    /// Fitted internal scaling `IN(n)`.
    pub internal: FittedFactor,
    /// Fitted scale-out-induced factor `q(n)`.
    pub induced: FittedFactor,
    /// Raw `(n, EX(n))` samples used for the external fit.
    pub external_samples: Vec<(f64, f64)>,
    /// Raw `(n, IN(n))` samples used for the internal fit.
    pub internal_samples: Vec<(f64, f64)>,
    /// Raw `(n, q(n))` samples used for the induced fit.
    pub induced_samples: Vec<(f64, f64)>,
}

impl FactorEstimates {
    /// Builds the deterministic [`IpsoModel`] from the estimates.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn to_model(&self) -> Result<IpsoModel, ModelError> {
        IpsoModel::builder(self.eta)
            .external(self.external.factor.clone())
            .internal(self.internal.factor.clone())
            .induced(self.induced.factor.clone())
            .build()
    }

    /// Reduces the estimates to the asymptotic five-parameter form
    /// `(η, α, δ, β, γ)` by keeping leading terms (paper Eqs. 14–15).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonFinite`] for degenerate leading terms.
    pub fn to_asymptotic(&self) -> Result<AsymptoticParams, ModelError> {
        // Normalize leading coefficients so EX(1) = IN(1) = 1 semantics are
        // respected: the ratio ε(n) = EX(n)/IN(n) is scale-invariant in the
        // fitted (un-normalized) factors only if we renormalize by f(1).
        let ex1 = self.external.factor.eval(1.0);
        let in1 = self.internal.factor.eval(1.0);
        if ex1 <= 0.0 || in1 <= 0.0 {
            return Err(ModelError::NonFinite("factor value at n = 1"));
        }
        let (ex_c, ex_e) = self.external.factor.leading_term();
        let (in_c, in_e) = self.internal.factor.leading_term();
        if in_c == 0.0 {
            return Err(ModelError::NonFinite("internal leading coefficient"));
        }
        let alpha = (ex_c / ex1) / (in_c / in1);
        let delta = ex_e - in_e;
        let (beta, gamma) = match self.induced.shape {
            FactorShape::Zero => (0.0, 0.0),
            _ => {
                let (c, e) = self.induced.factor.leading_term();
                (c.max(0.0), e.max(0.0))
            }
        };
        AsymptoticParams::new(self.eta, alpha.max(0.0), delta, beta, gamma)
    }

    /// The in-proportion scaling ratio `ε(n)` at a given `n`, using the
    /// fitted, normalized factors. The paper reports `ε(n) = 4.3` for
    /// TeraSort at its largest measured scale.
    pub fn epsilon(&self, n: f64) -> f64 {
        let ex = self.external.factor.eval(n) / self.external.factor.eval(1.0);
        let inn = self.internal.factor.eval(n) / self.internal.factor.eval(1.0);
        ex / inn
    }
}

/// Estimates all three scaling factors from run measurements.
///
/// # Errors
///
/// * [`ModelError::InsufficientData`] with fewer than three distinct
///   scale-out degrees or without a reference run at the smallest degree;
/// * regression errors from the underlying fits.
pub fn estimate_factors(runs: &[RunMeasurement]) -> Result<FactorEstimates, ModelError> {
    estimate_factors_windowed(runs, 0, u32::MAX)
}

/// Like [`estimate_factors`], but fits the scaling factors only on runs
/// with `lo <= n <= hi`, while still taking the workload reference
/// (`Wp(1)`, `Ws(1)`, η) from the smallest run overall. This is the
/// paper's TeraSort methodology: the factors are fitted on
/// `16 <= n <= 64` to skip the pre-spill regime, but the `n = 1`
/// reference still defines the normalization.
///
/// # Errors
///
/// Same as [`estimate_factors`]; additionally requires at least three
/// runs inside the window.
pub fn estimate_factors_windowed(
    runs: &[RunMeasurement],
    lo: u32,
    hi: u32,
) -> Result<FactorEstimates, ModelError> {
    if runs.len() < 3 {
        return Err(ModelError::InsufficientData {
            points: runs.len(),
            required: 3,
        });
    }
    for r in runs {
        r.validate()?;
    }
    let mut all: Vec<RunMeasurement> = runs.to_vec();
    all.sort_by_key(|r| r.n);
    let sorted: Vec<RunMeasurement> = all
        .iter()
        .copied()
        .filter(|r| (lo..=hi).contains(&r.n))
        .collect();
    if sorted.len() < 3 {
        return Err(ModelError::InsufficientData {
            points: sorted.len(),
            required: 3,
        });
    }

    let base = all[0];
    let wp1 = base.seq_parallel_work / base.n as f64;
    // Reference workloads at n = 1. If no run at n = 1 exists we
    // extrapolate Wp(1) as Wp(n_min)/n_min (per-task work) which is exact
    // for fixed-time workloads; Ws(1) falls back to the smallest run's
    // serial work.
    let (wp_ref, ws_ref) = if base.n == 1 {
        (base.seq_parallel_work, base.seq_serial_work)
    } else {
        (wp1, base.seq_serial_work)
    };
    if wp_ref <= 0.0 {
        return Err(ModelError::NonFinite("reference parallel workload Wp(1)"));
    }

    let eta = if ws_ref <= 0.0 {
        1.0
    } else {
        wp_ref / (wp_ref + ws_ref)
    };

    let ns: Vec<f64> = sorted.iter().map(|r| r.n as f64).collect();
    let ex_samples: Vec<(f64, f64)> = sorted
        .iter()
        .map(|r| (r.n as f64, r.seq_parallel_work / wp_ref))
        .collect();
    let in_samples: Vec<(f64, f64)> = if ws_ref > 0.0 {
        sorted
            .iter()
            .map(|r| (r.n as f64, r.seq_serial_work / ws_ref))
            .collect()
    } else {
        sorted.iter().map(|r| (r.n as f64, 1.0)).collect()
    };
    let q_samples: Vec<(f64, f64)> = sorted.iter().map(|r| (r.n as f64, r.q_factor())).collect();

    let external = fit_growth_factor(&ns, &ex_samples)?;
    let internal = fit_growth_factor(&ns, &in_samples)?;
    let induced = fit_induced_factor(&q_samples)?;

    Ok(FactorEstimates {
        eta,
        external,
        internal,
        induced,
        external_samples: ex_samples,
        internal_samples: in_samples,
        induced_samples: q_samples,
    })
}

/// Fits a growth factor (`EX` or `IN`): constant, line, or two-segment.
fn fit_growth_factor(ns: &[f64], samples: &[(f64, f64)]) -> Result<FittedFactor, ModelError> {
    let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let spread = ys.iter().map(|y| (y - mean).abs()).fold(0.0, f64::max);

    // Essentially constant (WordCount / QMC internal scaling).
    if spread <= 0.02 * mean.abs().max(1e-12) {
        return Ok(FittedFactor {
            factor: ScalingFactor::Constant(mean),
            shape: FactorShape::Constant,
            r_squared: 1.0,
        });
    }

    let line = fit_line(ns, &ys)?;
    // Try a step-wise fit when we have enough points; accept it only when
    // it meaningfully beats the single line and the slope really changes.
    if ns.len() >= 8 {
        if let Ok(seg) = fit_two_segment(ns, &ys, 3) {
            let improves = seg.gof.ss_res < (1.0 - SEGMENT_GAIN) * line.gof.ss_res;
            let slope_changes =
                (seg.right.slope - seg.left.slope).abs() > 0.15 * seg.left.slope.abs().max(1e-12);
            if improves && slope_changes {
                return Ok(FittedFactor {
                    factor: ScalingFactor::TwoSegment {
                        breakpoint: seg.breakpoint,
                        left: (seg.left.slope, seg.left.intercept),
                        right: (seg.right.slope, seg.right.intercept),
                    },
                    shape: FactorShape::StepWise,
                    r_squared: seg.gof.r_squared,
                });
            }
        }
    }

    // A late fit window can extrapolate to a non-positive value at
    // n = 1, which no normalization can repair. Fall back to a
    // piecewise-linear table anchored at the definitional boundary
    // (1, 1), interpolating the samples and extrapolating the fitted
    // tail slope.
    if line.predict(1.0) <= 0.01 {
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(samples.len() + 1);
        if samples.first().is_none_or(|s| s.0 > 1.0) {
            points.push((1.0, 1.0));
        }
        points.extend(samples.iter().copied());
        return Ok(FittedFactor {
            factor: ScalingFactor::Table(points),
            shape: FactorShape::Tabulated,
            r_squared: 1.0,
        });
    }

    Ok(FittedFactor {
        factor: ScalingFactor::affine(line.slope, line.intercept),
        shape: FactorShape::Linear,
        r_squared: line.gof.r_squared,
    })
}

/// Fits the scale-out-induced factor: zero when negligible, otherwise the
/// shifted power law `q(n) = β·(n^γ − 1)`, which respects the model's
/// boundary condition `q(1) = 0` structurally. (A measured `q(1)` may be
/// slightly positive — e.g. extra job setup in the scale-out environment —
/// which IPSO cannot represent; the fit simply will not pass through that
/// point.)
fn fit_induced_factor(samples: &[(f64, f64)]) -> Result<FittedFactor, ModelError> {
    let max_q = samples.iter().map(|s| s.1).fold(0.0, f64::max);
    if max_q < NEGLIGIBLE_Q {
        return Ok(FittedFactor {
            factor: ScalingFactor::zero(),
            shape: FactorShape::Zero,
            r_squared: 1.0,
        });
    }
    let xs: Vec<f64> = samples
        .iter()
        .filter(|s| s.0 > 1.0 && s.1 > 0.0)
        .map(|s| s.0)
        .collect();
    let ys: Vec<f64> = samples
        .iter()
        .filter(|s| s.0 > 1.0 && s.1 > 0.0)
        .map(|s| s.1)
        .collect();
    if xs.len() < 2 {
        return Err(ModelError::InsufficientData {
            points: xs.len(),
            required: 2,
        });
    }
    // Seed (β, γ) from a plain power law, then refine on the shifted form.
    let seed = fit_power_law(&xs, &ys)
        .map(|pl| vec![pl.coefficient, pl.exponent.max(0.1)])
        .unwrap_or_else(|_| vec![ys[ys.len() - 1] / xs[xs.len() - 1], 1.0]);
    let fit = levenberg_marquardt(
        |p, n| p[0] * (n.powf(p[1]) - 1.0),
        &xs,
        &ys,
        &seed,
        &ipso_fit::NonlinearOptions::default(),
    )?;
    let beta = fit.params[0].max(0.0);
    let gamma = fit.params[1].max(0.0);
    Ok(FittedFactor {
        factor: ScalingFactor::induced(beta, gamma),
        shape: FactorShape::PowerLaw,
        r_squared: fit.gof.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes run measurements for a fixed-time workload with
    /// IN(n) = in_slope·n + (1 − in_slope) and q(n) = beta·(n² − 1)/1
    /// (when gamma = 2) or zero.
    fn synth_runs(
        n_values: &[u32],
        wp1: f64,
        ws1: f64,
        in_slope: f64,
        beta: f64,
        gamma: f64,
    ) -> Vec<RunMeasurement> {
        n_values
            .iter()
            .map(|&n| {
                let nf = n as f64;
                let wp = wp1 * nf; // EX(n) = n
                let inn = in_slope * nf + (1.0 - in_slope);
                let ws = ws1 * inn;
                let q = if beta > 0.0 {
                    beta * (nf.powf(gamma) - 1.0)
                } else {
                    0.0
                };
                RunMeasurement {
                    n,
                    seq_parallel_work: wp,
                    seq_serial_work: ws,
                    par_map_time: wp / nf,
                    par_serial_time: ws,
                    par_overhead: wp / nf * q,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_sort_like_factors() {
        let runs = synth_runs(&[1, 2, 4, 8, 12, 16], 10.0, 2.0, 0.36, 0.0, 0.0);
        let est = estimate_factors(&runs).unwrap();
        assert!((est.eta - 10.0 / 12.0).abs() < 1e-9);
        assert_eq!(est.external.shape, FactorShape::Linear);
        assert_eq!(est.internal.shape, FactorShape::Linear);
        assert_eq!(est.induced.shape, FactorShape::Zero);
        // EX slope 1, IN slope 0.36.
        if let ScalingFactor::Affine { slope, .. } = est.external.factor {
            assert!((slope - 1.0).abs() < 1e-9);
        } else {
            panic!("expected affine EX");
        }
        if let ScalingFactor::Affine { slope, .. } = est.internal.factor {
            assert!((slope - 0.36).abs() < 1e-9);
        } else {
            panic!("expected affine IN");
        }
    }

    #[test]
    fn recovers_constant_internal_scaling() {
        let runs = synth_runs(&[1, 2, 4, 8, 16], 10.0, 2.0, 0.0, 0.0, 0.0);
        let est = estimate_factors(&runs).unwrap();
        assert_eq!(est.internal.shape, FactorShape::Constant);
        let p = est.to_asymptotic().unwrap();
        assert!((p.delta - 1.0).abs() < 1e-9, "delta = {}", p.delta);
        assert!((p.alpha - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_quadratic_induced_overhead() {
        let runs = synth_runs(&[1, 2, 4, 8, 12, 16], 10.0, 0.0, 0.0, 0.001, 2.0);
        let est = estimate_factors(&runs).unwrap();
        assert_eq!(est.eta, 1.0);
        assert_eq!(est.induced.shape, FactorShape::PowerLaw);
        let p = est.to_asymptotic().unwrap();
        assert!((p.gamma - 2.0).abs() < 0.15, "gamma = {}", p.gamma);
    }

    #[test]
    fn detects_terasort_stepwise_internal_scaling() {
        // Two regimes: slope 0.15 before n = 15, slope 0.25 after with a
        // burst, as in paper Fig. 5.
        let runs: Vec<RunMeasurement> = (1..=40)
            .map(|n| {
                let nf = n as f64;
                let inn = if nf <= 15.0 {
                    1.0 + 0.15 * (nf - 1.0)
                } else {
                    1.0 + 0.15 * 14.0 + 1.0 + 0.25 * (nf - 15.0)
                };
                RunMeasurement {
                    n,
                    seq_parallel_work: 10.0 * nf,
                    seq_serial_work: 3.0 * inn,
                    par_map_time: 10.0,
                    par_serial_time: 3.0 * inn,
                    par_overhead: 0.0,
                }
            })
            .collect();
        let est = estimate_factors(&runs).unwrap();
        assert_eq!(est.internal.shape, FactorShape::StepWise);
        if let ScalingFactor::TwoSegment {
            breakpoint,
            left,
            right,
        } = est.internal.factor
        {
            assert!(
                (14.0..=16.0).contains(&breakpoint),
                "breakpoint = {breakpoint}"
            );
            assert!(right.0 > left.0);
        } else {
            panic!("expected two-segment IN");
        }
    }

    #[test]
    fn epsilon_ratio_reported() {
        let runs = synth_runs(&[1, 2, 4, 8, 16], 10.0, 2.0, 0.25, 0.0, 0.0);
        let est = estimate_factors(&runs).unwrap();
        // ε(16) = 16 / (0.25·16 + 0.75) = 16 / 4.75
        assert!((est.epsilon(16.0) - 16.0 / 4.75).abs() < 1e-6);
    }

    #[test]
    fn model_roundtrip_reproduces_speedups() {
        let runs = synth_runs(&[1, 2, 4, 8, 16], 10.0, 2.0, 0.36, 0.0, 0.0);
        let est = estimate_factors(&runs).unwrap();
        let model = est.to_model().unwrap();
        for r in &runs {
            let predicted = model.speedup(r.n as f64).unwrap();
            let measured = r.speedup();
            assert!(
                (predicted - measured).abs() / measured < 0.01,
                "n = {}: predicted {predicted}, measured {measured}",
                r.n
            );
        }
    }

    #[test]
    fn insufficient_data_rejected() {
        let runs = synth_runs(&[1, 2], 10.0, 2.0, 0.36, 0.0, 0.0);
        assert!(matches!(
            estimate_factors(&runs).unwrap_err(),
            ModelError::InsufficientData { .. }
        ));
    }
}
