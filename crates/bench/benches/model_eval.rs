//! Criterion micro-benchmarks of the IPSO model layer: speedup
//! evaluation, taxonomy classification and the classic laws.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipso::classic;
use ipso::taxonomy::{classify, WorkloadType};
use ipso::{AsymptoticParams, IpsoModel, ScalingFactor};

fn bench_deterministic_speedup(c: &mut Criterion) {
    let model = IpsoModel::builder(0.8)
        .external(ScalingFactor::linear())
        .internal(ScalingFactor::affine(0.36, 0.64))
        .induced(ScalingFactor::induced(0.001, 2.0))
        .build()
        .expect("valid model");
    c.bench_function("ipso_speedup_single", |b| {
        b.iter(|| model.speedup(black_box(128.0)).expect("valid"))
    });
    c.bench_function("ipso_speedup_curve_200", |b| {
        b.iter(|| model.speedup_curve(black_box(1..=200)).expect("valid"))
    });
}

fn bench_asymptotic(c: &mut Criterion) {
    let p = AsymptoticParams::new(0.9, 1.3, 0.4, 0.01, 1.5).expect("valid");
    c.bench_function("asymptotic_speedup", |b| {
        b.iter(|| p.speedup(black_box(512.0)).expect("valid"))
    });
    c.bench_function("taxonomy_classify", |b| {
        b.iter(|| classify(black_box(&p), WorkloadType::FixedTime).expect("valid"))
    });
}

fn bench_classic_laws(c: &mut Criterion) {
    c.bench_function("amdahl", |b| {
        b.iter(|| classic::amdahl(black_box(0.95), 64.0))
    });
    c.bench_function("gustafson", |b| {
        b.iter(|| classic::gustafson(black_box(0.95), 64.0))
    });
    c.bench_function("sun_ni", |b| {
        b.iter(|| classic::sun_ni(black_box(0.95), 64.0, |n| n * n.log2().max(1.0)))
    });
}

criterion_group!(
    benches,
    bench_deterministic_speedup,
    bench_asymptotic,
    bench_classic_laws
);
criterion_main!(benches);
