//! Special functions needed by the analytic order statistics.
//!
//! The stochastic IPSO model wants `E[max]` of heavy-tailed task times in
//! closed form. For Pareto variables that expectation is
//! `scale · n · B(n, 1 − 1/a)`, which needs the log-gamma function; this
//! module provides a Lanczos approximation accurate to ~1e-13 over the
//! positive reals.

/// Lanczos coefficients (g = 7, n = 9), Boost/Numerical-Recipes flavour.
const LANCZOS_G: f64 = 7.0;
// The published coefficients carry more digits than f64 resolves; keep
// them verbatim so they can be checked against the source tables.
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics for non-positive or non-finite `x` (the reflection formula is
/// not needed by this crate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the Beta function `B(a, b)`.
///
/// # Panics
///
/// Panics unless both arguments are positive and finite.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Euler–Mascheroni constant γ.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Below this `n` the harmonic number is summed exactly; above it the
/// asymptotic expansion is already accurate to ~1e-13, well past the
/// exact sum's own accumulated rounding.
pub const HARMONIC_EXACT_LIMIT: u32 = 512;

/// The `n`-th harmonic number `H_n = Σ_{k≤n} 1/k`.
///
/// Exact summation up to [`HARMONIC_EXACT_LIMIT`]; beyond it the Euler
/// expansion `ln n + γ + 1/(2n) − 1/(12n²)` (error `O(1/n⁴)`, < 1e-13 at
/// the crossover) replaces the O(n) loop, so `E[max]` of exponential
/// order statistics stays O(1) for the large task counts the straggler
/// sweeps evaluate.
pub fn harmonic(n: u32) -> f64 {
    if n <= HARMONIC_EXACT_LIMIT {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        let x = f64::from(n);
        x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Expected maximum of `n` i.i.d. Pareto(scale, shape) draws:
/// `scale · n · B(n, 1 − 1/shape)`, finite for `shape > 1`.
///
/// # Panics
///
/// Panics unless `n ≥ 1`, `scale > 0` and `shape > 1`.
pub fn pareto_expected_max(scale: f64, shape: f64, n: u32) -> f64 {
    assert!(n >= 1, "need at least one draw");
    assert!(
        scale > 0.0 && shape > 1.0,
        "pareto mean requires scale > 0, shape > 1"
    );
    let nf = f64::from(n);
    scale * nf * (ln_beta(nf, 1.0 - 1.0 / shape)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_factorials() {
        // Γ(k) = (k−1)!
        let mut fact = 1.0f64;
        for k in 1..=15u32 {
            if k > 1 {
                fact *= f64::from(k - 1);
            }
            let lg = ln_gamma(f64::from(k));
            assert!(
                (lg - fact.ln()).abs() < 1e-10,
                "k = {k}: {lg} vs {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(1.5) = √π/2.
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn beta_symmetry_and_known_values() {
        assert!((ln_beta(2.0, 3.0) - ln_beta(3.0, 2.0)).abs() < 1e-13);
        // B(2,3) = 1/12.
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
        // B(1,x) = 1/x.
        assert!((ln_beta(1.0, 7.5) - (1.0f64 / 7.5).ln()).abs() < 1e-12);
    }

    #[test]
    fn pareto_max_of_one_is_the_mean() {
        // E[max of 1] = E[X] = scale·a/(a−1).
        for shape in [1.5, 2.0, 3.0, 10.0] {
            let e = pareto_expected_max(2.0, shape, 1);
            let mean = 2.0 * shape / (shape - 1.0);
            assert!((e - mean).abs() < 1e-10, "shape {shape}: {e} vs {mean}");
        }
    }

    #[test]
    fn pareto_max_matches_monte_carlo() {
        use crate::rng::SimRng;
        let (scale, shape, n) = (1.0, 2.5, 16u32);
        let analytic = pareto_expected_max(scale, shape, n);
        let mut rng = SimRng::seed_from(7);
        let reps = 60_000;
        let mut total = 0.0;
        for _ in 0..reps {
            let mut m = 0.0f64;
            for _ in 0..n {
                m = m.max(rng.pareto(scale, shape));
            }
            total += m;
        }
        let mc = total / f64::from(reps);
        assert!(
            (analytic - mc).abs() / analytic < 0.02,
            "analytic {analytic} vs MC {mc}"
        );
    }

    #[test]
    fn pareto_max_grows_like_n_to_inverse_shape() {
        // E[max of n] ~ scale·Γ(1−1/a)·n^{1/a} for large n.
        let shape = 2.0;
        let e64 = pareto_expected_max(1.0, shape, 64);
        let e256 = pareto_expected_max(1.0, shape, 256);
        let ratio = e256 / e64; // ideal 4^{1/2} = 2
        assert!((ratio - 2.0).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn harmonic_asymptotic_agrees_at_the_crossover() {
        let exact = |n: u32| -> f64 { (1..=n).map(|k| 1.0 / f64::from(k)).sum() };
        // Both sides of the switch, including the first asymptotic n.
        for n in [
            HARMONIC_EXACT_LIMIT - 1,
            HARMONIC_EXACT_LIMIT,
            HARMONIC_EXACT_LIMIT + 1,
            HARMONIC_EXACT_LIMIT + 7,
            2 * HARMONIC_EXACT_LIMIT,
            100_000,
        ] {
            let h = harmonic(n);
            let e = exact(n);
            assert!(
                (h - e).abs() < 1e-12,
                "H_{n}: harmonic() = {h}, exact = {e}, diff = {}",
                (h - e).abs()
            );
        }
        // Monotone across the boundary.
        assert!(harmonic(HARMONIC_EXACT_LIMIT + 1) > harmonic(HARMONIC_EXACT_LIMIT));
    }
}
