#![warn(missing_docs)]

//! Discrete-event simulation core for the IPSO reproduction.
//!
//! The paper's measurements come from Amazon EC2/EMR clusters; this crate
//! is the foundation of the simulated substitute. It provides:
//!
//! * [`time`] — a virtual-clock time type with total ordering;
//! * [`event`] — a deterministic event queue (FIFO tie-breaking);
//! * [`engine`] — a thin simulation driver combining clock and queue;
//! * [`resource`] — FIFO single/multi-server resources for modelling
//!   serialization points (master NIC, centralized scheduler);
//! * [`rng`] — seeded random-number helpers so every simulated experiment
//!   is reproducible run-to-run;
//! * [`stats`] — online statistics and percentile helpers for metrics.
//!
//! # Example
//!
//! ```
//! use ipso_sim::engine::Simulation;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_in(1.5, Ev::Ping(1));
//! sim.schedule_in(0.5, Ev::Ping(2));
//! let (t, ev) = sim.next_event().unwrap();
//! assert_eq!(ev, Ev::Ping(2));
//! assert_eq!(t.as_secs(), 0.5);
//! ```

pub mod engine;
pub mod event;
pub mod par;
pub mod resource;
pub mod rng;
pub mod special;
pub mod stats;
pub mod time;

pub use engine::Simulation;
pub use event::EventQueue;
pub use par::{ordered_map_indexed, resolve_threads};
pub use resource::{FifoServer, ServerPool};
pub use rng::{stream_seed, SimRng};
pub use special::{harmonic, ln_beta, ln_gamma, pareto_expected_max};
pub use stats::{percentile, OnlineStats};
pub use time::SimTime;
