#![warn(missing_docs)]

//! A miniature MapReduce engine running on the simulated cluster.
//!
//! The paper's single-stage case studies (QMC-Pi, WordCount, Sort,
//! TeraSort) run on Hadoop MapReduce configured with *one container per
//! processing unit* and a *single reducer with a synchronization barrier*.
//! This crate reproduces that execution model:
//!
//! * user code implements [`api::Mapper`] / [`api::Reducer`] and really
//!   executes over really generated records (outputs are checked for
//!   correctness in tests — the engine is not a stub);
//! * wall-clock *time* is charged by a calibrated cost model
//!   ([`cost::JobCostModel`]) driven by the nominal data volumes, so a
//!   laptop can sweep `n` up to hundreds of simulated 128 MB shards while
//!   executing smaller samples of real records (see
//!   [`split::InputSplit::sample_fraction`]);
//! * both execution modes of the paper are provided: the scale-out run
//!   ([`engine::run_scale_out`]) and the sequential-execution reference
//!   model defining the speedup numerator ([`engine::run_sequential`]);
//! * [`measure`] converts paired runs into the `RunMeasurement`
//!   decomposition the IPSO analysis consumes.
//!
//! The division of labour mirrors Section V of the paper: the map phase is
//! the parallel portion, shuffle + merge + reduce form the serial merging
//! portion, and overheads present only in the scale-out run (job setup,
//! dispatch serialization, barrier skew) constitute `Wo(n)`.

pub mod api;
pub mod config;
pub mod cost;
mod datapath;
pub mod engine;
pub mod measure;
pub mod plan;
pub mod split;

pub use api::{Mapper, OutputScaling, Reducer, Sizeable};
pub use config::{JobSpec, ShuffleImpl};
pub use cost::JobCostModel;
pub use engine::{run_scale_out, run_sequential, try_run_scale_out, JobRun};
pub use measure::{measurement_from_runs, ScalingSweep};
pub use plan::plan_scale_out;
pub use split::InputSplit;
