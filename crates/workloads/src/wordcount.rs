//! WordCount (HiBench micro benchmark; paper Fig. 4b).
//!
//! Random dictionary text is tokenized and counted. The map-side combiner
//! collapses each task's output to at most one entry per dictionary word,
//! so the intermediate data is bounded (~1000 entries) no matter how many
//! shards are processed: the serial portion is dominated by the constant
//! reducer setup and the paper measures `IN(n) ≈ 1` — a benign It/IIt
//! scaling type.

use std::sync::Arc;

use ipso_mapreduce::{
    InputSplit, JobCostModel, JobSpec, Mapper, OutputScaling, Reducer, ScalingSweep,
};
use ipso_sim::SimRng;

use crate::datagen::random_lines;

/// Nominal HDFS shard per map task (the paper's maximal block size).
pub const SHARD_BYTES: u64 = 128 * 1024 * 1024;
/// Lines of sample text actually executed per task.
const SAMPLE_LINES: usize = 250;
/// Words per generated line.
const WORDS_PER_LINE: usize = 8;

/// Tokenizing mapper with a summing combiner.
///
/// Keys are interned `Arc<str>` handles into the generated dictionary:
/// emitting a token hashes it into the dictionary set and clones a
/// pointer instead of allocating a fresh `String` per token, and every
/// downstream clone of the key (grouping, combining, merging) stays
/// allocation-free. Tokens outside the dictionary — impossible for
/// [`random_lines`] text, but allowed by the API — fall back to a
/// one-off allocation.
#[derive(Debug, Clone)]
pub struct WordCountMapper {
    /// The dictionary, as a hash set for O(1) interning.
    dict: std::collections::HashSet<Arc<str>>,
}

impl WordCountMapper {
    /// Builds the mapper, interning the generated dictionary.
    pub fn new() -> WordCountMapper {
        let dict = crate::datagen::unix_dictionary()
            .into_iter()
            .map(Arc::from)
            .collect();
        WordCountMapper { dict }
    }

    /// The shared handle for `word`: a clone of the dictionary entry, or
    /// a fresh allocation for out-of-dictionary tokens.
    fn intern(&self, word: &str) -> Arc<str> {
        match self.dict.get(word) {
            Some(entry) => Arc::clone(entry),
            None => Arc::from(word),
        }
    }
}

impl Default for WordCountMapper {
    fn default() -> WordCountMapper {
        WordCountMapper::new()
    }
}

impl Mapper for WordCountMapper {
    type Input = String;
    type Key = Arc<str>;
    type Value = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(Arc<str>, u64)) {
        for word in line.split_whitespace() {
            emit(self.intern(word), 1);
        }
    }

    fn combine(&self, _key: &Arc<str>, values: &mut Vec<u64>) {
        let sum = values.iter().sum();
        values.clear();
        values.push(sum);
    }

    fn output_scaling(&self) -> OutputScaling {
        OutputScaling::Saturating
    }
}

/// Count-summing reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountReducer;

impl Reducer for WordCountReducer {
    type Key = Arc<str>;
    type Value = u64;
    type Output = (String, u64);

    fn reduce(&self, key: &Arc<str>, values: &[u64], emit: &mut dyn FnMut((String, u64))) {
        emit((key.to_string(), values.iter().sum()));
    }
}

/// Cost calibration: WordCount is CPU-bound on the map side (JVM
/// tokenization of a 128 MB block takes ~13 s, matching 2019-era Hadoop)
/// with negligible reduce-side data.
pub fn cost_model() -> JobCostModel {
    JobCostModel {
        map_rate: 10.0e6,
        shuffle_rate: 200.0e6,
        merge_rate: 200.0e6,
        reduce_rate: 200.0e6,
        seq_init: 2.0,
        serial_setup: 1.0,
    }
}

/// The job spec at scale-out degree `n`.
pub fn job_spec(n: u32) -> JobSpec {
    let mut spec = JobSpec::emr("wordcount", n);
    spec.cost = cost_model();
    spec
}

/// The `n` fixed-time splits: one 128 MB shard of dictionary text per
/// task, sampled down for execution.
pub fn make_splits(n: u32, seed: u64) -> Vec<InputSplit<String>> {
    (0..n)
        .map(|task| {
            let mut rng = SimRng::seed_from(seed ^ (u64::from(task) << 20) ^ 0x57c0);
            let lines = random_lines(SAMPLE_LINES, WORDS_PER_LINE, &mut rng);
            let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
            InputSplit::new(lines, bytes, SHARD_BYTES)
        })
        .collect()
}

/// Runs the full paper sweep for WordCount.
pub fn sweep(ns: &[u32]) -> ScalingSweep {
    ScalingSweep::run(
        ns,
        &WordCountMapper::new(),
        &WordCountReducer,
        job_spec,
        |n| make_splits(n, 1),
        |n| make_splits(n, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        use ipso_mapreduce::run_sequential;
        let splits = make_splits(2, 7);
        let expected: u64 = splits.iter().map(|s| s.records.len() as u64 * 8).sum();
        let run = run_sequential(
            &job_spec(2),
            &WordCountMapper::new(),
            &WordCountReducer,
            &splits,
        );
        let total: u64 = run.output.iter().map(|(_, c)| c).sum();
        assert_eq!(total, expected);
        // Every key is a dictionary word.
        let dict: std::collections::HashSet<String> =
            crate::datagen::unix_dictionary().into_iter().collect();
        assert!(run.output.iter().all(|(w, _)| dict.contains(w)));
    }

    #[test]
    fn dictionary_tokens_are_interned() {
        let mapper = WordCountMapper::new();
        let word = crate::datagen::unix_dictionary()[0].clone();
        let line = format!("{word} {word}");
        let mut keys = Vec::new();
        mapper.map(&line, &mut |k, _| keys.push(k));
        assert_eq!(keys.len(), 2);
        // Same handle, not merely the same text.
        assert!(Arc::ptr_eq(&keys[0], &keys[1]));
        assert_eq!(&*keys[0], word.as_str());
        // Out-of-dictionary tokens still come through, just unshared.
        let mut fallback = Vec::new();
        mapper.map(&"n0t-a-w0rd".to_string(), &mut |k, _| fallback.push(k));
        assert_eq!(&*fallback[0], "n0t-a-w0rd");
    }

    #[test]
    fn intermediate_data_saturates() {
        use ipso_mapreduce::run_scale_out;
        let mapper = WordCountMapper::new();
        let r4 = run_scale_out(&job_spec(4), &mapper, &WordCountReducer, &make_splits(4, 1));
        let r8 = run_scale_out(&job_spec(8), &mapper, &WordCountReducer, &make_splits(8, 1));
        // Reduce input grows at most linearly in tasks with a tiny
        // per-task bound (1000 dictionary entries).
        assert!(r8.reduce_input_bytes < 2 * r4.reduce_input_bytes + 1024);
        assert!(r8.reduce_input_bytes < 8 * 1000 * 20);
    }

    #[test]
    fn speedup_is_near_gustafson() {
        let sweep = sweep(&[1, 2, 4, 8, 16, 32]);
        let curve = sweep.speedup_curve().unwrap();
        let s32 = curve.points().last().unwrap().speedup;
        let eta = sweep.measurements()[0].seq_parallel_work
            / (sweep.measurements()[0].seq_parallel_work + sweep.measurements()[0].seq_serial_work);
        let gustafson = eta * 32.0 + (1.0 - eta);
        // Close to Gustafson's prediction — the benign case. The gap
        // (straggler E[max] and job-setup excess) matches the slight
        // shortfall visible in the paper's Fig. 4b data points.
        assert!(
            (s32 - gustafson).abs() / gustafson < 0.3,
            "S(32) = {s32}, Gustafson = {gustafson}"
        );
        // And growth stays near-linear.
        let s16 = curve.points()[4].speedup;
        assert!(s32 / s16 > 1.6, "S(32)/S(16) = {}", s32 / s16);
    }

    #[test]
    fn internal_scaling_is_flat() {
        use ipso::estimate::{estimate_factors, FactorShape};
        let sweep = sweep(&[1, 2, 4, 8, 12, 16]);
        let est = estimate_factors(&sweep.measurements()).unwrap();
        // IN(n) ≈ 1 as in the paper (constant, or linear with a tiny
        // slope relative to the intercept).
        match est.internal.shape {
            FactorShape::Constant => {}
            FactorShape::Linear => {
                let at16 = est.internal.factor.eval(16.0) / est.internal.factor.eval(1.0);
                assert!(at16 < 1.6, "IN(16) = {at16}");
            }
            other => panic!("unexpected IN shape {other:?}"),
        }
    }
}
