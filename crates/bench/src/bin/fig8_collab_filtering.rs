//! Fig. 8 — Collaborative Filtering: fitted workload curves and the
//! measured/IPSO/Amdahl speedups.
//!
//! Reproduces the paper's analysis of Table I: nonlinear regression fits
//! `E[max Tp,i(n)] = a/n + c` and `Wo(n) = b·n^(γ−1)` (so the induced
//! factor has γ = 2), extrapolates `E[Tp,1(1)] ≈ 1602.5`, and evaluates
//! Eq. 18. The speedup peaks near n = 60 at a dismal ≈ 21 and then
//! decays — type IVs — while Amdahl's law (η = 1) predicts S(n) = n.

use ipso::predict::FixedSizePredictor;
use ipso::stochastic::fixed_size_speedup;
use ipso_bench::{SweepRunner, Table};
use ipso_workloads::collab_filter::{table1_samples, TABLE_I};

fn main() {
    let runner = SweepRunner::from_env();
    let samples = table1_samples();
    let predictor = FixedSizePredictor::fit(&samples).expect("fit Table I");

    println!("fitted workload curves (paper Fig. 8a):");
    println!(
        "  E[max Tp,i(n)] = {:.1}/n + {:.1}   (extrapolated E[Tp,1(1)] = {:.1}; paper: 1602.5)",
        predictor.task_coeff, predictor.task_offset, predictor.tp1
    );
    println!(
        "  Wo(n) = {:.3}·n^{:.2}  =>  q(n) ~ n^{:.2}  (paper: gamma = 2)\n",
        predictor.overhead_coeff,
        predictor.gamma - 1.0,
        predictor.gamma
    );

    let mut table = Table::new(
        "fig8_collab_filtering",
        &["n", "measured", "ipso", "amdahl"],
    );
    // Grid: measured points from Table I (with their raw measurements)
    // followed by the extrapolated ns beyond them.
    let grid: Vec<(u32, Option<(f64, f64)>)> = TABLE_I
        .iter()
        .map(|&(n, tmax, wo)| (n, Some((tmax, wo))))
        .chain([120u32, 150, 180, 210, 240].into_iter().map(|n| (n, None)))
        .collect();
    let rows = runner.map(grid, |_ctx, (n, sample)| {
        let ipso = predictor.speedup(f64::from(n)).expect("valid");
        // Measured points evaluate Eq. 18 with the fitted Tp,1(1).
        let measured = match sample {
            Some((tmax, wo)) => fixed_size_speedup(predictor.tp1, tmax, wo).expect("valid"),
            None => f64::NAN,
        };
        vec![f64::from(n), measured, ipso, f64::from(n)]
    });
    for row in rows {
        table.push(row);
    }
    table.emit();

    let (n_peak, s_peak) = predictor.peak(240).expect("peak");
    println!(
        "IPSO peak: S({n_peak}) = {s_peak:.1} (paper: ~21 near n = 60), then decay — type IVs."
    );
    println!("Scaling out beyond n = {n_peak} only harms performance; Amdahl predicts S(n) = n.");
}
