//! Sections I/VI — speedup-versus-cost provisioning.
//!
//! The paper motivates IPSO with "the best speedup-versus-cost tradeoffs"
//! and proposes measurement-based provisioning as future work. This
//! experiment closes the loop: fit IPSO to the simulated Sort workload at
//! small n, then pick the scale-out degree that (a) maximizes speedup,
//! (b) maximizes speedup per dollar, and (c) meets a deadline at minimum
//! cost.

use ipso::predict::ScalingPredictor;
use ipso::provision::{CostModel, Provisioner};
use ipso_bench::{SweepRunner, Table};
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::{sort, FIT_WINDOW};

fn main() {
    let runner = SweepRunner::from_env();
    let ns: Vec<u32> = vec![1, 2, 4, 8, 12, 16];
    let points = runner
        .map(ns, |_ctx, n| sort::sweep(&[n]).points)
        .into_iter()
        .flatten()
        .collect();
    let sweep = ScalingSweep { points };
    let measurements = sweep.measurements();
    let predictor = ScalingPredictor::fit(&measurements, FIT_WINDOW).expect("fit");
    let t1 = measurements[0].sequential_time();

    let provisioner =
        Provisioner::new(predictor.model().clone(), t1, CostModel::default()).expect("valid");

    let mut table = Table::new(
        "provisioning_tradeoffs",
        &[
            "n",
            "speedup",
            "job_time_s",
            "job_cost_usd",
            "speedup_per_usd",
        ],
    );
    for p in provisioner.sweep(200).expect("sweep") {
        if p.n == 1 || p.n % 10 == 0 {
            table.push(vec![
                f64::from(p.n),
                p.speedup,
                p.job_time,
                p.job_cost,
                p.speedup_per_dollar,
            ]);
        }
    }
    table.emit();

    let fastest = provisioner.fastest(200).expect("evaluable");
    let efficient = provisioner.most_efficient(200).expect("evaluable");
    let knee = provisioner.knee(0.9, 200).expect("evaluable");
    println!(
        "fastest          : n = {:3}  S = {:.2}  cost = ${:.3}",
        fastest.n, fastest.speedup, fastest.job_cost
    );
    println!(
        "most efficient   : n = {:3}  S = {:.2}  cost = ${:.3}",
        efficient.n, efficient.speedup, efficient.job_cost
    );
    println!(
        "90%-of-peak knee : n = {:3}  S = {:.2}  cost = ${:.3}",
        knee.n, knee.speedup, knee.job_cost
    );
    match provisioner
        .cheapest_meeting_deadline(t1 / 3.0, 200)
        .expect("evaluable")
    {
        Some(p) => println!(
            "deadline T1/3    : n = {:3}  time = {:.1}s  cost = ${:.3}",
            p.n, p.job_time, p.job_cost
        ),
        None => println!("deadline T1/3    : unreachable at any n <= 200"),
    }
    println!(
        "\nFor this IIIt,1 workload the knee sits far below the speedup peak: paying for\n\
         nodes past n = {} buys almost nothing — exactly the provisioning insight IPSO\n\
         exists to provide.",
        knee.n
    );
}
