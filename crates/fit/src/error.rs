//! Error type shared by all fitting routines.

use std::error::Error;
use std::fmt;

/// Error returned when a regression cannot be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The `x` and `y` slices have different lengths.
    LengthMismatch {
        /// Number of `x` samples supplied.
        x_len: usize,
        /// Number of `y` samples supplied.
        y_len: usize,
    },
    /// Fewer data points than free parameters in the model.
    TooFewPoints {
        /// Number of points supplied.
        points: usize,
        /// Minimum number of points the routine requires.
        required: usize,
    },
    /// The design matrix is singular (e.g. all `x` values identical).
    Singular,
    /// A sample violates a domain requirement (e.g. non-positive values
    /// supplied to a log–log fit).
    InvalidDomain(&'static str),
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A non-finite value (NaN or infinity) was supplied or produced.
    NonFinite,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::LengthMismatch { x_len, y_len } => {
                write!(f, "x has {x_len} samples but y has {y_len}")
            }
            FitError::TooFewPoints { points, required } => {
                write!(
                    f,
                    "{points} data points supplied but at least {required} required"
                )
            }
            FitError::Singular => write!(f, "design matrix is singular"),
            FitError::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            FitError::NoConvergence { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
            FitError::NonFinite => write!(f, "non-finite value encountered"),
        }
    }
}

impl Error for FitError {}

/// Validates that `x` and `y` are the same length, at least `required` long
/// and contain only finite values.
pub(crate) fn validate_xy(x: &[f64], y: &[f64], required: usize) -> Result<(), FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.len() < required {
        return Err(FitError::TooFewPoints {
            points: x.len(),
            required,
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(FitError, &str)> = vec![
            (
                FitError::LengthMismatch { x_len: 3, y_len: 4 },
                "x has 3 samples but y has 4",
            ),
            (
                FitError::TooFewPoints {
                    points: 1,
                    required: 2,
                },
                "1 data points supplied but at least 2 required",
            ),
            (FitError::Singular, "design matrix is singular"),
            (
                FitError::InvalidDomain("x must be positive"),
                "invalid domain: x must be positive",
            ),
            (
                FitError::NoConvergence { iterations: 50 },
                "solver did not converge after 50 iterations",
            ),
            (FitError::NonFinite, "non-finite value encountered"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn validate_rejects_mismatched_lengths() {
        let err = validate_xy(&[1.0, 2.0], &[1.0], 1).unwrap_err();
        assert_eq!(err, FitError::LengthMismatch { x_len: 2, y_len: 1 });
    }

    #[test]
    fn validate_rejects_too_few_points() {
        let err = validate_xy(&[1.0], &[1.0], 2).unwrap_err();
        assert_eq!(
            err,
            FitError::TooFewPoints {
                points: 1,
                required: 2
            }
        );
    }

    #[test]
    fn validate_rejects_nan() {
        let err = validate_xy(&[1.0, f64::NAN], &[1.0, 2.0], 2).unwrap_err();
        assert_eq!(err, FitError::NonFinite);
    }

    #[test]
    fn validate_accepts_good_input() {
        assert!(validate_xy(&[1.0, 2.0], &[3.0, 4.0], 2).is_ok());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FitError>();
    }
}
