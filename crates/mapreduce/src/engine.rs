//! The MapReduce execution engine.
//!
//! Two execution modes, matching the paper's Section IV definitions:
//!
//! * [`run_scale_out`] — `n` map tasks in parallel on `n` units with a
//!   synchronization barrier, then a single reducer;
//! * [`run_sequential`] — the sequential job execution model defining the
//!   speedup numerator: the same tasks run back-to-back on one unit,
//!   followed by the same merge.
//!
//! Both modes *really execute* the user's map/combine/reduce functions
//! over the sample records and produce real outputs; only wall-clock time
//! is synthetic, charged from nominal data volumes via the cost model.
//!
//! Since the unified-runtime refactor the engine is a thin composition:
//!
//! 1. **data path** ([`crate::datapath`]) — the real map/combine/
//!    shuffle-group/reduce over sample records, run as a parallel wave
//!    over host threads; consumes no randomness;
//! 2. **plan** ([`crate::plan`]) — lower the job to the framework-
//!    agnostic task-graph IR ([`ipso_cluster::TaskGraph`]): one stage of
//!    map tasks, slowest-task ideal, no lineage;
//! 3. **execute** ([`ipso_cluster::execute`]) — the unified runtime owns
//!    straggler sampling, fault resolution, policy-driven wave
//!    scheduling and Ws/Wp/Wo attribution;
//! 4. **account** — the serial merging portion (shuffle, merge, reduce)
//!    is charged behind the barrier from the real intermediate volumes,
//!    and the trace/timeline is assembled here.

use ipso_cluster::runtime::{RuntimeConfig, StageOutcome};
use ipso_cluster::{ClusterError, JobTrace, PhaseTimes, RunConfig, StageNode};
use ipso_sim::SimRng;

use crate::api::{Mapper, Reducer};
use crate::config::JobSpec;
use crate::datapath::{execute_map_tasks, execute_reduce, MappedTask};
use crate::plan::plan_scale_out;
use crate::split::InputSplit;

/// The result of one job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRun<O> {
    /// Timing trace (phases, tasks, scale-out overheads).
    pub trace: JobTrace,
    /// The real output records produced by the reducer, in key order.
    pub output: Vec<O>,
    /// Nominal bytes entering the reduce phase.
    pub reduce_input_bytes: u64,
}

/// Runs the job scaled out over `splits.len()` parallel tasks.
///
/// The trace records:
///
/// * `phases.map` — the slowest task (barrier synchronization);
/// * `phases.shuffle/merge/reduce` — the serial merging portion, with the
///   shuffle paying the network incast penalty and the merge paying the
///   memory spill multiplier;
/// * `scale_out_overhead` — job setup, dispatch serialization, barrier
///   skew beyond the slowest task, and (with faults enabled) wasted
///   recovery work: the measured `Wo(n)`.
///
/// # Panics
///
/// Panics if `splits` is empty, the split count exceeds the cluster's
/// slots, the spec fails validation, or — with faults enabled — the run
/// hits an unrecoverable fault ([`try_run_scale_out`] returns those as
/// typed errors instead).
pub fn run_scale_out<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    try_run_scale_out(spec, mapper, reducer, splits)
        .unwrap_or_else(|e| panic!("unrecoverable fault: {e}"))
}

/// [`run_scale_out`] with fault-recovery failures surfaced as typed
/// errors: retries exhausted or the fail-fast wasted-work budget blown
/// ([`ClusterError`]). With the default (disabled) fault model this
/// never errs.
///
/// When the fault model is enabled, nominal task durations are passed
/// through [`resolve_faults`] before scheduling: recovery latency
/// (failed attempts, restarts, backoff, crash recomputation) lengthens
/// the affected tasks on the schedule, and the wasted *work* is charged
/// into `scale_out_overhead` — the paper's `Wo(n)` attribution for
/// fault tolerance. The resulting [`ipso_cluster::FaultSummary`] is
/// recorded on the trace.
///
/// # Errors
///
/// Returns [`ClusterError::RetriesExhausted`] or
/// [`ClusterError::WastedWorkExceeded`] from fault resolution.
///
/// # Panics
///
/// Panics if `splits` is empty, the split count exceeds the cluster's
/// slots, or the spec fails validation.
pub fn try_run_scale_out<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> Result<JobRun<R::Output>, ClusterError>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(!splits.is_empty(), "scale-out run needs at least one split");
    spec.validate().expect("invalid job spec");
    let slots = spec.cluster.total_slots() as usize;
    assert!(
        splits.len() <= slots,
        "one container per unit: {} splits exceed {} slots",
        splits.len(),
        slots
    );
    let n = splits.len() as u32;
    let mut rng = SimRng::seed_from(spec.seed ^ u64::from(n));

    // Real map-side computation, executed as a parallel wave.
    let mapped: Vec<MappedTask<M::Key, M::Value>> = execute_map_tasks(mapper, splits, spec);

    // Lower to the task-graph IR and hand the timing side to the unified
    // runtime: straggler sampling, fault resolution (disabled consumes
    // zero RNG draws, keeping the straggler stream — and therefore every
    // output byte — identical to a fault-free build), policy-driven wave
    // scheduling and overhead attribution all live there now.
    let graph = plan_scale_out(spec, splits);
    let executors = slots.min(splits.len());
    let runtime = RuntimeConfig {
        executors,
        scheduler: spec.scheduler,
        policy: spec.policy,
        straggler: spec.straggler,
        faults: spec.faults,
        recovery: spec.recovery,
        threads: spec.engine.threads,
    };
    let mut outcome = ipso_cluster::execute(&graph, &runtime, &mut rng)?;
    let mut stage = outcome.stages.pop().expect("single-stage graph");
    // Replay the captured scheduling instrumentation at its place in the
    // global stream: after sampling, before the shuffle model below.
    ipso_obs::merge(std::mem::take(&mut stage.records));
    let max_task = stage.schedule.max_task_duration();

    // Serial merging portion. The shuffle is charged at the reducer's
    // service rate, as in the sequential execution: the paper inspected
    // the shuffle stage for scale-out-induced discrepancies and found
    // them negligible for the single-reducer MapReduce cases (the
    // network-level incast model lives in `ipso_cluster::NetworkModel`
    // and is exercised by the Spark engine's m-to-m shuffles).
    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = if spec.pipelined_shuffle {
        // Slow-start shuffle: the reducer's transfer server ingests each
        // task's output when that task completes; only the portion that
        // outlasts the map barrier remains on the critical path. The FIFO
        // server captures the queueing effect at the single reducer.
        let mut server = ipso_sim::FifoServer::new();
        let mut finish = ipso_sim::SimTime::ZERO;
        for (record, task) in stage.schedule.records.iter().zip(&mapped) {
            let service = spec.cost.shuffle_time(task.nominal_out_bytes);
            let grant = server.submit(ipso_sim::SimTime::from_secs(record.end), service);
            finish = finish.max(grant.finish);
        }
        (finish.as_secs() - stage.schedule.makespan).max(0.0)
    } else {
        spec.cost.shuffle_time(total_intermediate)
    };
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped, spec.shuffle);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    // Scale-out-only overheads, attributed by the runtime: extra job
    // setup versus the sequential environment (the graph's setup term),
    // the dispatch-induced stretch of the split phase beyond the slowest
    // task (the stage's schedule overhead), and the work burned by fault
    // recovery (the latency of recovery is already inside the schedule;
    // the *wasted work* is scale-out-induced workload, since the
    // sequential reference never re-executes).
    let setup_extra = outcome.setup_overhead;
    let barrier_stretch = stage.schedule_overhead();
    let wasted = stage.wasted();

    if ipso_obs::enabled() {
        record_scale_out_trace(
            spec,
            &graph.stages[0],
            &stage,
            total_intermediate,
            shuffle,
            merge,
            reduce,
            setup_extra + barrier_stretch,
        );
    }

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: max_task,
            shuffle,
            merge,
            reduce,
        },
        tasks: stage.schedule.records,
        scale_out_overhead: setup_extra + barrier_stretch + wasted,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
        faults: stage.fault.map(|o| o.summary),
    };
    Ok(JobRun {
        trace,
        output,
        reduce_input_bytes,
    })
}

/// Emits the scale-out run's timeline and metrics into `ipso_obs`.
///
/// The timeline places the init span at virtual time zero, the split
/// phase (and its per-executor task spans, via the runtime's
/// [`StageOutcome::record_task_spans`]) right after it, and the serial
/// shuffle/merge/reduce phases behind the barrier. Tasks whose straggler
/// multiplier reached the severe threshold get an instant marker on
/// their executor's track, and each recovery event (retry, lost output,
/// speculative copy) an instant at its task's finish.
#[allow(clippy::too_many_arguments)]
fn record_scale_out_trace(
    spec: &JobSpec,
    plan: &StageNode,
    stage: &StageOutcome,
    total_intermediate: u64,
    shuffle: f64,
    merge: f64,
    reduce: f64,
    overhead: f64,
) {
    let t0 = spec.cost.seq_init;
    let makespan = stage.schedule.makespan;
    ipso_obs::record_span("driver", "init", "mapreduce", 0.0, t0);
    ipso_obs::record_span("driver", "map", "mapreduce", t0, t0 + makespan);
    stage.record_task_spans(plan, "mapreduce", t0);
    let barrier = t0 + makespan;
    ipso_obs::record_span("driver", "shuffle", "mapreduce", barrier, barrier + shuffle);
    ipso_obs::record_span(
        "driver",
        "merge",
        "mapreduce",
        barrier + shuffle,
        barrier + shuffle + merge,
    );
    ipso_obs::record_span(
        "driver",
        "reduce",
        "mapreduce",
        barrier + shuffle + merge,
        barrier + shuffle + merge + reduce,
    );
    stage.record_fault_instants("mapreduce", t0);
    ipso_obs::counter_add("mapreduce.jobs", 1);
    ipso_obs::counter_add("mapreduce.tasks_launched", stage.effective.len() as u64);
    ipso_obs::counter_add("mapreduce.shuffle_bytes", total_intermediate);
    ipso_obs::gauge_add("overhead.scheduling_s", overhead);
}

/// Runs the paper's sequential job execution model: all tasks
/// back-to-back on one processing unit, then the merge. No dispatch
/// overhead, no incast, no stragglers (the expectation is charged via the
/// straggler model's mean multiplier so workloads stay calibrated).
///
/// # Panics
///
/// Panics if `splits` is empty or the spec fails validation.
pub fn run_sequential<M, R>(
    spec: &JobSpec,
    mapper: &M,
    reducer: &R,
    splits: &[InputSplit<M::Input>],
) -> JobRun<R::Output>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    assert!(
        !splits.is_empty(),
        "sequential run needs at least one split"
    );
    spec.validate().expect("invalid job spec");
    let n = splits.len() as u32;

    // "Sequential" refers to the simulated execution model, not the
    // host: the real record processing still uses the map wave.
    let mapped: Vec<MappedTask<M::Key, M::Value>> = execute_map_tasks(mapper, splits, spec);

    let mean_mult = spec.straggler.mean_multiplier();
    let map_total: f64 = splits
        .iter()
        .map(|s| spec.cost.map_time(s.nominal_bytes) * mean_mult)
        .sum();

    let total_intermediate: u64 = mapped.iter().map(|t| t.nominal_out_bytes).sum();
    let shuffle = spec.cost.shuffle_time(total_intermediate);
    let slowdown = spec.reducer_memory.slowdown(total_intermediate);
    let merge = spec.cost.serial_setup + spec.cost.merge_time(total_intermediate) * slowdown;

    let (output, reduce_input_bytes) = execute_reduce(reducer, mapped, spec.shuffle);
    let reduce = spec.cost.reduce_time(reduce_input_bytes) * slowdown;

    let trace = JobTrace {
        job: spec.name.clone(),
        n,
        phases: PhaseTimes {
            init: spec.cost.seq_init,
            map: map_total,
            shuffle,
            merge,
            reduce,
        },
        tasks: Vec::new(),
        scale_out_overhead: 0.0,
        config: Some(RunConfig {
            scheduler: spec.scheduler,
            straggler: spec.straggler,
            seed: spec.seed,
        }),
        faults: None,
    };
    JobRun {
        trace,
        output,
        reduce_input_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OutputScaling, Sizeable};
    use crate::config::ShuffleImpl;

    /// A sort-style identity job over u64 records.
    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    /// A counting job with a saturating combiner.
    struct CountMap;
    impl Mapper for CountMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(input % 10, 1);
        }
        fn combine(&self, _key: &u64, values: &mut Vec<u64>) {
            let sum = values.iter().sum();
            values.clear();
            values.push(sum);
        }
        fn output_scaling(&self) -> OutputScaling {
            OutputScaling::Saturating
        }
    }
    struct SumReduce;
    impl Reducer for SumReduce {
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut((u64, u64))) {
            emit((*key, values.iter().sum()));
        }
    }

    fn splits(n: u32, records_per: u64) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..records_per)
                    .map(|j| (u64::from(i) * records_per + j) % 997)
                    .collect();
                let bytes = records.iter().map(Sizeable::size_bytes).sum::<u64>();
                InputSplit::new(records, bytes, bytes * 1000)
            })
            .collect()
    }

    #[test]
    fn identity_job_outputs_sorted_multiset() {
        let spec = JobSpec::emr("sort", 4);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(run.output.len(), 400);
        assert!(
            run.output.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
        // Identical multiset as inputs.
        let mut inputs: Vec<u64> = splits(4, 100).into_iter().flat_map(|s| s.records).collect();
        inputs.sort_unstable();
        assert_eq!(run.output, inputs);
    }

    #[test]
    fn sequential_and_parallel_produce_identical_output() {
        let spec = JobSpec::emr("count", 3);
        let par = run_scale_out(&spec, &CountMap, &SumReduce, &splits(3, 500));
        let seq = run_sequential(&spec, &CountMap, &SumReduce, &splits(3, 500));
        assert_eq!(par.output, seq.output);
        // All 10 residue classes, each with 150 total.
        assert_eq!(par.output.len(), 10);
        assert_eq!(par.output.iter().map(|(_, c)| c).sum::<u64>(), 1500);
    }

    #[test]
    fn speedup_numerator_exceeds_denominator() {
        let spec = JobSpec::emr("sort", 8);
        let s = splits(8, 200);
        let par = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &s);
        // Sequential map is the sum; parallel map is roughly one task.
        assert!(seq.trace.phases.map > 6.0 * par.trace.phases.map);
        assert!(seq.trace.phases.map < 9.0 * par.trace.phases.map);
    }

    #[test]
    fn proportional_scaling_amplifies_intermediate_bytes() {
        let spec = JobSpec::emr("sort", 2);
        let s = splits(2, 100);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        // Sample is 1/1000 of nominal: intermediate must scale up ~1000×.
        let sample: u64 = 2 * 100 * 16;
        assert!(run.reduce_input_bytes > 900 * sample / 2);
    }

    #[test]
    fn saturating_scaling_keeps_intermediate_small() {
        let spec = JobSpec::emr("count", 2);
        let run = run_scale_out(&spec, &CountMap, &SumReduce, &splits(2, 1000));
        // Post-combine: ≤ 10 keys per task, 16 bytes each.
        assert!(run.reduce_input_bytes <= 2 * 10 * 16);
    }

    #[test]
    fn scale_out_overhead_is_recorded() {
        let spec = JobSpec::emr("sort", 8);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert!(run.trace.scale_out_overhead > 0.0);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert_eq!(seq.trace.scale_out_overhead, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_change_stragglers() {
        let mut spec = JobSpec::emr("sort", 4);
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        spec.seed = 7;
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert_ne!(a.trace.phases.map, b.trace.phases.map);
    }

    #[test]
    fn shuffle_impls_are_equivalent() {
        let mut spec = JobSpec::emr("sort", 4);
        let s = splits(4, 200);
        spec.shuffle = ShuffleImpl::SortMerge;
        let fast = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        spec.shuffle = ShuffleImpl::BTreeGrouping;
        let reference = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        assert_eq!(fast.output, reference.output);
        assert_eq!(fast.reduce_input_bytes, reference.reduce_input_bytes);
        assert_eq!(fast.trace, reference.trace);

        let mut spec = JobSpec::emr("count", 3);
        let s = splits(3, 500);
        spec.shuffle = ShuffleImpl::SortMerge;
        let fast = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        spec.shuffle = ShuffleImpl::BTreeGrouping;
        let reference = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        assert_eq!(fast.output, reference.output);
        assert_eq!(fast.reduce_input_bytes, reference.reduce_input_bytes);
        assert_eq!(fast.trace, reference.trace);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let s = splits(6, 300);
        let mut spec = JobSpec::emr("count", 6);
        let baseline = run_scale_out(&spec, &CountMap, &SumReduce, &s);
        let baseline_seq = run_sequential(&spec, &CountMap, &SumReduce, &s);
        for threads in [0, 2, 3, 8] {
            spec.engine.threads = threads;
            let par = run_scale_out(&spec, &CountMap, &SumReduce, &s);
            assert_eq!(par.output, baseline.output, "threads = {threads}");
            assert_eq!(par.trace, baseline.trace, "threads = {threads}");
            assert_eq!(par.reduce_input_bytes, baseline.reduce_input_bytes);
            let seq = run_sequential(&spec, &CountMap, &SumReduce, &s);
            assert_eq!(seq.output, baseline_seq.output, "threads = {threads}");
            assert_eq!(seq.trace, baseline_seq.trace, "threads = {threads}");
        }
    }

    #[test]
    fn traces_satisfy_structural_invariants() {
        let spec = JobSpec::emr("sort", 8);
        let s = splits(8, 100);
        run_scale_out(&spec, &IdMap, &IdReduce, &s)
            .trace
            .check_invariants()
            .unwrap();
        run_sequential(&spec, &IdMap, &IdReduce, &s)
            .trace
            .check_invariants()
            .unwrap();
    }

    #[test]
    fn disabled_faults_never_touch_the_trace() {
        let spec = JobSpec::emr("sort", 4);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100));
        assert!(run.trace.faults.is_none());
        assert_eq!(
            run.trace,
            run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 100)).trace
        );
    }

    #[test]
    fn fault_injection_is_deterministic_and_charged_into_overhead() {
        let baseline = run_scale_out(&JobSpec::emr("sort", 8), &IdMap, &IdReduce, &splits(8, 50));
        let mut spec = JobSpec::emr("sort", 8);
        spec.faults = ipso_cluster::FaultModel::flaky(0.3);
        spec.recovery.max_attempts = 8;
        let a = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        let b = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8, 50));
        assert_eq!(a.trace, b.trace);
        a.trace.check_invariants().unwrap();
        let summary = a.trace.faults.as_ref().expect("faults enabled");
        assert!(summary.retries > 0, "p = 0.3 over 8 tasks should retry");
        assert!(summary.wasted_total() > 0.0);
        // Wo now carries the wasted work (plus setup and barrier terms,
        // which the lengthened tasks reshape) and exceeds the fault-free
        // overhead.
        assert!(
            a.trace.scale_out_overhead >= summary.wasted_total(),
            "wasted recovery work must be charged into Wo"
        );
        assert!(a.trace.scale_out_overhead > baseline.trace.scale_out_overhead);
        // Outputs are the real computation and never depend on injected
        // faults — only timing does.
        assert_eq!(a.output, baseline.output);
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        let s = splits(6, 100);
        let mut spec = JobSpec::emr("sort", 6);
        spec.faults = ipso_cluster::FaultModel::flaky(0.25);
        spec.recovery.max_attempts = 8;
        spec.recovery.speculation = true;
        let baseline = run_scale_out(&spec, &IdMap, &IdReduce, &s);
        for threads in [0, 2, 5] {
            spec.engine.threads = threads;
            let run = run_scale_out(&spec, &IdMap, &IdReduce, &s);
            assert_eq!(run.trace, baseline.trace, "threads = {threads}");
            assert_eq!(run.output, baseline.output, "threads = {threads}");
        }
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        let mut spec = JobSpec::emr("sort", 2);
        spec.faults = ipso_cluster::FaultModel::flaky(1.0);
        let err = try_run_scale_out(&spec, &IdMap, &IdReduce, &splits(2, 10))
            .expect_err("certain failure must exhaust retries");
        assert!(matches!(
            err,
            ClusterError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "unrecoverable fault")]
    fn panicking_wrapper_reports_unrecoverable_faults() {
        let mut spec = JobSpec::emr("sort", 2);
        spec.faults = ipso_cluster::FaultModel::flaky(1.0);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &splits(2, 10));
    }

    #[test]
    fn fail_fast_budget_aborts_the_run() {
        let mut spec = JobSpec::emr("sort", 4);
        spec.faults = ipso_cluster::FaultModel::flaky(0.5);
        spec.recovery.max_attempts = 16;
        spec.recovery.max_wasted_fraction = 1e-6;
        let err = try_run_scale_out(&spec, &IdMap, &IdReduce, &splits(4, 10))
            .expect_err("tiny budget must trip fail-fast");
        assert!(matches!(err, ClusterError::WastedWorkExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_splits_than_slots_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &splits(3, 10));
    }

    #[test]
    #[should_panic(expected = "at least one split")]
    fn empty_splits_rejected() {
        let spec = JobSpec::emr("sort", 2);
        let _ = run_scale_out(&spec, &IdMap, &IdReduce, &[]);
    }
}

#[cfg(test)]
mod pipelined_shuffle_tests {
    use super::*;
    use crate::api::{Mapper, Reducer};

    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    fn splits(n: u32) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..64).map(|j| u64::from(i) * 64 + j).collect();
                InputSplit::new(records, 64 * 8, 128 * 1024 * 1024)
            })
            .collect()
    }

    #[test]
    fn pipelining_shrinks_the_visible_shuffle() {
        let mut plain = JobSpec::emr("sort", 16);
        plain.pipelined_shuffle = false;
        let mut piped = plain.clone();
        piped.pipelined_shuffle = true;
        let s = splits(16);
        let a = run_scale_out(&plain, &IdMap, &IdReduce, &s);
        let b = run_scale_out(&piped, &IdMap, &IdReduce, &s);
        assert!(
            b.trace.phases.shuffle < a.trace.phases.shuffle,
            "pipelined {} vs barrier {}",
            b.trace.phases.shuffle,
            a.trace.phases.shuffle
        );
        // Outputs are identical either way — pipelining is timing-only.
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn pipelined_shuffle_never_negative_and_bounded_by_total() {
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        assert!(run.trace.phases.shuffle >= 0.0);
        assert!(run.trace.phases.shuffle <= total + 1e-9);
    }

    #[test]
    fn queueing_effect_appears_when_transfers_outpace_the_reducer() {
        // Make the reducer's shuffle service very slow: transfers queue
        // and the remainder after the barrier approaches the full total.
        let mut spec = JobSpec::emr("sort", 8);
        spec.pipelined_shuffle = true;
        spec.cost.shuffle_rate = 1.0e6; // 1 MB/s reducer ingest
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits(8));
        let total = spec.cost.shuffle_time(run.reduce_input_bytes);
        // Nearly nothing could be hidden behind the (short) map phase.
        assert!(run.trace.phases.shuffle > 0.9 * total - run.trace.phases.map - 1.0);
    }
}
