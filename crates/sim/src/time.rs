//! Virtual simulation time.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
///
/// `SimTime` wraps a finite, non-negative `f64` and therefore implements
/// `Ord` — event queues require a total order.
///
/// # Example
///
/// ```
/// use ipso_sim::SimTime;
///
/// let t = SimTime::ZERO + 2.5;
/// assert_eq!(t.as_secs(), 2.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite — virtual time never
    /// runs backwards and a NaN clock would poison the event order.
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "simulation time must be finite and >= 0"
        );
        SimTime(secs)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Elapsed seconds since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> f64 {
        assert!(
            earlier.0 <= self.0,
            "duration_since requires an earlier time"
        );
        self.0 - earlier.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction guarantees finite values.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 1.5 + 2.5;
        assert_eq!(t.as_secs(), 4.0);
        assert_eq!(t - SimTime::from_secs(1.0), 3.0);
        assert_eq!(t.duration_since(SimTime::from_secs(1.0)), 3.0);
        let mut u = SimTime::ZERO;
        u += 2.0;
        assert_eq!(u.as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "earlier time")]
    fn duration_since_later_panics() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000s");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
