//! Seeded randomness for reproducible experiments.
//!
//! Every simulated experiment in the reproduction derives its randomness
//! from an explicit seed, so figure-regeneration binaries produce
//! identical CSV output run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derives a stable per-stream seed from a base seed and a stream index.
///
/// This is the seeding contract of the deterministic parallel runners:
/// grid point (or Monte-Carlo replication) `index` of a sweep with base
/// seed `base` always draws from `StdRng::seed_from_u64(stream_seed(base,
/// index))`, so the randomness a point consumes depends only on `(base,
/// index)` — never on execution order, thread count or the draws of
/// other points.
///
/// The mix is two rounds of the SplitMix64 finalizer over the xored
/// inputs, which decorrelates even adjacent `(base, index)` pairs.
///
/// # Example
///
/// ```
/// use ipso_sim::stream_seed;
///
/// assert_eq!(stream_seed(42, 7), stream_seed(42, 7));
/// assert_ne!(stream_seed(42, 7), stream_seed(42, 8));
/// assert_ne!(stream_seed(42, 7), stream_seed(43, 7));
/// ```
pub fn stream_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A seeded random-number generator with the distribution helpers the
/// cluster models need.
///
/// # Example
///
/// ```
/// use ipso_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per task, so the
    /// randomness consumed by one component does not shift another's.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh entropy drawn from this generator.
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)` (or exactly `lo` when `lo == hi`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or the bounds are non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds"
        );
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Weibull sample with the given shape and scale, via inversion:
    /// `scale · (−ln U)^(1/shape)`. Shape < 1 models infant-mortality
    /// failures (decreasing hazard), shape = 1 is exponential, shape > 1
    /// models wear-out (increasing hazard).
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 0` and `scale > 0`.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "weibull parameters must be positive"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Pareto sample with the given scale (minimum) and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `shape > 0`.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale > 0.0 && shape > 0.0,
            "pareto parameters must be positive"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        scale / u.powf(1.0 / shape)
    }

    /// A multiplicative jitter factor uniform in `[1 − spread, 1 + spread]`
    /// — the standard "±x%" noise applied to simulated task times.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ spread < 1`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0, 1)"
        );
        self.uniform(1.0 - spread, 1.0 + spread)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Access to the underlying RNG for generic `rand` APIs.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_stable_and_spread() {
        // Stability: a pure function of (base, index).
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        // Spread: all pairwise-distinct over a dense grid, and adjacent
        // indices land far apart in the output space.
        let mut seen = std::collections::HashSet::new();
        for base in 0..32u64 {
            for index in 0..32u64 {
                assert!(seen.insert(stream_seed(base, index)));
            }
        }
        // The derived RNG streams must be decorrelated too.
        let mut a = SimRng::seed_from(stream_seed(7, 0));
        let mut b = SimRng::seed_from(stream_seed(7, 1));
        let same = (0..64)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 10.0), b.uniform(0.0, 10.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.exponential(2.0), c2.exponential(2.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn pareto_respects_scale_minimum() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..1000 {
            let j = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
        // Zero spread is exactly 1.
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn uniform_degenerate_interval() {
        let mut rng = SimRng::seed_from(3);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn index_in_bounds() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
