//! Job traces and phase breakdowns produced by the engines.

use serde::{Deserialize, Serialize};

use crate::fault::FaultSummary;
use crate::scheduler::CentralScheduler;
use crate::straggler::StragglerModel;

/// Engine configuration recorded alongside a trace so a run can be
/// reproduced from its serialized form alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Scheduler cost parameters in effect.
    pub scheduler: CentralScheduler,
    /// Straggler model in effect.
    pub straggler: StragglerModel,
    /// The RNG seed of the run.
    pub seed: u64,
}

/// Wall-clock time per job phase, mirroring the paper's four-part
/// decomposition (with the reduce phase split into its shuffle / merge /
/// reduce stages).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Environment initialization and job scheduling (s).
    pub init: f64,
    /// Map / split phase (s) — in a scale-out run, the slowest task.
    pub map: f64,
    /// Shuffle stage: reducer pulls mapper output (s).
    pub shuffle: f64,
    /// Merge stage of the reduce phase (s).
    pub merge: f64,
    /// Final reduce stage (s).
    pub reduce: f64,
}

impl PhaseTimes {
    /// Total job wall-clock time.
    pub fn total(&self) -> f64 {
        self.init + self.map + self.shuffle + self.merge + self.reduce
    }

    /// The serial (post-map) portion: shuffle + merge + reduce.
    pub fn serial_portion(&self) -> f64 {
        self.shuffle + self.merge + self.reduce
    }
}

/// One executed task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task index within its stage.
    pub task_id: u32,
    /// Executor (worker slot) that ran it.
    pub executor: u32,
    /// Start time (s since job start).
    pub start: f64,
    /// End time (s since job start).
    pub end: f64,
}

impl TaskRecord {
    /// Task duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete job trace: phases, per-task records and bookkeeping the
/// analysis pipeline uses to separate `Wo(n)` from useful work.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobTrace {
    /// Job label (e.g. `"terasort"`).
    pub job: String,
    /// Scale-out degree of the run.
    pub n: u32,
    /// Phase breakdown.
    pub phases: PhaseTimes,
    /// Per-task records of the map/split phase.
    pub tasks: Vec<TaskRecord>,
    /// Scale-out-only overhead (dispatching, broadcast, queueing) — the
    /// measured `Wo(n)` (s).
    pub scale_out_overhead: f64,
    /// Engine configuration and seed of the run, when recorded. Defaults
    /// to `None` so traces serialized before this field existed still
    /// deserialize.
    #[serde(default)]
    pub config: Option<RunConfig>,
    /// Fault-injection and recovery accounting, recorded only when the
    /// run's fault model was enabled. Defaults to `None` so traces
    /// serialized before this field existed still deserialize — and so
    /// fault-free runs serialize `"faults":null`, keeping their traces
    /// stable as the fault layer evolves.
    #[serde(default)]
    pub faults: Option<FaultSummary>,
}

impl JobTrace {
    /// Total job wall-clock time including scale-out overhead.
    pub fn total_time(&self) -> f64 {
        self.phases.total() + self.scale_out_overhead
    }

    /// The slowest map task's duration, `max_i Tp,i(n)`.
    ///
    /// Non-finite durations (as can appear in hand-edited or corrupted
    /// trace files) are ignored rather than panicking; `None` is returned
    /// when no finite duration exists.
    pub fn max_task_duration(&self) -> Option<f64> {
        self.tasks
            .iter()
            .map(TaskRecord::duration)
            .filter(|d| d.is_finite())
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }

    /// Mean map-task duration.
    pub fn mean_task_duration(&self) -> Option<f64> {
        if self.tasks.is_empty() {
            return None;
        }
        Some(self.tasks.iter().map(TaskRecord::duration).sum::<f64>() / self.tasks.len() as f64)
    }

    /// Checks the structural invariants every engine-produced trace must
    /// satisfy — the contract the parallel execution paths are tested
    /// against:
    ///
    /// * all phase times and the scale-out overhead are finite and ≥ 0;
    /// * task records are in task-id order with finite `0 ≤ start ≤ end`;
    /// * when task records exist, the map phase equals the slowest task;
    /// * a recorded fault summary satisfies its own invariants, its events
    ///   reference existing tasks, and its wasted work is bounded by the
    ///   recorded scale-out overhead (the engines charge wasted work into
    ///   `Wo`).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let phases = [
            ("init", self.phases.init),
            ("map", self.phases.map),
            ("shuffle", self.phases.shuffle),
            ("merge", self.phases.merge),
            ("reduce", self.phases.reduce),
            ("scale_out_overhead", self.scale_out_overhead),
        ];
        for (name, value) in phases {
            if !value.is_finite() || value < 0.0 {
                return Err(format!("{name} time must be finite and >= 0, got {value}"));
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.task_id != i as u32 {
                return Err(format!("task {i} out of order (id {})", t.task_id));
            }
            if !t.start.is_finite() || !t.end.is_finite() || t.start < 0.0 || t.end < t.start {
                return Err(format!(
                    "task {i} has invalid interval [{}, {}]",
                    t.start, t.end
                ));
            }
        }
        if let Some(max) = self.max_task_duration() {
            if (self.phases.map - max).abs() > 1e-9 {
                return Err(format!(
                    "map phase {} disagrees with slowest task {max}",
                    self.phases.map
                ));
            }
        }
        if let Some(faults) = &self.faults {
            faults.check_invariants()?;
            if !self.tasks.is_empty() {
                for e in &faults.events {
                    if e.task as usize >= self.tasks.len() {
                        return Err(format!(
                            "fault event references task {} of {}",
                            e.task,
                            self.tasks.len()
                        ));
                    }
                }
            }
            if faults.wasted_total() > self.scale_out_overhead + 1e-9 {
                return Err(format!(
                    "wasted work {} exceeds recorded scale-out overhead {}",
                    faults.wasted_total(),
                    self.scale_out_overhead
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> JobTrace {
        JobTrace {
            job: "sort".into(),
            n: 4,
            phases: PhaseTimes {
                init: 1.0,
                map: 10.0,
                shuffle: 2.0,
                merge: 3.0,
                reduce: 1.0,
            },
            tasks: vec![
                TaskRecord {
                    task_id: 0,
                    executor: 0,
                    start: 1.0,
                    end: 9.0,
                },
                TaskRecord {
                    task_id: 1,
                    executor: 1,
                    start: 1.0,
                    end: 11.0,
                },
                TaskRecord {
                    task_id: 2,
                    executor: 2,
                    start: 1.0,
                    end: 10.0,
                },
            ],
            scale_out_overhead: 0.5,
            config: Some(RunConfig {
                scheduler: CentralScheduler::hadoop_like(),
                straggler: StragglerModel::mild(),
                seed: 42,
            }),
            faults: None,
        }
    }

    #[test]
    fn totals_add_up() {
        let t = trace();
        assert!((t.phases.total() - 17.0).abs() < 1e-12);
        assert!((t.phases.serial_portion() - 6.0).abs() < 1e-12);
        assert!((t.total_time() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn task_statistics() {
        let t = trace();
        assert_eq!(t.max_task_duration(), Some(10.0));
        assert!((t.mean_task_duration().unwrap() - 9.0).abs() < 1e-12);
        assert_eq!(t.tasks[1].duration(), 10.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = JobTrace::default();
        assert_eq!(t.max_task_duration(), None);
        assert_eq!(t.mean_task_duration(), None);
        assert_eq!(t.total_time(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: JobTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn max_task_duration_ignores_non_finite() {
        let mut t = trace();
        t.tasks.push(TaskRecord {
            task_id: 3,
            executor: 3,
            start: f64::NAN,
            end: 2.0,
        });
        t.tasks.push(TaskRecord {
            task_id: 4,
            executor: 0,
            start: 0.0,
            end: f64::INFINITY,
        });
        // Must not panic; the finite maximum survives.
        assert_eq!(t.max_task_duration(), Some(10.0));

        let all_nan = JobTrace {
            tasks: vec![TaskRecord {
                task_id: 0,
                executor: 0,
                start: f64::NAN,
                end: 1.0,
            }],
            ..JobTrace::default()
        };
        assert_eq!(all_nan.max_task_duration(), None);
    }

    #[test]
    fn old_traces_without_config_still_deserialize() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        // Strip the config field, emulating a pre-RunConfig trace file.
        let legacy = {
            let start = json.find(",\"config\":").expect("config serialized");
            let mut s = json[..start].to_string();
            s.push('}');
            s
        };
        let back: JobTrace = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.config, None);
        assert_eq!(back.phases, t.phases);
        assert_eq!(back.tasks, t.tasks);
    }

    #[test]
    fn invariants_hold_for_well_formed_traces() {
        assert_eq!(trace().check_invariants(), Ok(()));
        assert_eq!(JobTrace::default().check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_catch_corruption() {
        let mut t = trace();
        t.phases.shuffle = -1.0;
        assert!(t.check_invariants().is_err());

        let mut t = trace();
        t.tasks[1].end = t.tasks[1].start - 1.0;
        assert!(t.check_invariants().is_err());

        let mut t = trace();
        t.tasks.swap(0, 1);
        assert!(t.check_invariants().is_err());

        let mut t = trace();
        t.phases.map = 99.0; // disagrees with slowest task (10 s)
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn fault_summary_invariants_are_enforced() {
        use crate::fault::{FaultSummary, RecoveryEvent, RecoveryEventKind};
        let mut t = trace();
        t.scale_out_overhead = 5.0;
        t.faults = Some(FaultSummary {
            attempts: 4,
            retries: 1,
            retry_wasted_s: 2.0,
            events: vec![RecoveryEvent {
                task: 1,
                kind: RecoveryEventKind::AttemptFailed {
                    attempt: 1,
                    lost_s: 2.0,
                    backoff_s: 0.3,
                },
            }],
            ..FaultSummary::default()
        });
        assert_eq!(t.check_invariants(), Ok(()));
        let json = serde_json::to_string(&t).unwrap();
        let back: JobTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);

        // Wasted work beyond the recorded overhead is corruption: the
        // engines always charge it into Wo.
        t.faults.as_mut().unwrap().retry_wasted_s = 50.0;
        assert!(t.check_invariants().is_err());

        // As is an event pointing at a task that does not exist.
        let mut t2 = trace();
        t2.scale_out_overhead = 5.0;
        t2.faults = Some(FaultSummary {
            events: vec![RecoveryEvent {
                task: 99,
                kind: RecoveryEventKind::OutputLost {
                    node: 0,
                    recompute_s: 0.1,
                },
            }],
            crash_wasted_s: 0.1,
            outputs_lost: 1,
            node_crashes: 1,
            attempts: 4,
            ..FaultSummary::default()
        });
        assert!(t2.check_invariants().is_err());
    }

    #[test]
    fn config_survives_roundtrip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: JobTrace = serde_json::from_str(&json).unwrap();
        let cfg = back.config.expect("config present");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scheduler, CentralScheduler::hadoop_like());
        assert_eq!(cfg.straggler, StragglerModel::mild());
    }
}
