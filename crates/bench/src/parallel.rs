//! Deterministic parallel sweep/replication runner.
//!
//! Every figure and ablation of the reproduction sweeps an embarrassingly
//! parallel grid — (workload, n), (app, load, m), (distribution,
//! replication) — one independent simulation per grid point. The
//! [`SweepRunner`] spreads those points across `std::thread::scope`
//! workers while keeping the output *byte-identical* to a sequential
//! run, whatever the thread count:
//!
//! * **Per-point seeding** — each point gets its own RNG seeded from the
//!   stable hash [`ipso_sim::stream_seed`]`(base_seed, point_index)`, so
//!   the randomness a point consumes never depends on execution order.
//! * **Index-ordered results** — workers pull points off a shared queue
//!   (work stealing, so one expensive `n = 200` point cannot serialize
//!   the sweep behind it) but results are collected by point index.
//! * **Observability capture** — each point runs under
//!   [`ipso_obs::capture`], and the per-point span/metric buffers are
//!   merged into the global recorder in point order after the joins, so
//!   `--trace-out` timelines survive parallelism unchanged.
//!
//! Binaries opt in via [`SweepRunner::from_env`], which understands the
//! shared `--jobs N` flag: `--jobs 1` reproduces today's sequential run
//! exactly, and any other value produces the same bytes faster.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default base seed for per-point RNG streams — distinct from the
/// engine seeds (42) so runner streams never collide with spec streams.
pub const DEFAULT_BASE_SEED: u64 = 0x0001_9500_2019; // "IPSO @ ICDCS 2019"

/// Everything a grid point may consume besides its input: its stable
/// index in the grid and its private RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct PointCtx {
    /// The point's index in the submitted grid, `0..len`.
    pub index: usize,
    /// Stable per-point seed: `stream_seed(base_seed, index)`.
    pub seed: u64,
}

impl PointCtx {
    /// The point's private, deterministic RNG.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// A deterministic parallel runner over sweep/replication grids.
///
/// # Example
///
/// ```
/// use ipso_bench::SweepRunner;
///
/// let runner = SweepRunner::new(4);
/// let squares = runner.map(vec![1u64, 2, 3, 4, 5], |_ctx, v| v * v);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, any thread count
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    jobs: usize,
    base_seed: u64,
}

impl SweepRunner {
    /// A runner with the given worker count; `0` means one worker per
    /// available hardware thread.
    pub fn new(jobs: usize) -> SweepRunner {
        SweepRunner::with_seed(jobs, DEFAULT_BASE_SEED)
    }

    /// A runner with an explicit base seed for per-point RNG streams.
    pub fn with_seed(jobs: usize, base_seed: u64) -> SweepRunner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            jobs
        };
        SweepRunner { jobs, base_seed }
    }

    /// Builds a runner from the process arguments: `--jobs N` or
    /// `--jobs=N` (default: one worker per hardware thread). This is the
    /// flag every experiment binary accepts; unknown arguments are left
    /// for other parsers (e.g. `--trace-out`).
    ///
    /// # Panics
    ///
    /// Panics on a malformed `--jobs` value — experiment binaries want
    /// loud failures.
    pub fn from_env() -> SweepRunner {
        SweepRunner::new(jobs_from_args(std::env::args().skip(1)))
    }

    /// The worker count this runner will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item of the grid, in parallel, returning the
    /// results in input order.
    ///
    /// The determinism contract: as long as `f(ctx, item)` depends only
    /// on its arguments (plus the global observability recorder, which
    /// is captured per point and merged in index order), the returned
    /// vector and the recorder state are identical for every `jobs`
    /// value, including `jobs = 1`.
    ///
    /// # Panics
    ///
    /// A panic inside `f` aborts the whole sweep and propagates.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(PointCtx, T) -> R + Sync,
    {
        let total = items.len();
        let workers = self.jobs.min(total).max(1);

        // One slot per point: the input moves out as a worker claims it,
        // the result (plus its captured observability records) moves in.
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let outputs: Vec<Mutex<Option<(R, ipso_obs::LocalRecords)>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        let run_point = |index: usize| {
            let item = inputs[index]
                .lock()
                .expect("input slot poisoned")
                .take()
                .expect("point claimed twice");
            let ctx = PointCtx {
                index,
                seed: ipso_sim::stream_seed(self.base_seed, index as u64),
            };
            let (result, records) = ipso_obs::capture(|| f(ctx, item));
            *outputs[index].lock().expect("output slot poisoned") = Some((result, records));
        };

        if workers == 1 {
            for index in 0..total {
                run_point(index);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= total {
                            break;
                        }
                        run_point(index);
                    });
                }
            });
        }

        // Merge observability buffers and collect results in point order.
        outputs
            .into_iter()
            .map(|slot| {
                let (result, records) = slot
                    .into_inner()
                    .expect("output slot poisoned")
                    .expect("point not executed");
                ipso_obs::merge(records);
                result
            })
            .collect()
    }

    /// Runs a set of independent closures ("one task per grid point") in
    /// parallel, returning their results in submission order. The
    /// heterogeneous-grid convenience over [`SweepRunner::map`].
    pub fn run<R: Send>(&self, tasks: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
        self.map(tasks, |_ctx, task| task())
    }
}

/// Parses `--jobs N` / `--jobs=N` from an argument list; `0` (the
/// default when the flag is absent) means one worker per hardware
/// thread.
///
/// # Panics
///
/// Panics on a malformed or missing value.
pub fn jobs_from_args(args: impl IntoIterator<Item = String>) -> usize {
    let args: Vec<String> = args.into_iter().collect();
    let mut jobs = 0usize;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--jobs" {
            i += 1;
            Some(
                args.get(i)
                    .unwrap_or_else(|| panic!("--jobs needs a value"))
                    .as_str(),
            )
        } else {
            args[i].strip_prefix("--jobs=")
        };
        if let Some(value) = value {
            jobs = value
                .parse()
                .unwrap_or_else(|e| panic!("invalid --jobs value {value:?}: {e}"));
        }
        i += 1;
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_come_back_in_input_order() {
        let runner = SweepRunner::new(8);
        // Heavier work at the front so completion order differs from
        // input order under any real scheduler.
        let items: Vec<u64> = (0..64).rev().collect();
        let out = runner.map(items.clone(), |_ctx, v| {
            std::hint::black_box((0..v * 1000).sum::<u64>());
            v * 2
        });
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn per_point_rng_is_independent_of_jobs() {
        let draw = |jobs: usize| -> Vec<f64> {
            SweepRunner::new(jobs).map(vec![(); 32], |ctx, ()| ctx.rng().gen_range(0.0..1.0))
        };
        let sequential = draw(1);
        for jobs in [2, 3, 8] {
            assert_eq!(draw(jobs), sequential, "jobs = {jobs}");
        }
        // And the draws are genuinely per-point distinct.
        let mut unique = sequential.clone();
        unique.sort_by(f64::total_cmp);
        unique.dedup();
        assert_eq!(unique.len(), sequential.len());
    }

    #[test]
    fn heterogeneous_tasks_run_in_order() {
        let runner = SweepRunner::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> String + Send>> = (0..10)
            .map(|i| Box::new(move || format!("task-{i}")) as Box<dyn FnOnce() -> String + Send>)
            .collect();
        let out = runner.run(tasks);
        assert_eq!(out[0], "task-0");
        assert_eq!(out[9], "task-9");
    }

    #[test]
    fn zero_jobs_resolves_to_hardware_threads() {
        let runner = SweepRunner::new(0);
        assert!(runner.jobs() >= 1);
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from_args(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&[]), 0);
        assert_eq!(parse(&["--jobs", "4"]), 4);
        assert_eq!(parse(&["--jobs=2"]), 2);
        assert_eq!(parse(&["--trace-out", "x.json", "--jobs", "3"]), 3);
        // Last flag wins, like most CLIs.
        assert_eq!(parse(&["--jobs=2", "--jobs=5"]), 5);
    }

    #[test]
    #[should_panic(expected = "invalid --jobs value")]
    fn malformed_jobs_flag_is_loud() {
        let _ = jobs_from_args(["--jobs".to_string(), "many".to_string()]);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = SweepRunner::new(4).map(Vec::<u32>::new(), |_ctx, v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn observability_merges_in_point_order_for_any_jobs() {
        let _guard = obs_test_lock();
        let collect = |jobs: usize| -> Vec<String> {
            ipso_obs::set_enabled(true);
            ipso_obs::reset();
            SweepRunner::new(jobs).map((0..16u32).collect(), |_ctx, i| {
                ipso_obs::record_span("t", &format!("point-{i}"), "bench", f64::from(i), 1.0);
                ipso_obs::counter_add("points", 1);
            });
            let names = ipso_obs::take_events()
                .into_iter()
                .map(|e| e.name)
                .collect();
            assert_eq!(ipso_obs::counter_value("points"), 16);
            ipso_obs::set_enabled(false);
            ipso_obs::reset();
            names
        };
        let sequential = collect(1);
        assert_eq!(sequential.len(), 16);
        assert_eq!(sequential[3], "point-3");
        assert_eq!(collect(4), sequential);
    }

    /// Serializes tests that toggle the global obs recorder.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
