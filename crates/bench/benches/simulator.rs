//! Criterion micro-benchmarks of the simulation substrate: event-queue
//! throughput, wave scheduling and the network/scheduler cost models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipso_cluster::{run_wave_schedule, CentralScheduler, ClusterSpec, NetworkModel};
use ipso_sim::{EventQueue, ServerPool, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.push(SimTime::from_secs(((i * 2_654_435_761) % 10_000) as f64), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_simulation_cascade(c: &mut Criterion) {
    c.bench_function("simulation_cascade_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.schedule_in(0.001, 10_000u32);
            sim.run(|sim, _, remaining| {
                if remaining > 0 {
                    sim.schedule_in(0.001, remaining - 1);
                }
            })
        })
    });
}

fn bench_wave_schedule(c: &mut Criterion) {
    let durations: Vec<f64> = (0..2048).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let sched = CentralScheduler::spark_like();
    c.bench_function("wave_schedule_2048_tasks_64_exec", |b| {
        b.iter(|| run_wave_schedule(black_box(&durations), 64, &sched))
    });
}

fn bench_server_pool(c: &mut Criterion) {
    c.bench_function("server_pool_4096_submits", |b| {
        b.iter(|| {
            let mut pool = ServerPool::new(32);
            for i in 0..4096 {
                pool.submit(SimTime::ZERO, 1.0 + (i % 5) as f64 * 0.2);
            }
            black_box(pool.makespan())
        })
    });
}

fn bench_network_model(c: &mut Criterion) {
    let net = NetworkModel::from_cluster(&ClusterSpec::emr(64));
    c.bench_function("broadcast_cost_eval", |b| {
        b.iter(|| net.broadcast_time(black_box(20 * 1024 * 1024), 64))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_simulation_cascade,
    bench_wave_schedule,
    bench_server_pool,
    bench_network_model
);
criterion_main!(benches);
