//! Nonlinear least squares via Levenberg–Marquardt.
//!
//! The paper fits workload curves such as `Wo(n) = β·n^γ` and
//! `E[max Tp,i(n)] = a/n + c` by "nonlinear regression"; this module
//! provides the generic solver. The model is supplied as a closure
//! `f(params, x) -> y`; the Jacobian is estimated with central finite
//! differences, which is accurate enough for the small, smooth models used
//! throughout the reproduction.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::matrix::Matrix;
use crate::FitError;

/// Options controlling the Levenberg–Marquardt iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonlinearOptions {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative reduction of the sum of
    /// squared residuals.
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative factor applied to λ on rejected / accepted steps.
    pub lambda_factor: f64,
    /// Relative step used for the finite-difference Jacobian.
    pub fd_step: f64,
}

impl Default for NonlinearOptions {
    fn default() -> Self {
        NonlinearOptions {
            max_iterations: 200,
            tolerance: 1e-12,
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            fd_step: 1e-6,
        }
    }
}

/// Result of a nonlinear least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct NonlinearFit {
    /// Fitted parameter vector.
    pub params: Vec<f64>,
    /// Goodness-of-fit statistics at the solution.
    pub gof: GoodnessOfFit,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Fits `y ≈ f(params, x)` by Levenberg–Marquardt starting from `initial`.
///
/// # Errors
///
/// Returns an error on invalid input, a singular (damped) normal system
/// that cannot be rescued by increasing λ, non-finite model output at the
/// initial guess, or failure to converge within the iteration budget.
///
/// # Example
///
/// ```
/// use ipso_fit::{levenberg_marquardt, NonlinearOptions};
///
/// # fn main() -> Result<(), ipso_fit::FitError> {
/// // Recover q(n) = 0.006 * n^2 from samples.
/// let x = [10.0, 30.0, 60.0, 90.0];
/// let y: Vec<f64> = x.iter().map(|n| 0.006 * n * n).collect();
/// let fit = levenberg_marquardt(
///     |p, n| p[0] * n.powf(p[1]),
///     &x,
///     &y,
///     &[0.01, 1.5],
///     &NonlinearOptions::default(),
/// )?;
/// assert!((fit.params[1] - 2.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn levenberg_marquardt<F>(
    model: F,
    x: &[f64],
    y: &[f64],
    initial: &[f64],
    options: &NonlinearOptions,
) -> Result<NonlinearFit, FitError>
where
    F: Fn(&[f64], f64) -> f64,
{
    let p = initial.len();
    if p == 0 {
        return Err(FitError::TooFewPoints {
            points: 0,
            required: 1,
        });
    }
    validate_xy(x, y, p)?;
    if initial.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }

    let residuals = |params: &[f64]| -> Result<Vec<f64>, FitError> {
        let mut r = Vec::with_capacity(x.len());
        for (&xi, &yi) in x.iter().zip(y) {
            let f = model(params, xi);
            if !f.is_finite() {
                return Err(FitError::NonFinite);
            }
            r.push(yi - f);
        }
        Ok(r)
    };
    let ssr = |r: &[f64]| r.iter().map(|v| v * v).sum::<f64>();

    let mut params = initial.to_vec();
    let mut r = residuals(&params)?;
    let mut cost = ssr(&r);
    let mut lambda = options.initial_lambda;
    let mut iterations = 0;

    while iterations < options.max_iterations {
        iterations += 1;

        // Numeric Jacobian of the *model* (not the residual): J[i][j] =
        // ∂f(params, x_i)/∂params_j via central differences.
        let mut jac = Matrix::zeros(x.len(), p);
        for j in 0..p {
            let h = options.fd_step * params[j].abs().max(1e-4);
            let mut plus = params.clone();
            let mut minus = params.clone();
            plus[j] += h;
            minus[j] -= h;
            for (i, &xi) in x.iter().enumerate() {
                let d = (model(&plus, xi) - model(&minus, xi)) / (2.0 * h);
                if !d.is_finite() {
                    return Err(FitError::NonFinite);
                }
                jac.set(i, j, d);
            }
        }

        // Normal equations: (JᵀJ + λ·diag) δ = Jᵀ r.
        let jt = jac.transpose();
        let jtj = jt.mul(&jac);
        let jtr = jt.mul(&Matrix::column(&r));

        let mut accepted = false;
        for _ in 0..24 {
            let mut damped = jtj.clone();
            damped.add_diagonal(lambda);
            let delta = match damped.solve(&jtr) {
                Ok(d) => d.into_column_vec(),
                Err(_) => {
                    lambda *= options.lambda_factor;
                    continue;
                }
            };
            let candidate: Vec<f64> = params.iter().zip(&delta).map(|(pv, dv)| pv + dv).collect();
            match residuals(&candidate) {
                Ok(rc) => {
                    let new_cost = ssr(&rc);
                    if new_cost.is_finite() && new_cost < cost {
                        let improvement = (cost - new_cost) / cost.max(1e-300);
                        params = candidate;
                        r = rc;
                        cost = new_cost;
                        lambda = (lambda / options.lambda_factor).max(1e-12);
                        accepted = true;
                        if improvement < options.tolerance {
                            // Converged.
                            let predicted: Vec<f64> =
                                x.iter().map(|&xi| model(&params, xi)).collect();
                            let gof = GoodnessOfFit::from_predictions(y, &predicted, p);
                            return Ok(NonlinearFit {
                                params,
                                gof,
                                iterations,
                            });
                        }
                        break;
                    }
                    lambda *= options.lambda_factor;
                }
                Err(_) => lambda *= options.lambda_factor,
            }
        }
        if !accepted {
            // Stuck: either converged to machine precision or hopeless.
            if cost < 1e-20 || lambda > 1e12 {
                let predicted: Vec<f64> = x.iter().map(|&xi| model(&params, xi)).collect();
                let gof = GoodnessOfFit::from_predictions(y, &predicted, p);
                return Ok(NonlinearFit {
                    params,
                    gof,
                    iterations,
                });
            }
            return Err(FitError::NoConvergence { iterations });
        }
    }

    // Iteration budget exhausted but steps were still improving: report the
    // best point found rather than failing, mirroring common LM libraries.
    let predicted: Vec<f64> = x.iter().map(|&xi| model(&params, xi)).collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, p);
    Ok(NonlinearFit {
        params,
        gof,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exponential_decay() {
        let x: Vec<f64> = (0..20).map(|v| v as f64 * 0.25).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * (-0.7 * v).exp()).collect();
        let fit = levenberg_marquardt(
            |p, xv| p[0] * (p[1] * xv).exp(),
            &x,
            &y,
            &[1.0, -0.1],
            &NonlinearOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 3.0).abs() < 1e-6, "a = {}", fit.params[0]);
        assert!((fit.params[1] + 0.7).abs() < 1e-6, "k = {}", fit.params[1]);
    }

    #[test]
    fn recovers_power_law_with_offset() {
        // The Fig. 8 workload shape: W(n) = a/n + c.
        let x = [10.0, 30.0, 60.0, 90.0];
        let y: Vec<f64> = x.iter().map(|n| 1800.0 / n + 12.0).collect();
        let fit = levenberg_marquardt(
            |p, n| p[0] / n + p[1],
            &x,
            &y,
            &[1000.0, 0.0],
            &NonlinearOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 1800.0).abs() < 1e-5);
        assert!((fit.params[1] - 12.0).abs() < 1e-6);
        assert!(fit.gof.r_squared > 1.0 - 1e-10);
    }

    #[test]
    fn linear_model_matches_ols() {
        let x: Vec<f64> = (1..=12).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.23 * v + 2.72).collect();
        let lm = levenberg_marquardt(
            |p, xv| p[0] * xv + p[1],
            &x,
            &y,
            &[1.0, 0.0],
            &NonlinearOptions::default(),
        )
        .unwrap();
        assert!((lm.params[0] - 0.23).abs() < 1e-8);
        assert!((lm.params[1] - 2.72).abs() < 1e-8);
    }

    #[test]
    fn rejects_non_finite_initial_guess() {
        let err = levenberg_marquardt(
            |p, xv| p[0] * xv,
            &[1.0, 2.0],
            &[1.0, 2.0],
            &[f64::NAN],
            &NonlinearOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::NonFinite);
    }

    #[test]
    fn rejects_empty_parameter_vector() {
        let err = levenberg_marquardt(
            |_, xv| xv,
            &[1.0, 2.0],
            &[1.0, 2.0],
            &[],
            &NonlinearOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FitError::TooFewPoints { .. }));
    }

    #[test]
    fn already_converged_start_returns_quickly() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let fit = levenberg_marquardt(
            |p, xv| p[0] * xv,
            &x,
            &y,
            &[2.0],
            &NonlinearOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_data_still_recovers_shape() {
        let x: Vec<f64> = (1..=30).map(|v| v as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * v.powf(1.8) * if i % 2 == 0 { 1.01 } else { 0.99 })
            .collect();
        let fit = levenberg_marquardt(
            |p, n| p[0] * n.powf(p[1]),
            &x,
            &y,
            &[1.0, 1.0],
            &NonlinearOptions::default(),
        )
        .unwrap();
        assert!(
            (fit.params[1] - 1.8).abs() < 0.02,
            "gamma = {}",
            fit.params[1]
        );
    }
}
