//! A deterministic event queue.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// that simultaneous events pop in FIFO order — essential for
/// reproducibility.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Example
///
/// ```
/// use ipso_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 'c');
        q.push(SimTime::from_secs(1.0), 'a');
        q.push(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
