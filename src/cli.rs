//! Implementation of the `ipso` command-line tool.
//!
//! The binary (`src/bin/ipso.rs`) is a thin shell around these functions
//! so the parsing and command logic stay unit-testable.
//!
//! ```text
//! ipso classify  --eta 0.9 --alpha 2.8 --delta 0 [--beta B --gamma G] [--fixed-size]
//! ipso diagnose  curve.csv [--fixed-size]          # CSV: n,speedup
//! ipso estimate  runs.csv
//! ipso predict   runs.csv --window 16 --at 64,128,200 [--confidence 0.9]
//! ipso provision runs.csv --window 16 --n-max 200 [--worker-cost 0.10 --master-cost 0.80]
//! ipso report    runs.csv --window 16 --n-max 200 [--fixed-size]
//! ipso trace     terasort --n 8 [--threads 1] [--scheduler fifo] --out run.trace.json
//! ipso metrics   terasort --n 8 [--threads 1] [--scheduler fifo]
//! ```
//!
//! `runs.csv` columns: `n,seq_parallel,seq_serial,par_map,par_serial,par_overhead`
//! (the paper's run decomposition, seconds).

use std::collections::HashMap;
use std::fmt::Write as _;

use ipso::confidence::{bootstrap_predictions, BootstrapOptions};
use ipso::estimate::estimate_factors;
use ipso::predict::ScalingPredictor;
use ipso::provision::{CostModel, Provisioner};
use ipso::report::{analyze, ReportOptions};
use ipso::taxonomy::{classify, WorkloadType};
use ipso::{AsymptoticParams, Diagnostician, RunMeasurement, SpeedupCurve};

/// A CLI failure: message for stderr, non-zero exit.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ipso::ModelError> for CliError {
    fn from(e: ipso::ModelError) -> Self {
        CliError(e.to_string())
    }
}

/// Parsed command line: positional arguments and `--flag [value]` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// Flags; boolean flags map to an empty string.
    pub flags: HashMap<String, String>,
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Rejects flags without names.
pub fn parse_args(raw: &[String]) -> Result<Args, CliError> {
    let mut args = Args::default();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(name) = a.strip_prefix("--") {
            if name.is_empty() {
                return Err(CliError("empty flag name".into()));
            }
            // A flag consumes the next token as its value unless that
            // token is itself a flag (or absent): boolean flag.
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                args.flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                args.flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            args.positional.push(a.clone());
            i += 1;
        }
    }
    Ok(args)
}

impl Args {
    /// A required numeric flag.
    ///
    /// # Errors
    ///
    /// Missing or non-numeric flag.
    pub fn require_f64(&self, name: &str) -> Result<f64, CliError> {
        self.flags
            .get(name)
            .ok_or_else(|| CliError(format!("missing required flag --{name}")))?
            .parse()
            .map_err(|_| CliError(format!("flag --{name} must be a number")))
    }

    /// An optional numeric flag with default.
    ///
    /// # Errors
    ///
    /// Non-numeric value.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{name} must be a number"))),
        }
    }

    /// The workload type: `--fixed-size` selects fixed-size, default is
    /// fixed-time.
    pub fn workload(&self) -> WorkloadType {
        if self.flags.contains_key("fixed-size") {
            WorkloadType::FixedSize
        } else {
            WorkloadType::FixedTime
        }
    }
}

/// Parses `n,speedup` CSV content (header optional).
///
/// # Errors
///
/// Malformed rows or an unusable curve.
pub fn parse_curve_csv(content: &str) -> Result<SpeedupCurve, CliError> {
    let mut pairs = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || is_header(line) {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        if cols.len() < 2 {
            return Err(CliError(format!(
                "line {}: expected 'n,speedup'",
                lineno + 1
            )));
        }
        let n: u32 = cols[0]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad n {:?}", lineno + 1, cols[0])))?;
        let s: f64 = cols[1]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad speedup {:?}", lineno + 1, cols[1])))?;
        pairs.push((n, s));
    }
    if pairs.is_empty() {
        return Err(CliError("no data rows found".into()));
    }
    SpeedupCurve::from_pairs(pairs).map_err(CliError::from)
}

/// Parses the run-decomposition CSV
/// (`n,seq_parallel,seq_serial,par_map,par_serial,par_overhead`).
///
/// # Errors
///
/// Malformed rows.
pub fn parse_runs_csv(content: &str) -> Result<Vec<RunMeasurement>, CliError> {
    let mut runs = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || is_header(line) {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        if cols.len() < 6 {
            return Err(CliError(format!(
                "line {}: expected 6 columns (n,seq_parallel,seq_serial,par_map,par_serial,par_overhead)",
                lineno + 1
            )));
        }
        let parse = |idx: usize| -> Result<f64, CliError> {
            cols[idx]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad number {:?}", lineno + 1, cols[idx])))
        };
        let run = RunMeasurement {
            n: cols[0]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad n {:?}", lineno + 1, cols[0])))?,
            seq_parallel_work: parse(1)?,
            seq_serial_work: parse(2)?,
            par_map_time: parse(3)?,
            par_serial_time: parse(4)?,
            par_overhead: parse(5)?,
        };
        run.validate().map_err(CliError::from)?;
        runs.push(run);
    }
    if runs.is_empty() {
        return Err(CliError("no data rows found".into()));
    }
    Ok(runs)
}

fn is_header(line: &str) -> bool {
    line.split(',')
        .next()
        .is_some_and(|c| c.trim().parse::<f64>().is_err())
}

/// `ipso classify` — classify asymptotic parameters.
///
/// # Errors
///
/// Invalid flags or parameters.
pub fn cmd_classify(args: &Args) -> Result<String, CliError> {
    let params = AsymptoticParams::new(
        args.require_f64("eta")?,
        args.f64_or("alpha", 1.0)?,
        args.f64_or("delta", 0.0)?,
        args.f64_or("beta", 0.0)?,
        args.f64_or("gamma", 0.0)?,
    )?;
    let workload = args.workload();
    let (class, bound) = classify(&params, workload)?;
    let mut out = String::new();
    writeln!(out, "workload : {workload}").expect("string write");
    writeln!(out, "class    : {class}").expect("string write");
    match bound {
        Some(b) => {
            if b == 0.0 {
                writeln!(out, "bound    : peaks then decays towards 0").expect("string write")
            } else {
                writeln!(out, "bound    : {b:.3}").expect("string write")
            }
        }
        None => writeln!(out, "bound    : unbounded").expect("string write"),
    }
    for n in [4u32, 16, 64, 256] {
        writeln!(out, "S({n:>3})   : {:.3}", params.speedup(f64::from(n))?).expect("string write");
    }
    Ok(out)
}

/// `ipso diagnose` — run the six-step procedure on a speedup curve CSV.
///
/// # Errors
///
/// Parse or diagnosis failures.
pub fn cmd_diagnose(args: &Args, csv: &str) -> Result<String, CliError> {
    let curve = parse_curve_csv(csv)?;
    let report = Diagnostician::new().diagnose(&curve, args.workload())?;
    Ok(format!("{report}\n"))
}

/// `ipso predict` — fit on a window and predict requested degrees.
///
/// # Errors
///
/// Parse, fit or evaluation failures.
pub fn cmd_predict(args: &Args, csv: &str) -> Result<String, CliError> {
    let runs = parse_runs_csv(csv)?;
    let window = args.f64_or("window", 16.0)? as u32;
    let predictor = ScalingPredictor::fit(&runs, window)?;
    let est = predictor.estimates();

    let mut out = String::new();
    writeln!(
        out,
        "fitted on n <= {window} ({} runs)",
        est.external_samples.len()
    )
    .expect("string write");
    writeln!(out, "eta      : {:.4}", est.eta).expect("string write");
    writeln!(out, "EX shape : {:?}", est.external.shape).expect("string write");
    writeln!(
        out,
        "IN shape : {:?}  ({:?})",
        est.internal.shape, est.internal.factor
    )
    .expect("string write");
    writeln!(out, "q  shape : {:?}", est.induced.shape).expect("string write");

    let targets: Vec<u32> = match args.flags.get("at") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| CliError(format!("bad --at entry {t:?}")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![32, 64, 128, 200],
    };
    if let Some(conf) = args.flags.get("confidence") {
        let confidence: f64 = conf
            .parse()
            .map_err(|_| CliError("flag --confidence must be in (0, 1)".into()))?;
        let opts = BootstrapOptions {
            fit_window: window,
            confidence,
            ..BootstrapOptions::default()
        };
        let intervals = bootstrap_predictions(&runs, &targets, &opts)?;
        writeln!(
            out,
            "\npredictions ({:.0}% bootstrap intervals):",
            confidence * 100.0
        )
        .expect("string write");
        for i in intervals {
            writeln!(
                out,
                "  S({:>4}) = {:.3}   [{:.3}, {:.3}]",
                i.n, i.point, i.lower, i.upper
            )
            .expect("string write");
        }
    } else {
        writeln!(out, "\npredictions:").expect("string write");
        for n in targets {
            writeln!(out, "  S({n:>4}) = {:.3}", predictor.predict(f64::from(n))?)
                .expect("string write");
        }
    }
    Ok(out)
}

/// `ipso provision` — fit, then recommend cluster sizes under a price
/// model.
///
/// # Errors
///
/// Parse, fit or evaluation failures.
pub fn cmd_provision(args: &Args, csv: &str) -> Result<String, CliError> {
    let runs = parse_runs_csv(csv)?;
    let window = args.f64_or("window", 16.0)? as u32;
    let n_max = args.f64_or("n-max", 200.0)? as u32;
    let cost = CostModel::new(
        args.f64_or("worker-cost", 0.10)?,
        args.f64_or("master-cost", 0.80)?,
    )?;
    let predictor = ScalingPredictor::fit(&runs, window)?;
    let t1 = runs
        .iter()
        .min_by_key(|r| r.n)
        .expect("non-empty")
        .sequential_time();
    let provisioner = Provisioner::new(predictor.model().clone(), t1, cost)?;

    let fastest = provisioner.fastest(n_max)?;
    let efficient = provisioner.most_efficient(n_max)?;
    let knee = provisioner.knee(0.9, n_max)?;
    let mut out = String::new();
    writeln!(
        out,
        "fastest        : n = {:4}  S = {:8.2}  time = {:8.1}s  cost = ${:.4}",
        fastest.n, fastest.speedup, fastest.job_time, fastest.job_cost
    )
    .expect("string write");
    writeln!(
        out,
        "most efficient : n = {:4}  S = {:8.2}  time = {:8.1}s  cost = ${:.4}",
        efficient.n, efficient.speedup, efficient.job_time, efficient.job_cost
    )
    .expect("string write");
    writeln!(
        out,
        "90%-peak knee  : n = {:4}  S = {:8.2}  time = {:8.1}s  cost = ${:.4}",
        knee.n, knee.speedup, knee.job_time, knee.job_cost
    )
    .expect("string write");
    if let Some(deadline) = args.flags.get("deadline") {
        let d: f64 = deadline
            .parse()
            .map_err(|_| CliError("flag --deadline must be seconds".into()))?;
        match provisioner.cheapest_meeting_deadline(d, n_max)? {
            Some(p) => writeln!(
                out,
                "deadline {d:.0}s  : n = {:4}  S = {:8.2}  time = {:8.1}s  cost = ${:.4}",
                p.n, p.speedup, p.job_time, p.job_cost
            )
            .expect("string write"),
            None => writeln!(out, "deadline {d:.0}s  : unreachable below n = {n_max}")
                .expect("string write"),
        }
    }
    Ok(out)
}

/// `ipso estimate` — print the fitted factors for a runs CSV.
///
/// # Errors
///
/// Parse or estimation failures.
pub fn cmd_estimate(csv: &str) -> Result<String, CliError> {
    let runs = parse_runs_csv(csv)?;
    let est = estimate_factors(&runs)?;
    let params = est.to_asymptotic()?;
    let mut out = String::new();
    writeln!(out, "eta    : {:.4}", est.eta).expect("string write");
    writeln!(out, "EX(n)  : {:?}", est.external.factor).expect("string write");
    writeln!(out, "IN(n)  : {:?}", est.internal.factor).expect("string write");
    writeln!(out, "q(n)   : {:?}", est.induced.factor).expect("string write");
    writeln!(
        out,
        "asymptotic: alpha = {:.4}, delta = {:.4}, beta = {:.6}, gamma = {:.4}",
        params.alpha, params.delta, params.beta, params.gamma
    )
    .expect("string write");
    Ok(out)
}

/// `ipso report` — render the full Markdown analysis report.
///
/// # Errors
///
/// Parse or analysis failures.
pub fn cmd_report(args: &Args, csv: &str) -> Result<String, CliError> {
    let runs = parse_runs_csv(csv)?;
    let opts = ReportOptions {
        workload: args.workload(),
        fit_window: args.f64_or("window", 16.0)? as u32,
        n_max: args.f64_or("n-max", 200.0)? as u32,
        cost: CostModel::new(
            args.f64_or("worker-cost", 0.10)?,
            args.f64_or("master-cost", 0.80)?,
        )?,
    };
    analyze(&runs, &opts).map_err(CliError::from)
}

/// Workloads runnable by `ipso trace` / `ipso metrics`.
const TRACEABLE_WORKLOADS: &str = "terasort, sort, wordcount";

/// The task dispatch policy shared by `trace` and `metrics`, parsed
/// from `--scheduler <fifo|fair|locality>`. Defaults to FIFO, the
/// policy every committed artifact was produced under. Unknown names
/// surface the runtime's typed [`ipso_cluster::ClusterError::InvalidParameter`]
/// message instead of panicking.
fn parse_scheduler_flag(args: &Args) -> Result<ipso_cluster::SchedulerPolicy, CliError> {
    match args.flags.get("scheduler") {
        None => Ok(ipso_cluster::SchedulerPolicy::Fifo),
        Some(name) => name
            .parse::<ipso_cluster::SchedulerPolicy>()
            .map_err(|e| CliError(e.to_string())),
    }
}

/// Fault-injection settings shared by `trace` and `metrics`, parsed
/// from `--fail-prob`, `--node-crash-prob`, `--max-attempts`,
/// `--speculate` and `--fail-fast`. All default to off, which keeps the
/// run byte-identical to a fault-free build.
fn parse_fault_flags(
    args: &Args,
) -> Result<(ipso_cluster::FaultModel, ipso_cluster::RecoveryPolicy), CliError> {
    let fail_prob = args.f64_or("fail-prob", 0.0)?;
    let mut faults = if fail_prob > 0.0 {
        ipso_cluster::FaultModel::flaky(fail_prob)
    } else {
        ipso_cluster::FaultModel::none()
    };
    faults.node_crash_prob = args.f64_or("node-crash-prob", 0.0)?;
    let mut recovery = ipso_cluster::RecoveryPolicy::hadoop_like();
    recovery.max_attempts = args.f64_or("max-attempts", 4.0)? as u32;
    recovery.speculation = args.flags.contains_key("speculate");
    recovery.max_wasted_fraction = args.f64_or("fail-fast", 0.0)?;
    faults.validate().map_err(|e| CliError(e.to_string()))?;
    recovery.validate().map_err(|e| CliError(e.to_string()))?;
    Ok((faults, recovery))
}

/// Runs one named workload at scale-out degree `n` with the
/// observability layer enabled and returns its job trace; the global
/// span buffer and metrics registry hold the instrumentation afterwards.
/// `threads` sets the host-side map wave width (`0` = all hardware
/// threads, `1` = sequential); outputs and traces are identical for any
/// value. Unrecoverable faults (retries exhausted, fail-fast budget
/// blown) surface as errors — and a non-zero process exit — after
/// resetting the observability layer.
fn run_traced_workload(
    name: &str,
    n: u32,
    seed: u64,
    threads: usize,
    args: &Args,
) -> Result<ipso_cluster::JobTrace, CliError> {
    use ipso_mapreduce::try_run_scale_out;
    use ipso_workloads::{sort, terasort, wordcount};
    if n == 0 {
        return Err(CliError("flag --n must be at least 1".into()));
    }
    let (faults, recovery) = parse_fault_flags(args)?;
    let policy = parse_scheduler_flag(args)?;
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    let run = match name {
        "terasort" => {
            let mut spec = terasort::job_spec(n);
            spec.engine.threads = threads;
            spec.faults = faults;
            spec.recovery = recovery;
            spec.policy = policy;
            try_run_scale_out(
                &spec,
                &terasort::TeraSortMapper,
                &terasort::TeraSortReducer,
                &terasort::make_splits(n, seed),
            )
            .map(|run| run.trace)
        }
        "sort" => {
            let mut spec = sort::job_spec(n);
            spec.engine.threads = threads;
            spec.faults = faults;
            spec.recovery = recovery;
            spec.policy = policy;
            try_run_scale_out(
                &spec,
                &sort::SortMapper,
                &sort::SortReducer,
                &sort::make_splits(n, seed),
            )
            .map(|run| run.trace)
        }
        "wordcount" => {
            let mut spec = wordcount::job_spec(n);
            spec.engine.threads = threads;
            spec.faults = faults;
            spec.recovery = recovery;
            spec.policy = policy;
            try_run_scale_out(
                &spec,
                &wordcount::WordCountMapper::new(),
                &wordcount::WordCountReducer,
                &wordcount::make_splits(n, seed),
            )
            .map(|run| run.trace)
        }
        other => {
            ipso_obs::set_enabled(false);
            ipso_obs::reset();
            return Err(CliError(format!(
                "unknown workload {other:?} (expected one of: {TRACEABLE_WORKLOADS})"
            )));
        }
    };
    match run {
        Ok(trace) => Ok(trace),
        Err(e) => {
            ipso_obs::set_enabled(false);
            ipso_obs::reset();
            Err(CliError(format!("{name} run aborted: {e}")))
        }
    }
}

/// Assembles the overhead breakdown from the engines' overhead gauges,
/// with the trace's measured `Wo(n)` as the total.
fn breakdown_from_gauges(total: f64) -> ipso::OverheadBreakdown {
    ipso::overhead_breakdown(
        total,
        ipso_obs::gauge_value("overhead.scheduling_s"),
        ipso_obs::gauge_value("overhead.broadcast_s"),
        ipso_obs::gauge_value("overhead.shuffle_wait_s"),
        ipso_obs::gauge_value("overhead.straggler_tail_s"),
    )
}

/// `ipso trace` — run an instrumented workload and export a Chrome
/// trace-event (Perfetto) timeline.
///
/// # Errors
///
/// Unknown workload, bad flags, or an unwritable output path.
pub fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let workload = args
        .positional
        .first()
        .ok_or_else(|| CliError(format!("missing workload (one of: {TRACEABLE_WORKLOADS})")))?
        .clone();
    let n = args.f64_or("n", 8.0)? as u32;
    let seed = args.f64_or("seed", 3.0)? as u64;
    let threads = args.f64_or("threads", 1.0)? as usize;
    let out = args
        .flags
        .get("out")
        .filter(|p| !p.is_empty())
        .ok_or_else(|| CliError("missing required flag --out FILE".into()))?
        .clone();
    let trace = run_traced_workload(&workload, n, seed, threads, args)?;
    let events = ipso_obs::take_events();
    ipso_obs::set_enabled(false);
    ipso_obs::write_chrome_trace(std::path::Path::new(&out), &events)
        .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
    let mut text = String::new();
    writeln!(
        text,
        "{workload} @ n = {n}: {} trace events -> {out}",
        events.len()
    )
    .expect("string write");
    writeln!(
        text,
        "makespan phases (s): init {:.3}  map {:.3}  shuffle {:.3}  merge {:.3}  reduce {:.3}",
        trace.phases.init,
        trace.phases.map,
        trace.phases.shuffle,
        trace.phases.merge,
        trace.phases.reduce
    )
    .expect("string write");
    write!(text, "{}", breakdown_from_gauges(trace.scale_out_overhead)).expect("string write");
    writeln!(text, "open in https://ui.perfetto.dev or chrome://tracing").expect("string write");
    Ok(text)
}

/// `ipso metrics` — run an instrumented workload and print the metrics
/// registry snapshot plus the overhead breakdown.
///
/// # Errors
///
/// Unknown workload or bad flags.
pub fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    let workload = args
        .positional
        .first()
        .ok_or_else(|| CliError(format!("missing workload (one of: {TRACEABLE_WORKLOADS})")))?
        .clone();
    let n = args.f64_or("n", 8.0)? as u32;
    let seed = args.f64_or("seed", 3.0)? as u64;
    let threads = args.f64_or("threads", 1.0)? as usize;
    let trace = run_traced_workload(&workload, n, seed, threads, args)?;
    let snapshot = ipso_obs::snapshot();
    ipso_obs::set_enabled(false);
    let mut text = String::new();
    writeln!(text, "{workload} @ n = {n} (seed {seed})").expect("string write");
    write!(text, "{snapshot}").expect("string write");
    write!(text, "{}", breakdown_from_gauges(trace.scale_out_overhead)).expect("string write");
    Ok(text)
}

/// Usage text.
pub fn usage() -> &'static str {
    "ipso — scaling analysis for data-intensive applications (ICDCS 2019)

USAGE:
  ipso classify  --eta E [--alpha A --delta D --beta B --gamma G] [--fixed-size]
  ipso diagnose  <curve.csv> [--fixed-size]
  ipso estimate  <runs.csv>
  ipso predict   <runs.csv> [--window 16] [--at 64,128,200] [--confidence 0.9]
  ipso provision <runs.csv> [--window 16] [--n-max 200]
                 [--worker-cost 0.10] [--master-cost 0.80] [--deadline SECS]
  ipso report    <runs.csv> [--window 16] [--n-max 200] [--fixed-size]
  ipso trace     <workload> [--n 8] [--seed 3] [--threads 1]
                 [--scheduler fifo] [FAULTS] --out run.trace.json
  ipso metrics   <workload> [--n 8] [--seed 3] [--threads 1]
                 [--scheduler fifo] [FAULTS]

FILES:
  curve.csv : n,speedup
  runs.csv  : n,seq_parallel,seq_serial,par_map,par_serial,par_overhead

WORKLOADS (trace / metrics): terasort, sort, wordcount
  trace   writes a Chrome trace-event (Perfetto) timeline of the run
  metrics prints the metrics-registry snapshot and overhead breakdown
  --threads sets the host-side map wave width (0 = all hardware
  threads); outputs and traces are identical for any value
  --scheduler picks the runtime's dispatch order: fifo (default),
  fair (shortest-first) or locality (executor-affine)

FAULTS (trace / metrics; all off by default):
  --fail-prob P        per-attempt task failure probability in [0, 1)
  --node-crash-prob P  per-node crash probability in [0, 1]
  --max-attempts K     retry budget per task (default 4)
  --speculate          launch backup copies for stragglers
  --fail-fast F        abort (exit 1) when wasted work exceeds F x total
"
}

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Any command failure; the message is ready for stderr.
pub fn run(raw: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = raw.split_first() else {
        return Ok(usage().to_string());
    };
    let args = parse_args(rest)?;
    let read_file = |args: &Args| -> Result<String, CliError> {
        let path = args
            .positional
            .first()
            .ok_or_else(|| CliError("missing input CSV path".into()))?;
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))
    };
    match cmd.as_str() {
        "classify" => cmd_classify(&args),
        "diagnose" => {
            let csv = read_file(&args)?;
            cmd_diagnose(&args, &csv)
        }
        "estimate" => {
            let csv = read_file(&args)?;
            cmd_estimate(&csv)
        }
        "predict" => {
            let csv = read_file(&args)?;
            cmd_predict(&args, &csv)
        }
        "provision" => {
            let csv = read_file(&args)?;
            cmd_provision(&args, &csv)
        }
        "report" => {
            let csv = read_file(&args)?;
            cmd_report(&args, &csv)
        }
        "trace" => cmd_trace(&args),
        "metrics" => cmd_metrics(&args),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}
