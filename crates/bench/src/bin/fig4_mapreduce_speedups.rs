//! Fig. 4 — measured speedups for QMC, WordCount, Sort and TeraSort on
//! the simulated EMR cluster, against Gustafson's prediction.
//!
//! The paper's observations to reproduce: QMC matches Gustafson (type
//! It); WordCount is close to linear (It/IIt); Sort and TeraSort deviate
//! dramatically and saturate (IIIt,1), with Sort capped near 5 and
//! TeraSort near 3 including a dip near the memory-overflow point.

use ipso::classic::gustafson;
use ipso_bench::{SweepRunner, Table};
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::{qmc, sort, terasort, wordcount, PAPER_SWEEP};

/// A named MapReduce sweep constructor.
type Case = (&'static str, fn(&[u32]) -> ScalingSweep);

fn main() {
    let trace_out = ipso_bench::trace_out_from_env();
    let runner = SweepRunner::from_env();
    let case_fns: Vec<Case> = vec![
        ("qmc", qmc::sweep),
        ("wordcount", wordcount::sweep),
        ("sort", sort::sweep),
        ("terasort", terasort::sweep),
    ];

    // One grid point per (case, n): each runs its own sequential
    // reference plus scale-out simulation, independently of the rest.
    let grid: Vec<(usize, u32)> = (0..case_fns.len())
        .flat_map(|c| PAPER_SWEEP.iter().map(move |&n| (c, n)))
        .collect();
    let mut points = runner
        .map(grid, |_ctx, (c, n)| case_fns[c].1(&[n]).points)
        .into_iter();
    let cases: Vec<(&str, ScalingSweep)> = case_fns
        .iter()
        .map(|(name, _)| {
            let points = points.by_ref().take(PAPER_SWEEP.len()).flatten().collect();
            (*name, ScalingSweep { points })
        })
        .collect();

    for (name, sweep) in &cases {
        let measurements = sweep.measurements();
        let base = &measurements[0];
        let eta = base.seq_parallel_work / (base.seq_parallel_work + base.seq_serial_work);

        let mut table = Table::new(&format!("fig4_{name}"), &["n", "measured", "gustafson"]);
        for m in &measurements {
            let g = gustafson(eta, f64::from(m.n)).expect("valid eta and n");
            table.push(vec![f64::from(m.n), m.speedup(), g]);
        }
        table.emit();

        let last = measurements.last().expect("non-empty sweep");
        println!(
            "  {name}: eta = {eta:.3}, S({}) = {:.2} vs Gustafson {:.2}\n",
            last.n,
            last.speedup(),
            gustafson(eta, f64::from(last.n)).expect("valid"),
        );
    }
    trace_out.finish();
}
