//! Goodness-of-fit diagnostics shared by the fitting routines.

/// Summary statistics describing how well a fitted model explains the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodnessOfFit {
    /// Coefficient of determination, `1 − SS_res / SS_tot`.
    ///
    /// Equal to 1.0 for a perfect fit. May be negative when the model fits
    /// worse than a horizontal line through the mean.
    pub r_squared: f64,
    /// R² adjusted for the number of model parameters.
    pub adjusted_r_squared: f64,
    /// Root-mean-square error of the residuals.
    pub rmse: f64,
    /// Sum of squared residuals.
    pub ss_res: f64,
    /// Number of observations.
    pub n_points: usize,
    /// Number of free model parameters.
    pub n_params: usize,
}

impl GoodnessOfFit {
    /// Computes diagnostics from observations and model predictions.
    ///
    /// # Panics
    ///
    /// Panics if `observed` and `predicted` have different lengths or are
    /// empty.
    pub fn from_predictions(observed: &[f64], predicted: &[f64], n_params: usize) -> Self {
        assert_eq!(
            observed.len(),
            predicted.len(),
            "observed/predicted length mismatch"
        );
        assert!(
            !observed.is_empty(),
            "diagnostics require at least one point"
        );
        let n = observed.len();
        let mean = observed.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = observed.iter().map(|y| (y - mean).powi(2)).sum();
        let ss_res: f64 = observed
            .iter()
            .zip(predicted)
            .map(|(y, yhat)| (y - yhat).powi(2))
            .sum();
        // For constant data ss_tot is zero; a model that matches exactly has
        // R² = 1, otherwise 0 — the usual degenerate-case convention.
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res < 1e-24 {
            1.0
        } else {
            0.0
        };
        let adjusted_r_squared = if n > n_params + 1 {
            1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / (n as f64 - n_params as f64 - 1.0)
        } else {
            r_squared
        };
        let rmse = (ss_res / n as f64).sqrt();
        GoodnessOfFit {
            r_squared,
            adjusted_r_squared,
            rmse,
            ss_res,
            n_points: n,
            n_params,
        }
    }
}

/// Computes residuals `observed − predicted`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn residuals(observed: &[f64], predicted: &[f64]) -> Vec<f64> {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "observed/predicted length mismatch"
    );
    observed
        .iter()
        .zip(predicted)
        .map(|(y, yhat)| y - yhat)
        .collect()
}

/// Mean absolute percentage error (in percent). Points where the observation
/// is zero are skipped; returns `None` when every observation is zero.
pub fn mape(observed: &[f64], predicted: &[f64]) -> Option<f64> {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "observed/predicted length mismatch"
    );
    let mut sum = 0.0;
    let mut count = 0usize;
    for (y, yhat) in observed.iter().zip(predicted) {
        if *y != 0.0 {
            sum += ((y - yhat) / y).abs();
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(100.0 * sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_has_unit_r_squared() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let gof = GoodnessOfFit::from_predictions(&y, &y, 2);
        assert_eq!(gof.r_squared, 1.0);
        assert_eq!(gof.rmse, 0.0);
        assert_eq!(gof.ss_res, 0.0);
    }

    #[test]
    fn mean_model_has_zero_r_squared() {
        let y = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        let gof = GoodnessOfFit::from_predictions(&y, &mean, 1);
        assert!(gof.r_squared.abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_model_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [3.0, 2.0, 1.0];
        let gof = GoodnessOfFit::from_predictions(&y, &bad, 1);
        assert!(gof.r_squared < 0.0);
    }

    #[test]
    fn constant_data_perfectly_matched() {
        let y = [5.0, 5.0, 5.0];
        let gof = GoodnessOfFit::from_predictions(&y, &y, 1);
        assert_eq!(gof.r_squared, 1.0);
    }

    #[test]
    fn constant_data_mismatched_scores_zero() {
        let y = [5.0, 5.0, 5.0];
        let p = [4.0, 5.0, 6.0];
        let gof = GoodnessOfFit::from_predictions(&y, &p, 1);
        assert_eq!(gof.r_squared, 0.0);
    }

    #[test]
    fn residuals_are_signed() {
        let r = residuals(&[3.0, 1.0], &[1.0, 3.0]);
        assert_eq!(r, vec![2.0, -2.0]);
    }

    #[test]
    fn mape_skips_zero_observations() {
        let m = mape(&[0.0, 10.0], &[5.0, 9.0]).unwrap();
        assert!((m - 10.0).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn adjusted_r_squared_penalizes_parameters() {
        let y = [1.0, 2.1, 2.9, 4.2, 5.0, 5.9];
        let p = [1.1, 2.0, 3.0, 4.0, 5.1, 6.0];
        let g1 = GoodnessOfFit::from_predictions(&y, &p, 1);
        let g4 = GoodnessOfFit::from_predictions(&y, &p, 4);
        assert!(g4.adjusted_r_squared < g1.adjusted_r_squared);
    }
}
