//! End-to-end integration of the Spark engine: event-log-driven analysis
//! and the paper's two scaling dimensions for all four applications.

use ipso::measurement::SpeedupCurve;
use ipso::taxonomy::{FixedSizeClass, ScalingClass, WorkloadType};
use ipso::Diagnostician;
use ipso_spark::{parse_event_log, run_job, sweep_fixed_size, sweep_fixed_time, SparkJobSpec};
use ipso_workloads::{bayes, nweight, random_forest, svm};

type JobFn = fn(u32, u32) -> SparkJobSpec;

const APPS: [(&str, JobFn); 4] = [
    ("bayes", bayes::job as JobFn),
    ("random_forest", random_forest::job as JobFn),
    ("svm", svm::job as JobFn),
    ("nweight", nweight::job as JobFn),
];

#[test]
fn event_logs_reconstruct_total_latency() {
    for (name, job) in APPS {
        let run = run_job(&job(32, 8));
        let (stages, duration) = parse_event_log(&run.log).unwrap();
        assert!(!stages.is_empty(), "{name} produced no stages");
        let total = duration.unwrap();
        assert!(
            (total - run.total_time).abs() < 1e-9,
            "{name}: log total {total} vs engine {}",
            run.total_time
        );
        // Stage latencies plus pre-stage overhead (executor launch) cover
        // the whole application window.
        let stage_sum: f64 = stages.iter().map(|s| s.latency).sum();
        assert!(stage_sum <= total + 1e-9, "{name}: stages exceed total");
    }
}

#[test]
fn fixed_time_load_ordering_holds_for_all_apps() {
    // Paper Fig. 9: higher per-executor load scales better, up to the
    // memory limit.
    let ms = [8u32, 16, 32];
    for (name, job) in APPS {
        let l1 = sweep_fixed_time(job, 1, &ms);
        let l4 = sweep_fixed_time(job, 4, &ms);
        let l8 = sweep_fixed_time(job, 8, &ms);
        for i in 0..ms.len() {
            assert!(
                l4[i].speedup > l1[i].speedup,
                "{name} m = {}: N/m=4 ({:.2}) should beat N/m=1 ({:.2})",
                ms[i],
                l4[i].speedup,
                l1[i].speedup
            );
            assert!(
                l8[i].speedup < l4[i].speedup,
                "{name} m = {}: N/m=8 ({:.2}) should trail N/m=4 ({:.2}) via spill",
                ms[i],
                l8[i].speedup,
                l4[i].speedup
            );
        }
    }
}

#[test]
fn fixed_size_dimension_is_type_ivs_for_all_apps() {
    // Paper Fig. 10: for fixed N the speedup peaks and falls, and the
    // diagnostic procedure classifies it as IVs.
    let ms = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    for (name, job) in APPS {
        let pts = sweep_fixed_size(job, 64, &ms);
        let curve = SpeedupCurve::from_pairs(pts.iter().map(|p| (p.m, p.speedup))).unwrap();
        let report = Diagnostician::new()
            .diagnose(&curve, WorkloadType::FixedSize)
            .unwrap();
        assert_eq!(
            report.class,
            ScalingClass::FixedSize(FixedSizeClass::IVs),
            "{name}: {report}"
        );
        let (peak_m, _) = report.peak.expect("peaked curve");
        assert!(peak_m < 256, "{name}: peak at the edge");
    }
}

#[test]
fn overhead_fraction_grows_with_parallelism() {
    for (name, job) in APPS {
        let small = run_job(&job(64, 4));
        let large = run_job(&job(64, 64));
        assert!(
            large.overhead_fraction() > small.overhead_fraction(),
            "{name}: overhead fraction should grow: {:.3} -> {:.3}",
            small.overhead_fraction(),
            large.overhead_fraction()
        );
    }
}

#[test]
fn spark_runs_are_deterministic() {
    for (_, job) in APPS {
        assert_eq!(run_job(&job(16, 8)), run_job(&job(16, 8)));
    }
}
