//! The task-graph IR: the framework-agnostic description of a job that
//! the unified runtime ([`crate::runtime::execute`]) executes.
//!
//! The paper's central claim is that one model — `S(n) = (Wp+Ws) /
//! (E[max Tp,i] + Ws + Wo)` — explains MapReduce and Spark alike. The IR
//! is that claim turned into code: both engines *lower* their jobs into
//! a [`TaskGraph`] of stages (per-task nominal work, barrier edges,
//! lineage metadata) and a single executor owns straggler sampling,
//! wave scheduling, fault resolution and Ws/Wp/Wo attribution. Engine
//! crates keep only what is genuinely framework-specific: the real data
//! path (MapReduce) and the clock walk over shuffles and event logs
//! (Spark).
//!
//! A MapReduce job lowers to a single stage whose ideal reference is its
//! own slowest task (the barrier cannot beat the slowest mapper); a
//! Spark chain lowers to one stage per DAG stage with uniform ideal
//! tasks; a Dryad-style level DAG lowers to one stage per dependency
//! level with the members' tasks interleaved round-robin.

use crate::error::ClusterError;

/// How a stage's idealized reference makespan — the yardstick that
/// splits wall-clock time into useful work and scale-out overhead — is
/// computed.
#[derive(Debug, Clone, PartialEq)]
pub enum IdealReference {
    /// The slowest *effective* task: a barrier can never finish before
    /// its slowest member, so everything beyond it is overhead
    /// (MapReduce's `barrier_stretch`).
    SlowestTask,
    /// All tasks take `duration` under an idealized free-dispatch
    /// scheduler — the allocation-free closed form
    /// ([`crate::uniform_wave_makespan`]). Spark's per-stage yardstick:
    /// no noise, no first-wave cost, no dispatch serialization.
    Uniform {
        /// The uniform ideal task duration (s).
        duration: f64,
    },
    /// Explicit per-task ideal durations scheduled under the idealized
    /// scheduler — used when a stage interleaves heterogeneous tasks
    /// (level DAGs).
    Tasks(Vec<f64>),
}

/// Whether a node crash during this stage additionally replays parent
/// partitions from lineage (Spark's RDD recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineageMode {
    /// Lost outputs are re-executed in place; nothing upstream replays.
    None,
    /// A crashed node's resident parent partitions (tasks `t` of every
    /// parent stage with `t ≡ node (mod executors)`) are recomputed from
    /// lineage: the clock pays the slowest crashed node, the overhead
    /// share pays the total replayed work.
    RecomputeParents,
}

/// One stage of a [`TaskGraph`]: a set of tasks released together and
/// separated from dependents by a barrier (shuffle edges are modeled by
/// the engines after the barrier).
#[derive(Debug, Clone, PartialEq)]
pub struct StageNode {
    /// Stage name, used for spans and event logs.
    pub name: String,
    /// Per-task nominal work (s) — the part straggler noise multiplies.
    pub noisy_base: Vec<f64>,
    /// Per-task fixed additive cost (s), e.g. Spark's first-wave
    /// deserialization. Empty means all zeros; otherwise must be
    /// parallel to `noisy_base`.
    pub fixed_extra: Vec<f64>,
    /// Parent stage indices. Every dep must be smaller than this node's
    /// own index, so a well-formed graph is topologically ordered by
    /// construction.
    pub deps: Vec<usize>,
    /// Serialized driver work before the wave (s) — Spark's broadcast.
    /// Pure scale-out-induced time.
    pub pre_overhead: f64,
    /// The idealized reference for overhead attribution.
    pub ideal: IdealReference,
    /// Lineage behaviour on node crashes.
    pub lineage: LineageMode,
}

impl StageNode {
    /// Number of tasks in the stage.
    pub fn tasks(&self) -> usize {
        self.noisy_base.len()
    }

    /// The fixed additive cost of task `i`.
    pub fn fixed(&self, i: usize) -> f64 {
        self.fixed_extra.get(i).copied().unwrap_or(0.0)
    }

    /// The no-noise nominal duration of task `i`: `noisy_base + fixed`.
    pub fn nominal(&self, i: usize) -> f64 {
        self.noisy_base[i] + self.fixed(i)
    }
}

/// A job lowered to the runtime's IR: stages in topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    /// Job name.
    pub job: String,
    /// Stages in topological (execution) order.
    pub stages: Vec<StageNode>,
    /// One-time scale-out-only setup cost (s): MapReduce's extra job
    /// setup versus the sequential environment, Spark's serialized
    /// executor launch.
    pub setup_overhead: f64,
    /// Whether the executor should also compute each stage's
    /// no-straggler reference schedule (only when observability is on) —
    /// used to split overhead into straggler-tail and scheduling shares.
    pub no_straggler_reference: bool,
}

impl TaskGraph {
    /// Validates the graph: topologically-ordered acyclic deps, at least
    /// one task per stage, finite non-negative durations and consistent
    /// `fixed_extra` lengths.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let invalid = |message: String| ClusterError::InvalidParameter {
            what: "task graph",
            message,
        };
        if !self.setup_overhead.is_finite() || self.setup_overhead < 0.0 {
            return Err(invalid("setup_overhead must be finite and >= 0".into()));
        }
        for (k, stage) in self.stages.iter().enumerate() {
            if stage.noisy_base.is_empty() {
                return Err(invalid(format!("stage {k} ({}) has no tasks", stage.name)));
            }
            if !stage.fixed_extra.is_empty() && stage.fixed_extra.len() != stage.noisy_base.len() {
                return Err(invalid(format!(
                    "stage {k} ({}): fixed_extra length {} != task count {}",
                    stage.name,
                    stage.fixed_extra.len(),
                    stage.noisy_base.len()
                )));
            }
            for (which, values) in [
                ("noisy_base", &stage.noisy_base),
                ("fixed_extra", &stage.fixed_extra),
            ] {
                if values.iter().any(|d| !d.is_finite() || *d < 0.0) {
                    return Err(invalid(format!(
                        "stage {k} ({}): {which} must be finite and >= 0",
                        stage.name
                    )));
                }
            }
            if !stage.pre_overhead.is_finite() || stage.pre_overhead < 0.0 {
                return Err(invalid(format!(
                    "stage {k} ({}): pre_overhead must be finite and >= 0",
                    stage.name
                )));
            }
            for &dep in &stage.deps {
                if dep >= k {
                    return Err(invalid(format!(
                        "stage {k} ({}) depends on stage {dep}: deps must point at \
                         earlier stages (topological order)",
                        stage.name
                    )));
                }
            }
            if let IdealReference::Tasks(ideal) = &stage.ideal {
                if ideal.len() != stage.noisy_base.len() {
                    return Err(invalid(format!(
                        "stage {k} ({}): ideal task count {} != task count {}",
                        stage.name,
                        ideal.len(),
                        stage.noisy_base.len()
                    )));
                }
                if ideal.iter().any(|d| !d.is_finite() || *d < 0.0) {
                    return Err(invalid(format!(
                        "stage {k} ({}): ideal durations must be finite and >= 0",
                        stage.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total task count across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(StageNode::tasks).sum()
    }

    /// True when the dep relation is acyclic and topologically listed —
    /// implied by [`TaskGraph::validate`], exposed for property tests.
    pub fn is_topologically_ordered(&self) -> bool {
        self.stages
            .iter()
            .enumerate()
            .all(|(k, s)| s.deps.iter().all(|&d| d < k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, tasks: usize) -> StageNode {
        StageNode {
            name: name.into(),
            noisy_base: vec![1.0; tasks],
            fixed_extra: Vec::new(),
            deps: Vec::new(),
            pre_overhead: 0.0,
            ideal: IdealReference::SlowestTask,
            lineage: LineageMode::None,
        }
    }

    fn graph(stages: Vec<StageNode>) -> TaskGraph {
        TaskGraph {
            job: "test".into(),
            stages,
            setup_overhead: 0.0,
            no_straggler_reference: false,
        }
    }

    #[test]
    fn valid_chain_passes() {
        let mut b = stage("b", 2);
        b.deps = vec![0];
        let g = graph(vec![stage("a", 4), b]);
        g.validate().unwrap();
        assert!(g.is_topologically_ordered());
        assert_eq!(g.total_tasks(), 6);
    }

    #[test]
    fn forward_dep_rejected() {
        let mut a = stage("a", 1);
        a.deps = vec![1];
        let g = graph(vec![a, stage("b", 1)]);
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InvalidParameter {
                what: "task graph",
                ..
            }
        ));
        assert!(!g.is_topologically_ordered());
    }

    #[test]
    fn self_dep_rejected() {
        let mut a = stage("a", 1);
        a.deps = vec![0];
        assert!(graph(vec![a]).validate().is_err());
    }

    #[test]
    fn empty_stage_rejected() {
        assert!(graph(vec![stage("a", 0)]).validate().is_err());
    }

    #[test]
    fn nonfinite_duration_rejected() {
        let mut a = stage("a", 2);
        a.noisy_base[1] = f64::NAN;
        assert!(graph(vec![a]).validate().is_err());
        let mut b = stage("b", 2);
        b.fixed_extra = vec![0.0, -1.0];
        assert!(graph(vec![b]).validate().is_err());
    }

    #[test]
    fn fixed_extra_length_mismatch_rejected() {
        let mut a = stage("a", 3);
        a.fixed_extra = vec![0.1; 2];
        assert!(graph(vec![a]).validate().is_err());
    }

    #[test]
    fn ideal_tasks_length_mismatch_rejected() {
        let mut a = stage("a", 3);
        a.ideal = IdealReference::Tasks(vec![1.0; 2]);
        assert!(graph(vec![a]).validate().is_err());
    }

    #[test]
    fn nominal_combines_base_and_fixed() {
        let mut a = stage("a", 2);
        a.fixed_extra = vec![0.5, 0.0];
        assert_eq!(a.nominal(0), 1.5);
        assert_eq!(a.nominal(1), 1.0);
        let b = stage("b", 1);
        assert_eq!(b.nominal(0), 1.0); // empty fixed_extra = zeros
    }
}
