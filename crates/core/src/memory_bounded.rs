//! Memory-bounded external scaling (Sun-Ni's `g(n)`).
//!
//! Sun-Ni's law generalizes the external scaling to `EX(n) = g(n)`, the
//! largest workload the aggregate memory of `n` nodes can hold. The paper
//! observes that for block-size-bounded data-intensive workloads
//! `g(n) ≈ n` with high precision, making Sun-Ni coincide with Gustafson
//! (Fig. 6, "memory bounded … EX(n) closely follows fixed-time").
//! This module derives `g(n)` from first principles so that claim can be
//! *checked* instead of assumed.

use crate::error::check_scale_out;
use crate::factors::ScalingFactor;
use crate::ModelError;

/// Memory-bounded workload scaling derived from per-node capacity.
///
/// The working set at `n = 1` occupies `base_working_set` bytes; each
/// node can hold `node_capacity` bytes of it. How the workload can grow
/// with `n` then depends on how the computation's memory footprint scales
/// with the problem size, captured by `footprint_exponent` `k`: a problem
/// of size `x` needs `x^k` memory. `g(n)` solves
/// `footprint(g(n) · base) = n · capacity_used(1)`, i.e.
/// `g(n) = n^(1/k)`.
///
/// * `k = 1` — linear footprint (sorting, counting, scanning):
///   `g(n) = n`, the paper's case;
/// * `k = 2` — quadratic footprint (dense matrix per problem dimension):
///   `g(n) = √n`, the classic Sun-Ni example where memory-bounded scaling
///   sits strictly between Amdahl and Gustafson.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBoundedScaling {
    /// Memory footprint exponent `k ≥ 1` of the computation.
    pub footprint_exponent: f64,
}

impl MemoryBoundedScaling {
    /// Creates the scaling law for a footprint exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFactor`] unless `k ≥ 1` and finite.
    pub fn new(footprint_exponent: f64) -> Result<Self, ModelError> {
        if !footprint_exponent.is_finite() || footprint_exponent < 1.0 {
            return Err(ModelError::InvalidFactor {
                factor: "EX",
                reason: "memory footprint exponent must be >= 1",
            });
        }
        Ok(MemoryBoundedScaling { footprint_exponent })
    }

    /// The data-intensive case: records stream through bounded per-node
    /// blocks, footprint is linear, `g(n) = n`.
    pub fn block_bounded() -> Self {
        MemoryBoundedScaling {
            footprint_exponent: 1.0,
        }
    }

    /// `g(n) = n^(1/k)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for invalid `n`.
    pub fn g(&self, n: f64) -> Result<f64, ModelError> {
        check_scale_out(n)?;
        Ok(n.powf(1.0 / self.footprint_exponent))
    }

    /// The corresponding external scaling factor for an [`crate::IpsoModel`].
    pub fn external_factor(&self) -> ScalingFactor {
        ScalingFactor::power(1.0, 1.0 / self.footprint_exponent)
    }

    /// Maximum relative deviation of `g(n)` from the fixed-time scaling
    /// `n` over `1..=n_max` — the quantity behind the paper's
    /// "`g(n) ≈ n` with high precision" claim.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn deviation_from_fixed_time(&self, n_max: u32) -> Result<f64, ModelError> {
        let mut worst = 0.0f64;
        for n in 1..=n_max {
            let nf = f64::from(n);
            let g = self.g(nf)?;
            worst = worst.max((g - nf).abs() / nf);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;

    #[test]
    fn block_bounded_equals_fixed_time_exactly() {
        let m = MemoryBoundedScaling::block_bounded();
        for n in [1u32, 16, 200] {
            assert_eq!(m.g(f64::from(n)).unwrap(), f64::from(n));
        }
        assert_eq!(m.deviation_from_fixed_time(200).unwrap(), 0.0);
    }

    #[test]
    fn quadratic_footprint_gives_sqrt_scaling() {
        let m = MemoryBoundedScaling::new(2.0).unwrap();
        assert!((m.g(64.0).unwrap() - 8.0).abs() < 1e-12);
        // Deviation from fixed-time is large: Sun-Ni ≠ Gustafson here.
        assert!(m.deviation_from_fixed_time(64).unwrap() > 0.8);
    }

    #[test]
    fn sun_ni_with_derived_g_sits_between_amdahl_and_gustafson() {
        let m = MemoryBoundedScaling::new(2.0).unwrap();
        let eta = 0.9;
        for n in [4.0, 64.0, 1024.0] {
            let s = classic::sun_ni(eta, n, |v| m.g(v).unwrap()).unwrap();
            let a = classic::amdahl(eta, n).unwrap();
            let g = classic::gustafson(eta, n).unwrap();
            assert!(s >= a - 1e-9, "n = {n}: sun-ni {s} < amdahl {a}");
            assert!(s <= g + 1e-9, "n = {n}: sun-ni {s} > gustafson {g}");
        }
    }

    #[test]
    fn external_factor_plugs_into_the_model() {
        use crate::model::IpsoModel;
        let m = MemoryBoundedScaling::new(2.0).unwrap();
        let model = IpsoModel::builder(0.9)
            .external(m.external_factor())
            .build()
            .unwrap();
        let direct = classic::sun_ni(0.9, 64.0, |v| v.sqrt()).unwrap();
        assert!((model.speedup(64.0).unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(MemoryBoundedScaling::new(0.5).is_err());
        assert!(MemoryBoundedScaling::new(f64::NAN).is_err());
        assert!(MemoryBoundedScaling::new(1.0).is_ok());
        let m = MemoryBoundedScaling::block_bounded();
        assert!(m.g(0.0).is_err());
    }
}
