//! Spark-style JSON event logs.
//!
//! The paper measures its Spark cases by "tracing the timestamps for each
//! stage in the Spark Log files, which are available in the JSON format".
//! The engine emits the same kind of newline-delimited JSON events, and
//! [`parse_event_log`] recovers per-stage latencies from them — the
//! analysis pipeline deliberately goes *through* the log rather than
//! reading engine internals.

use serde::{Deserialize, Serialize};

/// One event in the application log, tagged like Spark listener events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "Event")]
pub enum SparkEvent {
    /// Application start.
    #[serde(rename = "SparkListenerApplicationStart")]
    ApplicationStart {
        /// Application name.
        #[serde(rename = "App Name")]
        app_name: String,
        /// Timestamp, seconds since job start.
        #[serde(rename = "Timestamp")]
        timestamp: f64,
    },
    /// Stage submitted by the driver.
    #[serde(rename = "SparkListenerStageSubmitted")]
    StageSubmitted {
        /// Stage id (index in the DAG).
        #[serde(rename = "Stage ID")]
        stage_id: u32,
        /// Stage name.
        #[serde(rename = "Stage Name")]
        stage_name: String,
        /// Number of tasks.
        #[serde(rename = "Number of Tasks")]
        num_tasks: u32,
        /// Submission timestamp.
        #[serde(rename = "Submission Time")]
        submission_time: f64,
    },
    /// Stage completed.
    #[serde(rename = "SparkListenerStageCompleted")]
    StageCompleted {
        /// Stage id.
        #[serde(rename = "Stage ID")]
        stage_id: u32,
        /// Stage name.
        #[serde(rename = "Stage Name")]
        stage_name: String,
        /// Number of tasks.
        #[serde(rename = "Number of Tasks")]
        num_tasks: u32,
        /// Submission timestamp.
        #[serde(rename = "Submission Time")]
        submission_time: f64,
        /// Completion timestamp.
        #[serde(rename = "Completion Time")]
        completion_time: f64,
    },
    /// Application end.
    #[serde(rename = "SparkListenerApplicationEnd")]
    ApplicationEnd {
        /// Timestamp.
        #[serde(rename = "Timestamp")]
        timestamp: f64,
    },
}

/// Serializes events as newline-delimited JSON, the Spark log format.
///
/// # Errors
///
/// Propagates JSON serialization errors.
pub fn write_event_log(events: &[SparkEvent]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e)?);
        out.push('\n');
    }
    Ok(out)
}

/// A stage latency extracted from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// Stage id.
    pub stage_id: u32,
    /// Stage name.
    pub stage_name: String,
    /// Number of tasks.
    pub num_tasks: u32,
    /// Wall-clock latency (completion − submission), seconds.
    pub latency: f64,
}

/// Parses a newline-delimited JSON event log, returning stage latencies in
/// stage order and the total application duration.
///
/// Unknown lines are rejected (the log is machine-generated).
///
/// # Errors
///
/// Returns JSON errors for malformed lines.
pub fn parse_event_log(log: &str) -> Result<(Vec<StageLatency>, Option<f64>), serde_json::Error> {
    let mut stages = Vec::new();
    let mut start = None;
    let mut end = None;
    for line in log.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<SparkEvent>(line)? {
            SparkEvent::StageCompleted {
                stage_id,
                stage_name,
                num_tasks,
                submission_time,
                completion_time,
            } => stages.push(StageLatency {
                stage_id,
                stage_name,
                num_tasks,
                latency: completion_time - submission_time,
            }),
            SparkEvent::ApplicationStart { timestamp, .. } => start = Some(timestamp),
            SparkEvent::ApplicationEnd { timestamp } => end = Some(timestamp),
            SparkEvent::StageSubmitted { .. } => {}
        }
    }
    stages.sort_by_key(|s| s.stage_id);
    let duration = match (start, end) {
        (Some(s), Some(e)) => Some(e - s),
        _ => None,
    };
    Ok((stages, duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SparkEvent> {
        vec![
            SparkEvent::ApplicationStart {
                app_name: "bayes".into(),
                timestamp: 0.0,
            },
            SparkEvent::StageSubmitted {
                stage_id: 0,
                stage_name: "train".into(),
                num_tasks: 8,
                submission_time: 0.5,
            },
            SparkEvent::StageCompleted {
                stage_id: 0,
                stage_name: "train".into(),
                num_tasks: 8,
                submission_time: 0.5,
                completion_time: 4.0,
            },
            SparkEvent::StageCompleted {
                stage_id: 1,
                stage_name: "aggregate".into(),
                num_tasks: 2,
                submission_time: 4.0,
                completion_time: 5.5,
            },
            SparkEvent::ApplicationEnd { timestamp: 6.0 },
        ]
    }

    #[test]
    fn log_roundtrip() {
        let log = write_event_log(&sample_events()).unwrap();
        assert_eq!(log.lines().count(), 5);
        let (stages, duration) = parse_event_log(&log).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage_name, "train");
        assert!((stages[0].latency - 3.5).abs() < 1e-12);
        assert!((stages[1].latency - 1.5).abs() < 1e-12);
        assert_eq!(duration, Some(6.0));
    }

    #[test]
    fn log_format_matches_spark_naming() {
        let log = write_event_log(&sample_events()).unwrap();
        assert!(log.contains("\"Event\":\"SparkListenerStageCompleted\""));
        assert!(log.contains("\"Stage ID\":0"));
        assert!(log.contains("\"Completion Time\":4.0"));
    }

    #[test]
    fn stages_sorted_by_id_even_if_log_is_shuffled() {
        let mut events = sample_events();
        events.swap(2, 3);
        let log = write_event_log(&events).unwrap();
        let (stages, _) = parse_event_log(&log).unwrap();
        assert_eq!(stages[0].stage_id, 0);
        assert_eq!(stages[1].stage_id, 1);
    }

    #[test]
    fn missing_end_yields_no_duration() {
        let events = &sample_events()[..4];
        let log = write_event_log(events).unwrap();
        let (_, duration) = parse_event_log(&log).unwrap();
        assert_eq!(duration, None);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse_event_log("{\"Event\":\"Bogus\"}\n").is_err());
        assert!(parse_event_log("not json\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let log = format!("\n{}\n\n", write_event_log(&sample_events()).unwrap());
        assert!(parse_event_log(&log).is_ok());
    }
}
