//! A Dryad-style two-branch join (exercises the general stage DAG).
//!
//! The paper names Dryad (\[3\]) alongside MapReduce and Spark as the
//! frameworks whose workloads IPSO targets. This workload joins two
//! independently prepared datasets — the canonical diamond DAG: two map
//! branches feed one join stage. The kernel ([`hash_join`]) really joins
//! generated tables; [`job_edges`] gives the DAG for
//! [`ipso_spark::run_dag`].

use std::collections::HashMap;

use ipso_spark::{SparkJobSpec, StageSpec};

/// A row of the fact table: `(key, measure)`.
pub type FactRow = (u64, f64);
/// A row of the dimension table: `(key, attribute)`.
pub type DimRow = (u64, u32);

/// Joined output row: `(key, measure, attribute)`.
pub type JoinedRow = (u64, f64, u32);

/// Hash join of a fact table against a dimension table (inner join on
/// the key; duplicate dimension keys keep the last attribute, as a
/// primary-key table would guarantee uniqueness anyway).
pub fn hash_join(facts: &[FactRow], dims: &[DimRow]) -> Vec<JoinedRow> {
    let lookup: HashMap<u64, u32> = dims.iter().copied().collect();
    let mut out: Vec<JoinedRow> = facts
        .iter()
        .filter_map(|&(k, v)| lookup.get(&k).map(|&a| (k, v, a)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    out
}

/// Generates a fact table of `rows` entries over `keys` distinct keys.
pub fn generate_facts(rows: usize, keys: u64, rng: &mut ipso_sim::SimRng) -> Vec<FactRow> {
    (0..rows)
        .map(|_| (rng.index(keys as usize) as u64, rng.uniform(0.0, 100.0)))
        .collect()
}

/// Generates a dimension table covering a key range with one attribute
/// per key.
pub fn generate_dims(keys: u64) -> Vec<DimRow> {
    (0..keys).map(|k| (k, (k % 7) as u32)).collect()
}

/// The diamond join job: `prepare-facts` and `prepare-dims` run
/// concurrently, `join` consumes both.
pub fn job(problem_size: u32, parallelism: u32) -> SparkJobSpec {
    SparkJobSpec::emr("join", problem_size, parallelism)
        .stage(
            StageSpec::new("prepare-facts", problem_size)
                .with_task_compute(1.2)
                .with_input_bytes(512 * 1024 * 1024)
                .with_shuffle_output(24 * 1024 * 1024),
        )
        .stage(
            StageSpec::new("prepare-dims", (problem_size / 4).max(1))
                .with_task_compute(0.6)
                .with_input_bytes(64 * 1024 * 1024)
                .with_shuffle_output(4 * 1024 * 1024),
        )
        .stage(
            StageSpec::new("join", problem_size)
                .with_task_compute(0.9)
                .with_shuffle_output(8 * 1024 * 1024),
        )
}

/// The DAG edges of [`job`]: both prepare stages feed the join.
pub fn job_edges() -> Vec<(usize, usize)> {
    vec![(0, 2), (1, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipso_sim::SimRng;
    use ipso_spark::{run_dag, run_job};

    #[test]
    fn join_matches_nested_loop_reference() {
        let mut rng = SimRng::seed_from(90);
        let facts = generate_facts(500, 40, &mut rng);
        let dims = generate_dims(40);
        let joined = hash_join(&facts, &dims);
        // Reference: nested loop.
        let mut expected: Vec<JoinedRow> = facts
            .iter()
            .flat_map(|&(k, v)| {
                dims.iter()
                    .filter(move |&&(dk, _)| dk == k)
                    .map(move |&(_, a)| (k, v, a))
            })
            .collect();
        expected.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(joined, expected);
    }

    #[test]
    fn unmatched_fact_keys_are_dropped() {
        let facts = vec![(0u64, 1.0), (99, 2.0)];
        let dims = vec![(0u64, 5)];
        let joined = hash_join(&facts, &dims);
        assert_eq!(joined, vec![(0, 1.0, 5)]);
    }

    #[test]
    fn every_fact_joins_when_dims_cover_the_keyspace() {
        let mut rng = SimRng::seed_from(91);
        let facts = generate_facts(300, 20, &mut rng);
        let joined = hash_join(&facts, &generate_dims(20));
        assert_eq!(joined.len(), facts.len());
    }

    #[test]
    fn dag_execution_beats_forced_chain() {
        let j = job(16, 8);
        let dag = run_dag(&j, &job_edges()).unwrap();
        let chain = run_job(&j); // stages forced sequential
        assert!(dag.total_time <= chain.total_time + 1e-9);
        // The dims branch is strictly shorter than the facts branch, so
        // running them concurrently must save real time, not just ties.
        assert!(
            dag.total_time < 0.99 * chain.total_time,
            "dag {} vs chain {}",
            dag.total_time,
            chain.total_time
        );
    }

    #[test]
    fn dag_event_log_shows_concurrent_prepares() {
        let run = run_dag(&job(8, 8), &job_edges()).unwrap();
        let (stages, _) = ipso_spark::parse_event_log(&run.log).unwrap();
        assert_eq!(stages.len(), 3);
        // The two prepare stages share a level; the join comes after.
        assert_eq!(stages[0].stage_name, "prepare-facts");
        assert_eq!(stages[1].stage_name, "prepare-dims");
    }
}
