//! Offline stand-in for the `serde_json` crate.
//!
//! Bridges the vendored `serde` crate's [`Content`] data model to JSON
//! text: [`to_string`] / [`to_string_pretty`] render a [`Serialize`]
//! value, [`from_str`] parses into a [`Deserialize`] value.
//!
//! Output matches upstream serde_json's conventions where tests depend
//! on them: compact form has no whitespace (`"key":0`), floats use
//! shortest-roundtrip formatting (`4.0`, not `4` or `4.000000`), and
//! non-finite floats are a serialization error.

use serde::{Content, ContentError, Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<ContentError> for Error {
    fn from(e: ContentError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON (no whitespace).
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ── writer ──────────────────────────────────────────────────────────────

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` on f64 is shortest-roundtrip and keeps a decimal
            // point on integral values (4.0), matching upstream output.
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parser ──────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {lit:?} at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b't') => self.expect_literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Content::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|()| Content::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character '{}' at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v) {
                        return Ok(Content::I64(-neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_has_no_spaces() {
        let c = Content::Map(vec![
            ("a".to_string(), Content::U64(1)),
            ("b".to_string(), Content::F64(4.0)),
        ]);
        assert_eq!(to_string(&c).unwrap(), r#"{"a":1,"b":4.0}"#);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"name":"x","vals":[1,-2,3.5],"flag":true,"none":null}"#;
        let c: Content = from_str(text).unwrap();
        assert_eq!(to_string(&c).unwrap(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Content>("{").is_err());
        assert!(from_str::<Content>("[1,]").is_err());
        assert!(from_str::<Content>("12 34").is_err());
        assert!(from_str::<Content>("").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nwith \"quotes\" and \\ backslash\ttab";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let c = Content::Map(vec![("a".to_string(), Content::Seq(vec![Content::U64(1)]))]);
        let pretty = to_string_pretty(&c).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Content = from_str(&pretty).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn large_integers_preserved() {
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
    }
}
