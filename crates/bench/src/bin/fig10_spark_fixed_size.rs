//! Fig. 10 — the Spark benchmarks along the fixed-size dimension
//! (`N` constant while scaling `m`).
//!
//! Paper finding to reproduce: for large fixed `N`, every application's
//! speedup peaks and then falls as `m` grows — the pathological IVs
//! behaviour caused by scale-out-induced overhead — in stark contrast to
//! the monotone IIIs curve Amdahl's law predicts.

use ipso_bench::{SweepRunner, Table};
use ipso_spark::sweep_fixed_size;
use ipso_workloads::{bayes, nweight, random_forest, svm};

/// A named Spark application constructor `(name, job(load, m))`.
type App = (&'static str, fn(u32, u32) -> ipso_spark::SparkJobSpec);

fn main() {
    let trace_out = ipso_bench::trace_out_from_env();
    let runner = SweepRunner::from_env();
    let ms: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256];
    let sizes: Vec<u32> = vec![32, 64, 128];
    let apps: Vec<App> = vec![
        ("bayes", bayes::job),
        ("random_forest", random_forest::job),
        ("svm", svm::job),
        ("nweight", nweight::job),
    ];

    // One grid point per (app, size, m), app-major then size-major so
    // each app's per-size series reassembles contiguously.
    let mut grid: Vec<(usize, u32, u32)> = Vec::new();
    for a in 0..apps.len() {
        for &s in &sizes {
            for &m in &ms {
                grid.push((a, s, m));
            }
        }
    }
    let mut points = runner
        .map(grid, |_ctx, (a, size, m)| {
            sweep_fixed_size(apps[a].1, size, &[m])
                .into_iter()
                .next()
                .expect("one point per grid cell")
        })
        .into_iter();

    for (name, _) in &apps {
        let sweeps: Vec<Vec<ipso_spark::SparkSweepPoint>> = sizes
            .iter()
            .map(|_| points.by_ref().take(ms.len()).collect())
            .collect();
        let mut table = Table::new(&format!("fig10_{name}"), &["m", "n32", "n64", "n128"]);
        for (i, &m) in ms.iter().enumerate() {
            table.push(vec![
                f64::from(m),
                sweeps[0][i].speedup,
                sweeps[1][i].speedup,
                sweeps[2][i].speedup,
            ]);
        }
        table.emit();

        for (s_idx, &n) in sizes.iter().enumerate() {
            let peak = sweeps[s_idx]
                .iter()
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                .expect("non-empty");
            let last = sweeps[s_idx].last().expect("non-empty");
            println!(
                "  {name} N = {n}: peak S({}) = {:.1}, S({}) = {:.1} — {}",
                peak.m,
                peak.speedup,
                last.m,
                last.speedup,
                if last.speedup < peak.speedup && peak.m < last.m {
                    "peaks and falls (IVs)"
                } else {
                    "monotone in the measured range"
                }
            );
        }
        println!();
    }
    trace_out.finish();
}
