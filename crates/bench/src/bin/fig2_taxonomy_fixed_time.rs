//! Fig. 2 — the four fixed-time scaling behaviours (It, IIt, IIIt,1,
//! IIIt,2, IVt) with their bounds.
//!
//! Regenerates one speedup series per representative parameter set and
//! prints the taxonomy classification and closed-form bound for each.

use ipso::taxonomy::{classify, WorkloadType};
use ipso::AsymptoticParams;
use ipso_bench::{SweepRunner, Table};

fn main() {
    let runner = SweepRunner::from_env();
    // Representative parameter sets (η, α, δ, β, γ) for each behaviour.
    let cases: Vec<(&str, AsymptoticParams)> = vec![
        (
            "It",
            AsymptoticParams::new(0.9, 1.0, 1.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "IIt",
            AsymptoticParams::new(0.9, 1.0, 0.5, 0.0, 0.0).expect("valid"),
        ),
        (
            "IIIt1",
            AsymptoticParams::new(0.8, 4.3, 0.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "IIIt2",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.05, 1.0).expect("valid"),
        ),
        (
            "IVt",
            AsymptoticParams::new(0.9, 1.0, 1.0, 0.001, 2.0).expect("valid"),
        ),
    ];

    let ns: Vec<u32> = (0..=50).map(|i| 1 + i * 10).collect();
    let mut columns = vec!["n".to_string()];
    columns.extend(cases.iter().map(|(name, _)| name.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("fig2_taxonomy_fixed_time", &col_refs);

    // One grid point per n-row; every case is evaluated at that n.
    let rows = runner.map(ns, |_ctx, n| {
        let mut row = vec![f64::from(n)];
        for (_, p) in &cases {
            row.push(p.speedup(f64::from(n)).expect("evaluable"));
        }
        row
    });
    for row in rows {
        table.push(row);
    }
    table.emit();

    println!("classification and bounds (paper Fig. 2 annotations):");
    for (name, p) in &cases {
        let (class, bound) = classify(p, WorkloadType::FixedTime).expect("classifiable");
        match bound {
            Some(b) => println!("  {name:7} -> {class} bound = {b:.2}"),
            None => println!("  {name:7} -> {class} unbounded"),
        }
    }
}
