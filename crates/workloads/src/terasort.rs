//! TeraSort (paper Figs. 4d, 5, 6, 7).
//!
//! Like [`crate::sort`], every record passes through the single reducer,
//! so the serial portion scales in proportion to the external scaling.
//! Additionally the reducer's input (128 MB × n) outgrows its ~2 GB of
//! preconfigured memory near `n ≈ 15`, and the internal scaling factor
//! bursts by over 30% with its slope rising from ≈ 0.15 to ≈ 0.25 — the
//! step-wise `IN(n)` of Fig. 5, visible as a dip in the measured speedup
//! around the same `n`.

use ipso_mapreduce::{InputSplit, JobCostModel, JobSpec, Mapper, Reducer, ScalingSweep};
use ipso_sim::SimRng;

use crate::datagen::{teragen_records, TeraRecord, TERA_RECORD_BYTES};

/// Nominal shard per map task.
pub const SHARD_BYTES: u64 = 128 * 1024 * 1024;
/// Records executed per task sample.
const SAMPLE_RECORDS: usize = 400;

/// Extracts the 10-byte TeraGen key; the value carries the row id plus
/// the record's 82-byte payload so the full 100-byte record transits the
/// reducer (that volume is what overflows its memory).
///
/// Keys and payloads are fixed-size inline arrays — emitting, grouping
/// and merging a record never touches the heap; sizes (10 + 90 bytes)
/// match the previous `Vec<u8>` representation exactly, so volume
/// accounting is unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeraSortMapper;

/// Payload bytes carried per record besides the key and row id.
const PAYLOAD_BYTES: usize = 82;

impl Mapper for TeraSortMapper {
    type Input = TeraRecord;
    type Key = [u8; 10];
    type Value = (u64, [u8; PAYLOAD_BYTES]);

    fn map(&self, record: &TeraRecord, emit: &mut dyn FnMut([u8; 10], (u64, [u8; PAYLOAD_BYTES]))) {
        let payload = [record.row as u8; PAYLOAD_BYTES];
        emit(record.key, (record.row, payload));
    }
}

/// Emits `(key, row)` pairs in key order.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeraSortReducer;

impl Reducer for TeraSortReducer {
    type Key = [u8; 10];
    type Value = (u64, [u8; PAYLOAD_BYTES]);
    type Output = (Vec<u8>, u64);

    fn reduce(
        &self,
        key: &[u8; 10],
        values: &[(u64, [u8; PAYLOAD_BYTES])],
        emit: &mut dyn FnMut((Vec<u8>, u64)),
    ) {
        for (row, _) in values {
            emit((key.to_vec(), *row));
        }
    }
}

/// Cost calibration reproducing the paper's fitted factors
/// (`η ≈ 0.47` pre-spill, `IN(n)` slope ≈ 0.2 rising past the 2 GB
/// boundary, speedup capped near 3): binary-record mapping at 60 MB/s
/// and a heavier 2 s reducer setup.
pub fn cost_model() -> JobCostModel {
    JobCostModel {
        map_rate: 60.0e6,
        shuffle_rate: 600.0e6,
        merge_rate: 1000.0e6,
        reduce_rate: 1000.0e6,
        seq_init: 2.0,
        serial_setup: 2.0,
    }
}

/// The job spec at scale-out degree `n` — keeps the paper's ~2 GB
/// reducer-memory cap from [`ipso_cluster::MemoryModel::reducer_2gb`].
pub fn job_spec(n: u32) -> JobSpec {
    let mut spec = JobSpec::emr("terasort", n);
    spec.cost = cost_model();
    spec
}

/// The `n` fixed-time splits of TeraGen records.
pub fn make_splits(n: u32, seed: u64) -> Vec<InputSplit<TeraRecord>> {
    (0..n)
        .map(|task| {
            let mut rng = SimRng::seed_from(seed ^ (u64::from(task) << 20) ^ 0x7e4a);
            let records = teragen_records(SAMPLE_RECORDS, &mut rng);
            let bytes = records.len() as u64 * TERA_RECORD_BYTES;
            InputSplit::new(records, bytes, SHARD_BYTES)
        })
        .collect()
}

/// Runs the full paper sweep for TeraSort.
pub fn sweep(ns: &[u32]) -> ScalingSweep {
    ScalingSweep::run(
        ns,
        &TeraSortMapper,
        &TeraSortReducer,
        job_spec,
        |n| make_splits(n, 3),
        |n| make_splits(n, 3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_sorted_by_key() {
        use ipso_mapreduce::run_scale_out;
        let run = run_scale_out(
            &job_spec(2),
            &TeraSortMapper,
            &TeraSortReducer,
            &make_splits(2, 5),
        );
        assert_eq!(run.output.len(), 2 * SAMPLE_RECORDS);
        assert!(
            run.output.windows(2).all(|w| w[0].0 <= w[1].0),
            "keys out of order"
        );
    }

    #[test]
    fn all_rows_survive_the_sort() {
        use ipso_mapreduce::run_sequential;
        let splits = make_splits(3, 6);
        let run = run_sequential(&job_spec(3), &TeraSortMapper, &TeraSortReducer, &splits);
        let mut rows: Vec<u64> = run.output.iter().map(|(_, r)| *r).collect();
        rows.sort_unstable();
        let mut expected: Vec<u64> = splits
            .iter()
            .flat_map(|s| s.records.iter().map(|r| r.row))
            .collect();
        expected.sort_unstable();
        assert_eq!(rows, expected);
    }

    #[test]
    fn spill_raises_serial_work_past_n15() {
        let sweep = sweep(&[8, 12, 14, 16, 20, 24]);
        let ms = sweep.measurements();
        // Per-n increment of Ws below the boundary vs above it.
        let slope_low = (ms[1].seq_serial_work - ms[0].seq_serial_work) / 4.0;
        let slope_high = (ms[5].seq_serial_work - ms[4].seq_serial_work) / 4.0;
        assert!(
            slope_high > 1.2 * slope_low,
            "slopes: below = {slope_low}, above = {slope_high}"
        );
    }

    #[test]
    fn speedup_is_capped_below_sort() {
        let ts = sweep(&[1, 2, 4, 8, 16, 32, 64, 96]);
        let curve = ts.speedup_curve().unwrap();
        let s96 = curve.points().last().unwrap().speedup;
        // Paper: TeraSort caps near 2.5–3.
        assert!((1.8..4.0).contains(&s96), "S(96) = {s96}");
        let sort_s96 = crate::sort::sweep(&[1, 2, 4, 8, 16, 32, 64, 96])
            .speedup_curve()
            .unwrap()
            .points()
            .last()
            .unwrap()
            .speedup;
        assert!(
            s96 < sort_s96,
            "TeraSort ({s96}) should trail Sort ({sort_s96})"
        );
    }
}
