//! Property-based tests of the IPSO model layer: special-case reductions,
//! bounds, monotonicity regions and fit round-trips.

use ipso::classic;
use ipso::estimate::estimate_factors;
use ipso::measurement::RunMeasurement;
use ipso::taxonomy::{classify, ScalingClass, WorkloadType};
use ipso::{AsymptoticParams, IpsoModel, ScalingFactor};
use proptest::prelude::*;

fn eta_strategy() -> impl Strategy<Value = f64> {
    0.05f64..=0.999
}

fn n_strategy() -> impl Strategy<Value = f64> {
    1.0f64..=4096.0
}

proptest! {
    /// IPSO with IN = 1, q = 0, EX = 1 is exactly Amdahl's law.
    #[test]
    fn reduces_to_amdahl(eta in eta_strategy(), n in n_strategy()) {
        let model = IpsoModel::builder(eta).build().unwrap();
        let a = classic::amdahl(eta, n).unwrap();
        prop_assert!((model.speedup(n).unwrap() - a).abs() < 1e-9);
    }

    /// IPSO with IN = 1, q = 0, EX = n is exactly Gustafson's law.
    #[test]
    fn reduces_to_gustafson(eta in eta_strategy(), n in n_strategy()) {
        let model = IpsoModel::builder(eta)
            .external(ScalingFactor::linear())
            .build()
            .unwrap();
        let g = classic::gustafson(eta, n).unwrap();
        prop_assert!((model.speedup(n).unwrap() - g).abs() / g < 1e-9);
    }

    /// S(1) = 1 whenever q(1) = 0 — no parallelism, no gain, no loss.
    #[test]
    fn unit_speedup_at_one(
        eta in eta_strategy(),
        in_slope in 0.0f64..2.0,
        beta in 0.0f64..0.5,
        gamma in 0.0f64..2.5,
    ) {
        let model = IpsoModel::builder(eta)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(in_slope, 1.0 - in_slope))
            .induced(ScalingFactor::induced(beta, gamma))
            .build()
            .unwrap();
        prop_assert!((model.speedup(1.0).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Without scale-out-induced workload the speedup never exceeds n and
    /// never drops below 1 for fixed-time workloads with IN no faster
    /// than EX.
    #[test]
    fn fixed_time_speedup_between_one_and_n(
        eta in eta_strategy(),
        in_slope in 0.0f64..=1.0,
        n in n_strategy(),
    ) {
        let model = IpsoModel::builder(eta)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(in_slope, 1.0 - in_slope))
            .build()
            .unwrap();
        let s = model.speedup(n).unwrap();
        prop_assert!(s >= 1.0 - 1e-9, "S = {s}");
        prop_assert!(s <= n + 1e-9, "S = {s} at n = {n}");
    }

    /// The asymptotic speedup respects its classified bound everywhere.
    #[test]
    fn bound_is_respected(
        eta in eta_strategy(),
        alpha in 0.1f64..10.0,
        delta in 0.0f64..=1.0,
        beta in 0.001f64..0.5,
        gamma_idx in 0usize..4,
    ) {
        let gamma = [0.0, 0.5, 1.0, 2.0][gamma_idx];
        let params = AsymptoticParams::new(eta, alpha, delta, beta, gamma).unwrap();
        let (class, bound) = classify(&params, WorkloadType::FixedTime).unwrap();
        if let Some(b) = bound {
            if !class.peaks() {
                for n in [2.0, 16.0, 256.0, 65536.0] {
                    let s = params.speedup(n).unwrap();
                    prop_assert!(s <= b * (1.0 + 1e-6), "S({n}) = {s} exceeds bound {b} for {class}");
                }
            }
        }
    }

    /// Classification is total over the admissible space and bounds agree
    /// with the analytic limit.
    #[test]
    fn classification_agrees_with_limits(
        eta in eta_strategy(),
        alpha in 0.1f64..10.0,
        delta in 0.0f64..=1.0,
        beta in 0.0f64..0.5,
        gamma_idx in 0usize..4,
    ) {
        let gamma = [0.0, 0.5, 1.0, 2.0][gamma_idx];
        let params = AsymptoticParams::new(eta, alpha, delta, beta, gamma).unwrap();
        let (_, bound) = classify(&params, WorkloadType::FixedTime).unwrap();
        match (bound, params.limit()) {
            (Some(b), Some(l)) => prop_assert!((b - l).abs() < 1e-6 * (1.0 + b.abs())),
            (None, None) => {}
            (b, l) => prop_assert!(false, "bound {b:?} vs limit {l:?} for {params:?}"),
        }
    }

    /// Pathological type IV always has an interior peak within a large
    /// horizon.
    #[test]
    fn type_iv_peaks_interior(
        eta in eta_strategy(),
        beta in 0.0005f64..0.01,
    ) {
        let model = IpsoModel::builder(eta)
            .external(ScalingFactor::linear())
            .induced(ScalingFactor::induced(beta, 2.0))
            .build()
            .unwrap();
        let (n_peak, s_peak) = model.peak_speedup(5000).unwrap();
        prop_assert!(n_peak > 1 && n_peak < 5000);
        prop_assert!(s_peak >= model.speedup(5000.0).unwrap());
    }

    /// Factor estimation round-trips synthetic workloads: generating runs
    /// from known (η, IN slope) recovers them.
    #[test]
    fn estimation_roundtrip(
        wp1 in 5.0f64..50.0,
        ws1 in 1.0f64..10.0,
        in_slope in 0.05f64..0.9,
    ) {
        let runs: Vec<RunMeasurement> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&n| {
                let nf = f64::from(n);
                let inn = in_slope * nf + (1.0 - in_slope);
                RunMeasurement {
                    n,
                    seq_parallel_work: wp1 * nf,
                    seq_serial_work: ws1 * inn,
                    par_map_time: wp1,
                    par_serial_time: ws1 * inn,
                    par_overhead: 0.0,
                }
            })
            .collect();
        let est = estimate_factors(&runs).unwrap();
        prop_assert!((est.eta - wp1 / (wp1 + ws1)).abs() < 1e-6);
        let in16 = est.internal.factor.eval(16.0) / est.internal.factor.eval(1.0);
        let expected = (in_slope * 16.0 + (1.0 - in_slope)) / 1.0;
        prop_assert!((in16 - expected).abs() / expected < 1e-6);
        // The reconstructed model reproduces the measured speedups.
        let model = est.to_model().unwrap();
        for r in &runs {
            let rel = (model.speedup(f64::from(r.n)).unwrap() - r.speedup()).abs() / r.speedup();
            prop_assert!(rel < 1e-6, "n = {}", r.n);
        }
    }

    /// Speedup classifications never call an unbounded type pathological.
    #[test]
    fn unbounded_is_never_pathological(
        eta in eta_strategy(),
        delta in 0.01f64..=1.0,
    ) {
        let params = AsymptoticParams::new(eta, 1.0, delta, 0.0, 0.0).unwrap();
        let (class, bound) = classify(&params, WorkloadType::FixedTime).unwrap();
        if bound.is_none() {
            prop_assert!(class.is_unbounded());
            prop_assert!(!class.is_pathological());
        }
    }
}

#[test]
fn scaling_class_display_covers_all_variants() {
    // Non-property sanity: every class renders a non-empty name.
    use ipso::taxonomy::{FixedSizeClass, FixedTimeClass};
    let all = [
        ScalingClass::FixedTime(FixedTimeClass::It),
        ScalingClass::FixedTime(FixedTimeClass::IIt),
        ScalingClass::FixedTime(FixedTimeClass::IIIt1),
        ScalingClass::FixedTime(FixedTimeClass::IIIt2),
        ScalingClass::FixedTime(FixedTimeClass::IVt),
        ScalingClass::FixedSize(FixedSizeClass::Is),
        ScalingClass::FixedSize(FixedSizeClass::IIs),
        ScalingClass::FixedSize(FixedSizeClass::IIIs1),
        ScalingClass::FixedSize(FixedSizeClass::IIIs2),
        ScalingClass::FixedSize(FixedSizeClass::IVs),
    ];
    for c in all {
        assert!(!c.to_string().is_empty());
    }
}
