//! Seeded randomness for reproducible experiments.
//!
//! Every simulated experiment in the reproduction derives its randomness
//! from an explicit seed, so figure-regeneration binaries produce
//! identical CSV output run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator with the distribution helpers the
/// cluster models need.
///
/// # Example
///
/// ```
/// use ipso_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per task, so the
    /// randomness consumed by one component does not shift another's.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh entropy drawn from this generator.
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)` (or exactly `lo` when `lo == hi`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or the bounds are non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds"
        );
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Pareto sample with the given scale (minimum) and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `shape > 0`.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale > 0.0 && shape > 0.0,
            "pareto parameters must be positive"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        scale / u.powf(1.0 / shape)
    }

    /// A multiplicative jitter factor uniform in `[1 − spread, 1 + spread]`
    /// — the standard "±x%" noise applied to simulated task times.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ spread < 1`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0, 1)"
        );
        self.uniform(1.0 - spread, 1.0 + spread)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Access to the underlying RNG for generic `rand` APIs.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 10.0), b.uniform(0.0, 10.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.exponential(2.0), c2.exponential(2.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn pareto_respects_scale_minimum() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..1000 {
            let j = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
        // Zero spread is exactly 1.
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn uniform_degenerate_interval() {
        let mut rng = SimRng::seed_from(3);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn index_in_bounds() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
