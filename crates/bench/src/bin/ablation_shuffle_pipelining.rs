//! Ablation: barrier shuffle versus pipelined (slow-start) shuffle on
//! the Sort workload — a *negative* result that IPSO explains.
//!
//! The paper's Sort saturates because the single reducer's serial
//! workload grows in proportion to the map side (type IIIt,1). A natural
//! engineering response is to overlap the shuffle with the map phase
//! (Hadoop's slow-start). IPSO predicts this cannot help a fixed-time
//! workload at scale: overlap can hide at most `min(map, shuffle)` per
//! job, and the map phase is a *per-shard* constant while the shuffle
//! grows like `IN(n)` — so the hideable fraction vanishes as `n` grows
//! and the IIIt,1 bound is untouched. This ablation measures exactly
//! that.

use ipso::estimate::estimate_factors;
use ipso_bench::{SweepRunner, Table};
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::sort;

fn main() {
    let runner = SweepRunner::from_env();
    let ns: Vec<u32> = vec![1, 2, 4, 8, 16, 32, 64, 96, 128, 160];

    // A shuffle-heavy Sort variant: the reducer ingests at 90 MB/s, so
    // the transfer is a large share of the serial portion and pipelining
    // has something to hide.
    let spec_for = |n: u32, pipelined: bool| {
        let mut spec = sort::job_spec(n);
        spec.cost.shuffle_rate = 90.0e6;
        spec.pipelined_shuffle = pipelined;
        spec
    };
    let point_at = |n: u32, pipelined: bool| {
        ScalingSweep::run(
            &[n],
            &sort::SortMapper,
            &sort::SortReducer,
            |n| spec_for(n, pipelined),
            |n| sort::make_splits(n, 2),
            |n| sort::make_splits(n, 2),
        )
        .points
    };

    // Grid: (pipelined?, n), variant-major so each variant's points
    // reassemble contiguously.
    let grid: Vec<(bool, u32)> = [false, true]
        .iter()
        .flat_map(|&p| ns.iter().map(move |&n| (p, n)))
        .collect();
    let mut points = runner
        .map(grid, |_ctx, (pipelined, n)| point_at(n, pipelined))
        .into_iter();
    let barrier = ScalingSweep {
        points: points.by_ref().take(ns.len()).flatten().collect(),
    };
    let pipelined = ScalingSweep {
        points: points.by_ref().take(ns.len()).flatten().collect(),
    };

    let mut table = Table::new(
        "ablation_shuffle_pipelining",
        &["n", "barrier", "pipelined"],
    );
    let b = barrier.measurements();
    let p = pipelined.measurements();
    for (mb, mp) in b.iter().zip(&p) {
        table.push(vec![f64::from(mb.n), mb.speedup(), mp.speedup()]);
    }
    table.emit();

    let last = table.rows.last().expect("rows");
    println!(
        "S(160): barrier = {:.2}, pipelined = {:.2} ({:+.0}%)",
        last[1],
        last[2],
        100.0 * (last[2] / last[1] - 1.0)
    );

    // The hideable fraction at n = 160: one map wave (~1.7 s) against a
    // ~240 s in-proportion shuffle.
    let est_b = estimate_factors(&b).expect("estimable");
    println!(
        "IN(160)/IN(1) = {:.1} — the serial portion grows linearly while the map wave\n\
         is a per-shard constant, so slow-start can hide at most min(map, shuffle) =\n\
         a vanishing fraction of the transfer. Pipelining buys {:+.1}% here: overlap\n\
         engineering cannot beat in-proportion scaling; only reducing the *order* of\n\
         IN(n) (e.g. a parallel reduce tree) changes the scaling type.",
        est_b.internal.factor.eval(160.0) / est_b.internal.factor.eval(1.0),
        100.0 * (last[2] / last[1] - 1.0),
    );
    // Pipelining helps slightly and never hurts, but cannot lift the
    // IIIt,1 bound: the improvement stays marginal at scale.
    assert!(last[2] >= last[1] - 1e-9, "pipelining must not hurt");
    assert!(
        last[2] < 1.1 * last[1],
        "at scale the improvement must stay marginal — IPSO's point"
    );
}
