//! The paper's six-step diagnostic procedure, end to end: run a workload
//! on the simulated cluster, measure its speedup curve, identify the
//! scaling type, and pin down the root cause with factor estimates.
//!
//! ```text
//! cargo run --release --example diagnose_cluster
//! ```

use ipso::estimate::estimate_factors;
use ipso::taxonomy::WorkloadType;
use ipso::whatif::{rank_scenarios, Scenario};
use ipso::Diagnostician;
use ipso_workloads::{sort, terasort};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let diagnostician = Diagnostician::new();

    for (name, sweep) in [
        (
            "sort",
            sort::sweep(&[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128]),
        ),
        (
            "terasort",
            terasort::sweep(&[1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128]),
        ),
    ] {
        println!("════════ {name} ════════");

        // Steps 1–3: workload type is fixed-time (128 MB per node);
        // measure and plot the speedup curve.
        let curve = sweep.speedup_curve()?;
        for p in curve.points() {
            let bar = "#".repeat((p.speedup * 8.0) as usize);
            println!("  n = {:4}  S = {:6.2}  {bar}", p.n, p.speedup);
        }

        // Steps 4–5: match the trend against Figs. 2–3.
        let coarse = diagnostician.diagnose(&curve, WorkloadType::FixedTime)?;
        println!("\ncoarse diagnosis:\n{coarse}\n");

        // Step 6: resolve the sub-type with exact factor estimates.
        let estimates = estimate_factors(&sweep.measurements())?;
        let refined = diagnostician.refine(&coarse, &estimates)?;
        println!("refined (step 6): {}", refined.class);
        println!("  {}", refined.root_cause);
        println!(
            "  in-proportion ratio epsilon(128) = {:.2}",
            estimates.epsilon(128.0)
        );

        // What-if: which fix would buy the most at n = 128?
        let model = estimates.to_model()?;
        let ranked = rank_scenarios(
            &model,
            &[
                Scenario::ScaleInternalGrowth { factor: 0.5 },
                Scenario::EliminateInternalScaling,
                Scenario::EliminateInduced,
            ],
            128.0,
        )?;
        println!(
            "\nwhat-if analysis at n = 128 (S = {:.2} today):",
            ranked[0].baseline
        );
        for o in &ranked {
            println!(
                "  {:<32} -> S = {:7.2}  ({:+.0}%)",
                o.scenario.to_string(),
                o.improved,
                100.0 * o.gain()
            );
        }
        println!();
    }
    Ok(())
}
