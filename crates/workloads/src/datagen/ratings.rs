//! User×item rating triples for Collaborative Filtering.

use ipso_sim::SimRng;

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index.
    pub user: u32,
    /// Item index.
    pub item: u32,
    /// Rating value in `[1, 5]`.
    pub value: f64,
}

/// Generates `count` ratings over a `users × items` matrix. Each rating
/// is generated from latent one-dimensional user/item affinities plus
/// noise, so a factorization model genuinely has structure to recover.
pub fn random_ratings(users: u32, items: u32, count: usize, rng: &mut SimRng) -> Vec<Rating> {
    assert!(users > 0 && items > 0, "matrix must be non-empty");
    // Latent affinities in [0, 1].
    let u_affinity: Vec<f64> = (0..users).map(|_| rng.uniform(0.0, 1.0)).collect();
    let i_affinity: Vec<f64> = (0..items).map(|_| rng.uniform(0.0, 1.0)).collect();
    (0..count)
        .map(|_| {
            let user = rng.index(users as usize) as u32;
            let item = rng.index(items as usize) as u32;
            let signal = 1.0 + 4.0 * u_affinity[user as usize] * i_affinity[item as usize];
            let value = (signal + rng.uniform(-0.5, 0.5)).clamp(1.0, 5.0);
            Rating { user, item, value }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratings_are_in_range() {
        let mut rng = SimRng::seed_from(21);
        for r in random_ratings(50, 80, 1000, &mut rng) {
            assert!(r.user < 50);
            assert!(r.item < 80);
            assert!((1.0..=5.0).contains(&r.value));
        }
    }

    #[test]
    fn ratings_have_latent_structure() {
        // Ratings correlate with the product of latent affinities, so the
        // per-user mean rating should vary across users.
        let mut rng = SimRng::seed_from(22);
        let ratings = random_ratings(20, 20, 4000, &mut rng);
        let mut user_means = Vec::new();
        for u in 0..20u32 {
            let rs: Vec<f64> = ratings
                .iter()
                .filter(|r| r.user == u)
                .map(|r| r.value)
                .collect();
            if !rs.is_empty() {
                user_means.push(rs.iter().sum::<f64>() / rs.len() as f64);
            }
        }
        let max = user_means.iter().cloned().fold(f64::MIN, f64::max);
        let min = user_means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.5, "means too uniform: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_matrix_rejected() {
        let mut rng = SimRng::seed_from(1);
        let _ = random_ratings(0, 5, 10, &mut rng);
    }

    #[test]
    fn generation_is_seeded() {
        let mut a = SimRng::seed_from(33);
        let mut b = SimRng::seed_from(33);
        assert_eq!(
            random_ratings(10, 10, 50, &mut a),
            random_ratings(10, 10, 50, &mut b)
        );
    }
}
