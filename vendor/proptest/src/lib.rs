//! Offline stand-in for the `proptest` crate.
//!
//! Provides the property-testing surface this workspace uses: the
//! [`proptest!`] macro, range and collection [`Strategy`]s, [`any`],
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike upstream proptest there is no shrinking: on failure the
//! sampled inputs are printed verbatim and the panic is re-raised.
//! Sampling is deterministic per (test name, case index), so failures
//! reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of random values for one property input.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and length drawn
    /// from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: each value has a length in `size` and elements
    /// drawn from `element`. Nests freely (`vec(vec(any(), ..), ..)`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: the same (test, case) pair always
/// replays the same inputs.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let inputs = [$(format!("{} = {:?}", stringify!($arg), &$arg)),*].join(", ");
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        inputs,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn f_strategy() -> impl Strategy<Value = f64> {
        0.25f64..=0.75
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in f_strategy(), k in 1usize..16) {
            prop_assert!((0.25..=0.75).contains(&x));
            prop_assert!((1..16).contains(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Nested vec strategies produce the configured shapes.
        #[test]
        fn nested_vec_shapes(
            rows in prop::collection::vec(
                prop::collection::vec(any::<u64>(), 1..5),
                1..4,
            ),
        ) {
            prop_assert!((1..4).contains(&rows.len()));
            for row in &rows {
                prop_assert!((1..5).contains(&row.len()));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = (0..8)
            .map(|c| Strategy::sample(&strat, &mut crate::__case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| Strategy::sample(&strat, &mut crate::__case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
