//! Span recording.
//!
//! A span is a named interval on a *track* (one track per executor, plus
//! a `driver` track for phase-level spans). The engines operate on a
//! simulated clock, so most spans carry virtual times supplied by the
//! caller; wall-clock spans are available through the RAII [`WallSpan`]
//! guard for timing real host work (fitting, report generation).
//!
//! All recording is gated on [`crate::enabled`]: when tracing is off a
//! call is a single relaxed atomic load and an immediate return.

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The temporal shape of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanKind {
    /// A duration event: `[start, end]` in seconds.
    Complete {
        /// Span start, seconds on the track's clock.
        start: f64,
        /// Span end, seconds on the track's clock.
        end: f64,
    },
    /// A zero-duration marker (straggler kill, retry, speculative copy).
    Instant {
        /// Event time, seconds on the track's clock.
        at: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Track (timeline row) the event belongs to, e.g. `"executor-3"`.
    pub track: String,
    /// Event name, e.g. `"map"` or `"straggler"`.
    pub name: String,
    /// Category tag, e.g. `"mapreduce"` — filterable in the trace viewer.
    pub cat: String,
    /// Duration or instant.
    pub kind: SpanKind,
}

impl TraceEvent {
    /// The span duration (zero for instants).
    pub fn duration(&self) -> f64 {
        match self.kind {
            SpanKind::Complete { start, end } => end - start,
            SpanKind::Instant { .. } => 0.0,
        }
    }

    /// The event's start (or instant) time.
    pub fn start(&self) -> f64 {
        match self.kind {
            SpanKind::Complete { start, .. } => start,
            SpanKind::Instant { at } => at,
        }
    }

    /// The event's end (or instant) time.
    pub fn end(&self) -> f64 {
        match self.kind {
            SpanKind::Complete { end, .. } => end,
            SpanKind::Instant { at } => at,
        }
    }
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

thread_local! {
    /// When a [`crate::capture`] scope is active on this thread, events
    /// go here instead of the global buffer — no lock on the hot path.
    static LOCAL_EVENTS: RefCell<Option<Vec<TraceEvent>>> = const { RefCell::new(None) };
}

/// Installs a fresh thread-local event buffer, returning the previous
/// one (captures nest).
pub(crate) fn install_local_events() -> Option<Vec<TraceEvent>> {
    LOCAL_EVENTS.with(|l| l.borrow_mut().replace(Vec::new()))
}

/// Removes the thread-local event buffer, restoring `previous`, and
/// returns the captured events.
pub(crate) fn take_local_events(previous: Option<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    LOCAL_EVENTS.with(|l| {
        let mut slot = l.borrow_mut();
        let captured = slot.take().expect("no local event buffer installed");
        *slot = previous;
        captured
    })
}

/// Appends already-recorded events to the active recorder — the local
/// capture buffer when one is installed on this thread, else the global
/// buffer (one lock per batch). How capture buffers are flushed.
pub(crate) fn append_events(events: Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    let leftover = LOCAL_EVENTS.with(|l| match l.borrow_mut().as_mut() {
        Some(buf) => {
            buf.extend(events);
            None
        }
        None => Some(events),
    });
    if let Some(events) = leftover {
        EVENTS.lock().expect("span buffer poisoned").extend(events);
    }
}

fn push(event: TraceEvent) {
    let event = match LOCAL_EVENTS.with(|l| match l.borrow_mut().as_mut() {
        Some(buf) => {
            buf.push(event);
            None
        }
        None => Some(event),
    }) {
        Some(event) => event,
        None => return,
    };
    EVENTS.lock().expect("span buffer poisoned").push(event);
}

/// Records a completed span with caller-supplied (virtual) times.
///
/// No-op unless tracing is enabled. `end` is clamped to `start` so a
/// degenerate interval never yields a negative duration.
pub fn record_span(track: &str, name: &str, cat: &str, start: f64, end: f64) {
    if !crate::enabled() {
        return;
    }
    push(TraceEvent {
        track: track.to_string(),
        name: name.to_string(),
        cat: cat.to_string(),
        kind: SpanKind::Complete {
            start,
            end: end.max(start),
        },
    });
}

/// Records an instant marker at a caller-supplied (virtual) time.
///
/// No-op unless tracing is enabled.
pub fn record_instant(track: &str, name: &str, cat: &str, at: f64) {
    if !crate::enabled() {
        return;
    }
    push(TraceEvent {
        track: track.to_string(),
        name: name.to_string(),
        cat: cat.to_string(),
        kind: SpanKind::Instant { at },
    });
}

/// Returns a copy of all recorded events, in recording order.
pub fn snapshot_events() -> Vec<TraceEvent> {
    EVENTS.lock().expect("span buffer poisoned").clone()
}

/// Drains and returns all recorded events.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().expect("span buffer poisoned"))
}

/// Discards all recorded events.
pub fn clear_events() {
    EVENTS.lock().expect("span buffer poisoned").clear();
}

/// Process-wide wall-clock epoch: all [`WallSpan`] times are seconds
/// since the first wall-clock observation.
fn wall_now_s() -> f64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// RAII wall-clock span: records a `Complete` span from construction to
/// drop. Inert (no allocation, no clock read) when tracing is disabled.
///
/// # Example
///
/// ```
/// ipso_obs::set_enabled(true);
/// {
///     let _span = ipso_obs::WallSpan::new("host", "fit", "analysis");
///     // ... timed work ...
/// } // span recorded here
/// ipso_obs::set_enabled(false);
/// ```
#[must_use = "a span guard records its span when dropped"]
pub struct WallSpan {
    inner: Option<(String, String, String, f64)>,
}

impl WallSpan {
    /// Opens a wall-clock span on `track`.
    pub fn new(track: &str, name: &str, cat: &str) -> WallSpan {
        if !crate::enabled() {
            return WallSpan { inner: None };
        }
        WallSpan {
            inner: Some((
                track.to_string(),
                name.to_string(),
                cat.to_string(),
                wall_now_s(),
            )),
        }
    }
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some((track, name, cat, start)) = self.inner.take() {
            let end = wall_now_s();
            push(TraceEvent {
                track,
                name,
                cat,
                kind: SpanKind::Complete {
                    start,
                    end: end.max(start),
                },
            });
        }
    }
}

/// RAII virtual-time span: opened at a simulated start time, completed
/// with an explicit simulated end time. Dropping the guard without
/// calling [`VirtualSpan::complete`] records a zero-length span at the
/// start time so the opened span is never silently lost.
///
/// # Example
///
/// ```
/// ipso_obs::set_enabled(true);
/// let span = ipso_obs::VirtualSpan::new("executor-1", "shuffle", "spark", 4.0);
/// span.complete(7.5); // records [4.0, 7.5]
/// ipso_obs::set_enabled(false);
/// ```
#[must_use = "a span guard records its span when dropped"]
pub struct VirtualSpan {
    inner: Option<(String, String, String, f64)>,
}

impl VirtualSpan {
    /// Opens a virtual-time span starting at `start` seconds.
    pub fn new(track: &str, name: &str, cat: &str, start: f64) -> VirtualSpan {
        if !crate::enabled() {
            return VirtualSpan { inner: None };
        }
        VirtualSpan {
            inner: Some((track.to_string(), name.to_string(), cat.to_string(), start)),
        }
    }

    /// Completes the span at `end` seconds on the virtual clock.
    pub fn complete(mut self, end: f64) {
        if let Some((track, name, cat, start)) = self.inner.take() {
            push(TraceEvent {
                track,
                name,
                cat,
                kind: SpanKind::Complete {
                    start,
                    end: end.max(start),
                },
            });
        }
    }
}

impl Drop for VirtualSpan {
    fn drop(&mut self) {
        if let Some((track, name, cat, start)) = self.inner.take() {
            push(TraceEvent {
                track,
                name,
                cat,
                kind: SpanKind::Complete { start, end: start },
            });
        }
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _guard = test_lock();
        crate::set_enabled(false);
        clear_events();
        record_span("t", "a", "c", 0.0, 1.0);
        record_instant("t", "b", "c", 0.5);
        let _w = WallSpan::new("t", "w", "c");
        VirtualSpan::new("t", "v", "c", 0.0).complete(1.0);
        assert!(snapshot_events().is_empty());
    }

    #[test]
    fn virtual_and_instant_events_record_in_order() {
        let _guard = test_lock();
        crate::set_enabled(true);
        clear_events();
        record_span("driver", "init", "mr", 0.0, 1.0);
        record_instant("executor-0", "straggler", "mr", 3.5);
        VirtualSpan::new("executor-0", "map", "mr", 1.0).complete(4.0);
        let events = take_events();
        crate::set_enabled(false);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "init");
        assert_eq!(events[0].duration(), 1.0);
        assert_eq!(events[1].kind, SpanKind::Instant { at: 3.5 });
        assert_eq!(
            events[2].kind,
            SpanKind::Complete {
                start: 1.0,
                end: 4.0
            }
        );
    }

    #[test]
    fn degenerate_spans_are_clamped_non_negative() {
        let _guard = test_lock();
        crate::set_enabled(true);
        clear_events();
        record_span("t", "backwards", "c", 5.0, 2.0);
        VirtualSpan::new("t", "dangling", "c", 7.0).complete(1.0);
        let dropped = VirtualSpan::new("t", "dropped", "c", 9.0);
        drop(dropped);
        let events = take_events();
        crate::set_enabled(false);
        assert_eq!(events.len(), 3);
        for e in &events {
            assert!(e.duration() >= 0.0, "negative duration in {e:?}");
        }
        assert_eq!(
            events[2].kind,
            SpanKind::Complete {
                start: 9.0,
                end: 9.0
            }
        );
    }

    #[test]
    fn wall_span_measures_real_time() {
        let _guard = test_lock();
        crate::set_enabled(true);
        clear_events();
        {
            let _span = WallSpan::new("host", "sleep", "test");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let events = take_events();
        crate::set_enabled(false);
        assert_eq!(events.len(), 1);
        assert!(
            events[0].duration() >= 0.004,
            "d = {}",
            events[0].duration()
        );
    }
}
