//! The execution engines' parallelism contract, end to end: for ANY
//! host thread count and either shuffle implementation, a MapReduce job
//! produces bit-identical outputs, intermediate-volume accounting and
//! `JobTrace`s to the sequential (`threads = 1`, sort-merge) run — the
//! property the `--threads` flag and the sort-based shuffle rest on.

use ipso_cluster::JobTrace;
use ipso_mapreduce::{run_scale_out, run_sequential, JobSpec, ShuffleImpl};
use ipso_workloads::{sort, terasort, wordcount};
use proptest::prelude::*;

const WORKLOADS: [&str; 3] = ["sort", "wordcount", "terasort"];

/// The comparable results of one engine execution: scale-out and
/// sequential outputs (debug-formatted so one fixture covers all output
/// types), reduce-side volumes and the full traces.
#[derive(Debug, PartialEq)]
struct EngineFingerprint {
    par_output: Vec<String>,
    seq_output: Vec<String>,
    par_reduce_input_bytes: u64,
    seq_reduce_input_bytes: u64,
    par_trace: JobTrace,
    seq_trace: JobTrace,
}

fn fingerprint(
    workload: &str,
    n: u32,
    seed: u64,
    threads: usize,
    shuffle: ShuffleImpl,
) -> EngineFingerprint {
    let configure = |mut spec: JobSpec| {
        spec.engine.threads = threads;
        spec.shuffle = shuffle;
        spec
    };
    match workload {
        "sort" => {
            let spec = configure(sort::job_spec(n));
            let splits = sort::make_splits(n, seed);
            let par = run_scale_out(&spec, &sort::SortMapper, &sort::SortReducer, &splits);
            let seq = run_sequential(&spec, &sort::SortMapper, &sort::SortReducer, &splits);
            EngineFingerprint {
                par_output: par.output.iter().map(|o| format!("{o:?}")).collect(),
                seq_output: seq.output.iter().map(|o| format!("{o:?}")).collect(),
                par_reduce_input_bytes: par.reduce_input_bytes,
                seq_reduce_input_bytes: seq.reduce_input_bytes,
                par_trace: par.trace,
                seq_trace: seq.trace,
            }
        }
        "wordcount" => {
            let spec = configure(wordcount::job_spec(n));
            let splits = wordcount::make_splits(n, seed);
            let mapper = wordcount::WordCountMapper::new();
            let par = run_scale_out(&spec, &mapper, &wordcount::WordCountReducer, &splits);
            let seq = run_sequential(&spec, &mapper, &wordcount::WordCountReducer, &splits);
            EngineFingerprint {
                par_output: par.output.iter().map(|o| format!("{o:?}")).collect(),
                seq_output: seq.output.iter().map(|o| format!("{o:?}")).collect(),
                par_reduce_input_bytes: par.reduce_input_bytes,
                seq_reduce_input_bytes: seq.reduce_input_bytes,
                par_trace: par.trace,
                seq_trace: seq.trace,
            }
        }
        "terasort" => {
            let spec = configure(terasort::job_spec(n));
            let splits = terasort::make_splits(n, seed);
            let par = run_scale_out(
                &spec,
                &terasort::TeraSortMapper,
                &terasort::TeraSortReducer,
                &splits,
            );
            let seq = run_sequential(
                &spec,
                &terasort::TeraSortMapper,
                &terasort::TeraSortReducer,
                &splits,
            );
            EngineFingerprint {
                par_output: par.output.iter().map(|o| format!("{o:?}")).collect(),
                seq_output: seq.output.iter().map(|o| format!("{o:?}")).collect(),
                par_reduce_input_bytes: par.reduce_input_bytes,
                seq_reduce_input_bytes: seq.reduce_input_bytes,
                par_trace: par.trace,
                seq_trace: seq.trace,
            }
        }
        other => panic!("unknown workload {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-for-bit equality between the sequential single-threaded run
    /// and every tested thread count, for all three real workloads.
    #[test]
    fn engine_results_are_identical_for_any_thread_count(
        threads in 2usize..9,
        n in 1u32..7,
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let workload = WORKLOADS[which];
        let baseline = fingerprint(workload, n, seed, 1, ShuffleImpl::SortMerge);
        let threaded = fingerprint(workload, n, seed, threads, ShuffleImpl::SortMerge);
        prop_assert_eq!(&threaded, &baseline);
        baseline.par_trace.check_invariants().expect("valid trace");
    }

    /// The sort-based shuffle and the reference BTree grouping are
    /// observationally equivalent, threaded or not.
    #[test]
    fn shuffle_impls_are_equivalent(
        threads in 1usize..5,
        n in 1u32..7,
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let workload = WORKLOADS[which];
        let fast = fingerprint(workload, n, seed, threads, ShuffleImpl::SortMerge);
        let reference = fingerprint(workload, n, seed, threads, ShuffleImpl::BTreeGrouping);
        prop_assert_eq!(fast, reference);
    }
}
