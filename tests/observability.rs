//! End-to-end tests of the observability layer across the engines:
//! event logs from instrumented runs still round-trip, the exported
//! timeline is structurally sound, and the overhead breakdown assembled
//! from the engines' gauges accounts for the measured `Wo(n)`.
//!
//! The observability layer is global state; every test here serializes
//! on `OBS` (and leaves tracing disabled afterwards).

use std::sync::Mutex;

use ipso::overhead_breakdown;
use ipso_obs::SpanKind;
use ipso_spark::{parse_event_log, run_job};
use ipso_workloads::{bayes, terasort};

static OBS: Mutex<()> = Mutex::new(());

fn breakdown_from_gauges(total: f64) -> ipso::OverheadBreakdown {
    overhead_breakdown(
        total,
        ipso_obs::gauge_value("overhead.scheduling_s"),
        ipso_obs::gauge_value("overhead.broadcast_s"),
        ipso_obs::gauge_value("overhead.shuffle_wait_s"),
        ipso_obs::gauge_value("overhead.straggler_tail_s"),
    )
}

#[test]
fn instrumented_spark_event_log_still_roundtrips() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    let job = bayes::job(64, 16);
    let run = run_job(&job);
    let events = ipso_obs::take_events();
    ipso_obs::set_enabled(false);
    ipso_obs::reset();

    // The log written by the instrumented run parses exactly as before.
    let (stages, duration) = parse_event_log(&run.log).expect("instrumented log must parse");
    assert_eq!(stages.len(), run.stage_times.len());
    for (stage, time) in stages.iter().zip(&run.stage_times) {
        assert!(
            (stage.latency - time).abs() < 1e-9,
            "log latency {} != engine latency {time}",
            stage.latency
        );
    }
    assert!((duration.expect("app start/end present") - run.total_time).abs() < 1e-9);

    // And the instrumentation itself recorded driver spans per stage.
    let driver_spans = events
        .iter()
        .filter(|e| e.track == "driver" && matches!(e.kind, SpanKind::Complete { .. }))
        .count();
    assert!(
        driver_spans > run.stage_times.len(),
        "expected per-stage driver spans plus launch, got {driver_spans}"
    );
}

#[test]
fn uninstrumented_run_matches_instrumented_run() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
    let job = bayes::job(64, 16);
    let plain = run_job(&job);
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    let traced = run_job(&job);
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
    assert_eq!(plain, traced, "tracing must not perturb the simulation");
}

#[test]
fn spark_overhead_gauges_sum_to_measured_overhead() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    let run = run_job(&bayes::job(128, 32));
    let b = breakdown_from_gauges(run.overhead_time);
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
    assert!(b.total > 0.0, "bayes at m = 32 must pay scale-out overhead");
    assert!(b.scheduling > 0.0);
    assert!(b.broadcast > 0.0, "bayes broadcasts its model every stage");
    assert!(
        (b.components_sum() - b.total).abs() < 1e-6,
        "components {} != total {}",
        b.components_sum(),
        b.total
    );
    // The named gauges alone explain the whole Wo: the residual is noise.
    assert!(
        b.other.abs() < 1e-6,
        "spark gauges left {} s unattributed",
        b.other
    );
}

#[test]
fn mapreduce_overhead_gauges_sum_to_trace_overhead() {
    let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    let n = 8;
    let trace = ipso_mapreduce::run_scale_out(
        &terasort::job_spec(n),
        &terasort::TeraSortMapper,
        &terasort::TeraSortReducer,
        &terasort::make_splits(n, 3),
    )
    .trace;
    let b = breakdown_from_gauges(trace.scale_out_overhead);
    let events = ipso_obs::take_events();
    ipso_obs::set_enabled(false);
    ipso_obs::reset();

    assert!(b.total > 0.0);
    assert!(
        (b.components_sum() - b.total).abs() < 1e-6,
        "components {} != total {}",
        b.components_sum(),
        b.total
    );
    assert!(b.other.abs() < 1e-6);

    // The timeline covers the driver phases and every task.
    let task_spans = events
        .iter()
        .filter(|e| e.track.starts_with("executor-") && matches!(e.kind, SpanKind::Complete { .. }))
        .count();
    assert_eq!(task_spans as u32, n);
    let driver = ["init", "map", "shuffle", "merge", "reduce"];
    for name in driver {
        assert!(
            events.iter().any(|e| e.track == "driver" && e.name == name),
            "missing driver span {name:?}"
        );
    }
    // The run's config rode along on the trace.
    let config = trace.config.expect("scale-out runs record their config");
    assert_eq!(config.seed, terasort::job_spec(n).seed);
    assert_eq!(config.scheduler, terasort::job_spec(n).scheduler);
}
