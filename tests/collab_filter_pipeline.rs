//! Integration of the Collaborative Filtering analysis (paper Table I and
//! Fig. 8): the fixed-size prediction pipeline on the paper's data, the
//! simulated reproduction, and the cross-check between them.

use ipso::predict::FixedSizePredictor;
use ipso::stochastic::fixed_size_speedup;
use ipso::taxonomy::{classify, FixedSizeClass, ScalingClass, WorkloadType};
use ipso::AsymptoticParams;
use ipso_spark::{run_job, sweep_fixed_size};
use ipso_workloads::collab_filter::{job, table1_samples, CF_TASKS, TABLE_I};

#[test]
fn paper_data_yields_gamma_two_and_peak_near_sixty() {
    let p = FixedSizePredictor::fit(&table1_samples()).unwrap();
    assert!((p.gamma - 2.0).abs() < 0.25, "gamma = {}", p.gamma);
    assert!((p.tp1 - 1602.5).abs() / 1602.5 < 0.35, "tp1 = {}", p.tp1);
    let (n_peak, s_peak) = p.peak(240).unwrap();
    assert!((40..=80).contains(&n_peak), "peak at {n_peak}");
    assert!((15.0..=30.0).contains(&s_peak), "peak S = {s_peak}");
    // Beyond the peak the predicted speedup decays towards zero.
    assert!(p.speedup(240.0).unwrap() < s_peak * 0.8);
}

#[test]
fn measured_speedups_match_eq18_row_by_row() {
    let p = FixedSizePredictor::fit(&table1_samples()).unwrap();
    for &(n, tmax, wo) in &TABLE_I {
        let via_eq18 = fixed_size_speedup(p.tp1, tmax, wo).unwrap();
        let via_model = p.speedup(f64::from(n)).unwrap();
        // The model interpolates the measured rows closely.
        let rel = (via_eq18 - via_model).abs() / via_eq18;
        assert!(
            rel < 0.15,
            "n = {n}: eq18 {via_eq18:.2} vs model {via_model:.2}"
        );
    }
}

#[test]
fn asymptotic_classification_is_ivs() {
    let p = FixedSizePredictor::fit(&table1_samples()).unwrap();
    // Convert the fitted overhead into the asymptotic form: β from the
    // induced-factor coefficient normalized by Wp(1) = tp1.
    let beta = p.overhead_coeff / p.tp1;
    let params = AsymptoticParams::new(1.0, 1.0, 0.0, beta.max(1e-9), p.gamma).unwrap();
    let (class, bound) = classify(&params, WorkloadType::FixedSize).unwrap();
    assert_eq!(class, ScalingClass::FixedSize(FixedSizeClass::IVs));
    assert_eq!(bound, Some(0.0));
}

#[test]
fn simulated_cf_reproduces_the_paper_shape() {
    // The simulated broadcast-heavy job: same 1/n task times, same linear
    // overhead, same interior peak.
    let pts = sweep_fixed_size(job, CF_TASKS, &[10, 30, 60, 90, 120, 180]);
    let peak = pts
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .unwrap();
    assert!((30..=90).contains(&peak.m), "peak at m = {}", peak.m);
    assert!(pts.last().unwrap().speedup < peak.speedup);

    // Overheads at the Table I points are within 2× of the paper's.
    for &(n, _, paper_wo) in &TABLE_I {
        let run = run_job(&job(CF_TASKS, n));
        let ratio = run.overhead_time / paper_wo;
        assert!(
            (0.5..2.0).contains(&ratio),
            "Wo({n}) = {:.1} vs paper {paper_wo} (ratio {ratio:.2})",
            run.overhead_time
        );
    }
}

#[test]
fn broadcast_is_the_root_cause() {
    // Ablation: remove the broadcasts and the pathology disappears.
    let with = sweep_fixed_size(job, CF_TASKS, &[10, 60, 180]);
    let without = sweep_fixed_size(
        |n, m| {
            let mut spec = job(n, m);
            for s in &mut spec.stages {
                s.broadcast_bytes = 0;
            }
            spec
        },
        CF_TASKS,
        &[10, 60, 180],
    );
    // Without broadcast the speedup at m = 180 keeps improving over 60.
    assert!(without[2].speedup > with[2].speedup * 1.5);
    assert!(without[2].speedup > without[1].speedup * 0.95);
}
