//! Spark job configuration.

use ipso_cluster::{
    CentralScheduler, ClusterSpec, EngineOptions, FaultModel, NetworkModel, RecoveryPolicy,
    StragglerModel,
};
use serde::{Deserialize, Serialize};

use crate::stage::StageSpec;

/// Configuration of one Spark-like job execution.
///
/// The paper parameterizes every Spark case study by a problem size `N`
/// (nominal tasks per stage) and a parallel degree `m` (executors); the
/// scale-out degree is `n = m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkJobSpec {
    /// Application label.
    pub name: String,
    /// Nominal problem size `N` (tasks in the first stage).
    pub problem_size: u32,
    /// Parallel degree `m` (executors). One executor per worker node.
    pub parallelism: u32,
    /// The stage DAG, in topological order.
    pub stages: Vec<StageSpec>,
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Driver scheduling cost model.
    pub scheduler: CentralScheduler,
    /// Network model (broadcast, shuffle).
    pub network: NetworkModel,
    /// Task-time noise.
    pub straggler: StragglerModel,
    /// Per-executor memory available for cached partitions, bytes.
    pub executor_memory: u64,
    /// Slowdown multiplier applied to tasks whose executor working set
    /// exceeds memory (RDD spill to local disk).
    pub spill_slowdown: f64,
    /// Per-executor one-time first-task cost (classloading, JIT,
    /// deserialization of closures) — the paper's "first wave" overhead.
    pub first_wave_cost: f64,
    /// Driver-side cost to launch one executor (container negotiation and
    /// registration are serialized at the driver), seconds. Total launch
    /// time is `m × executor_launch_cost` — a scale-out-induced overhead
    /// linear in the parallel degree.
    pub executor_launch_cost: f64,
    /// Host-side execution knobs (stage-schedule thread count). Never
    /// affects simulated time, traces or event logs, only how fast the
    /// host computes them. Defaults to sequential so specs serialized
    /// before this field existed still deserialize.
    #[serde(default)]
    pub engine: EngineOptions,
    /// Fault injection model, applied per stage. Disabled by default;
    /// when disabled each stage consumes zero extra RNG draws, so event
    /// logs match fault-free builds byte for byte. Defaults keep specs
    /// serialized before this field existed deserializable.
    #[serde(default)]
    pub faults: FaultModel,
    /// Recovery policy: retry with capped exponential backoff, optional
    /// speculation, fail-fast budget. Node crashes in stage `k > 0`
    /// additionally trigger lineage recomputation of the crashed node's
    /// stage-`k−1` partitions.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl SparkJobSpec {
    /// Creates a job on an EMR-style cluster with `m` executors and
    /// Spark-like defaults.
    pub fn emr(name: &str, problem_size: u32, parallelism: u32) -> SparkJobSpec {
        let cluster = ClusterSpec::emr(parallelism.max(1));
        SparkJobSpec {
            name: name.to_string(),
            problem_size,
            parallelism,
            stages: Vec::new(),
            network: NetworkModel::from_cluster(&cluster),
            cluster,
            scheduler: CentralScheduler::spark_like(),
            straggler: StragglerModel::mild(),
            executor_memory: 4 * 1024 * 1024 * 1024, // 4 GiB usable of 8
            spill_slowdown: 1.6,
            first_wave_cost: 0.35,
            executor_launch_cost: 0.09,
            engine: EngineOptions::default(),
            faults: FaultModel::none(),
            recovery: RecoveryPolicy::hadoop_like(),
            seed: 42,
        }
    }

    /// Appends a stage.
    pub fn stage(mut self, stage: StageSpec) -> SparkJobSpec {
        self.stages.push(stage);
        self
    }

    /// Tasks per executor in the first stage, `N/m` — the paper's
    /// per-executor load level.
    pub fn load_level(&self) -> f64 {
        self.problem_size as f64 / self.parallelism.max(1) as f64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.problem_size == 0 {
            return Err("problem size N must be positive".into());
        }
        if self.parallelism == 0 {
            return Err("parallel degree m must be positive".into());
        }
        if self.stages.is_empty() {
            return Err("job needs at least one stage".into());
        }
        if self.executor_memory == 0 {
            return Err("executor memory must be positive".into());
        }
        if !self.spill_slowdown.is_finite() || self.spill_slowdown < 1.0 {
            return Err("spill slowdown must be >= 1".into());
        }
        if !self.first_wave_cost.is_finite() || self.first_wave_cost < 0.0 {
            return Err("first wave cost must be finite and >= 0".into());
        }
        if !self.executor_launch_cost.is_finite() || self.executor_launch_cost < 0.0 {
            return Err("executor launch cost must be finite and >= 0".into());
        }
        self.cluster.validate()?;
        self.scheduler.validate()?;
        self.straggler.validate()?;
        self.faults.validate().map_err(|e| e.to_string())?;
        self.recovery.validate().map_err(|e| e.to_string())?;
        for s in &self.stages {
            s.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_builder_with_stages_validates() {
        let job = SparkJobSpec::emr("bayes", 64, 16)
            .stage(StageSpec::new("train", 64).with_task_compute(1.0));
        assert!(job.validate().is_ok());
        assert_eq!(job.load_level(), 4.0);
    }

    #[test]
    fn validation_catches_problems() {
        let no_stages = SparkJobSpec::emr("x", 4, 2);
        assert!(no_stages.validate().is_err());
        let mut bad = SparkJobSpec::emr("x", 4, 2).stage(StageSpec::new("s", 4));
        bad.problem_size = 0;
        assert!(bad.validate().is_err());
        bad = SparkJobSpec::emr("x", 4, 2).stage(StageSpec::new("s", 4));
        bad.spill_slowdown = 0.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn load_level_guards_zero_parallelism() {
        let mut job = SparkJobSpec::emr("x", 8, 2);
        job.parallelism = 0;
        assert_eq!(job.load_level(), 8.0);
    }
}
