//! Memory capacity and spill-to-disk slowdown.
//!
//! The paper's TeraSort case (Fig. 5) shows the internal scaling factor
//! bursting by over 30% — its slope jumping from 0.15 to 0.25 — when the
//! reducer's input outgrows its ~2 GB of preconfigured memory around
//! `n ≈ 15` (15 × 128 MB ≈ 1.9 GB) and disk I/O joins the merge path.
//! [`MemoryModel`] reproduces that mechanism: processing below capacity
//! runs at memory speed; the overflow fraction pays a disk-bandwidth
//! round-trip plus a one-time regime-switch penalty.

use serde::{Deserialize, Serialize};

/// Working-set versus capacity model for one processing unit.
///
/// # Example
///
/// ```
/// use ipso_cluster::MemoryModel;
///
/// let m = MemoryModel::reducer_2gb();
/// // Below capacity the multiplier is exactly 1.
/// assert_eq!(m.slowdown(1 << 30), 1.0);
/// // Over capacity the merge slows down.
/// assert!(m.slowdown(4 << 30) > 1.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Usable memory for the operation, bytes.
    pub capacity_bytes: u64,
    /// Relative cost of processing one spilled byte versus one in-memory
    /// byte (disk write + read back during external merge).
    pub spill_cost_factor: f64,
    /// One-time fractional penalty added the moment spilling first occurs
    /// (external-sort restructuring). The paper observes a ~30% burst.
    pub overflow_burst: f64,
}

impl MemoryModel {
    /// The paper's preconfigured reducer memory (~2 GB) with a disk merge
    /// path calibrated to reproduce the 0.15 → 0.25 slope change.
    pub fn reducer_2gb() -> MemoryModel {
        MemoryModel {
            capacity_bytes: 2 * 1024 * 1024 * 1024,
            spill_cost_factor: 0.67,
            overflow_burst: 0.30,
        }
    }

    /// A model with unlimited memory (never spills).
    pub fn unlimited() -> MemoryModel {
        MemoryModel {
            capacity_bytes: u64::MAX,
            spill_cost_factor: 0.0,
            overflow_burst: 0.0,
        }
    }

    /// Whether a working set of `bytes` spills.
    pub fn spills(&self, bytes: u64) -> bool {
        bytes > self.capacity_bytes
    }

    /// Multiplier on processing time for a working set of `bytes`:
    ///
    /// * `1.0` when the set fits;
    /// * `1 + burst + spill_cost · overflow_fraction` when it does not,
    ///   where `overflow_fraction = (bytes − capacity)/bytes`.
    ///
    /// The multiplier is continuous-from-above in the overflow fraction
    /// but jumps by `overflow_burst` at the capacity boundary, producing
    /// the step-wise `IN(n)` of Fig. 5.
    pub fn slowdown(&self, bytes: u64) -> f64 {
        if !self.spills(bytes) {
            return 1.0;
        }
        let overflow = (bytes - self.capacity_bytes) as f64 / bytes as f64;
        1.0 + self.overflow_burst + self.spill_cost_factor * overflow
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("capacity must be positive".into());
        }
        if !self.spill_cost_factor.is_finite() || self.spill_cost_factor < 0.0 {
            return Err("spill cost factor must be finite and >= 0".into());
        }
        if !self.overflow_burst.is_finite() || self.overflow_burst < 0.0 {
            return Err("overflow burst must be finite and >= 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn no_slowdown_below_capacity() {
        let m = MemoryModel::reducer_2gb();
        assert_eq!(m.slowdown(0), 1.0);
        assert_eq!(m.slowdown(2 * GIB), 1.0);
        assert!(!m.spills(2 * GIB));
    }

    #[test]
    fn burst_at_the_boundary() {
        let m = MemoryModel::reducer_2gb();
        let just_over = m.slowdown(2 * GIB + 1);
        assert!(
            just_over > 1.29 && just_over < 1.31,
            "just_over = {just_over}"
        );
        assert!(m.spills(2 * GIB + 1));
    }

    #[test]
    fn slowdown_grows_with_overflow() {
        let m = MemoryModel::reducer_2gb();
        let s4 = m.slowdown(4 * GIB);
        let s8 = m.slowdown(8 * GIB);
        let s64 = m.slowdown(64 * GIB);
        assert!(s4 < s8 && s8 < s64);
        // Asymptote: 1 + burst + spill_cost.
        assert!(s64 < 1.0 + 0.30 + 0.67);
    }

    #[test]
    fn unlimited_never_spills() {
        let m = MemoryModel::unlimited();
        assert_eq!(m.slowdown(u64::MAX / 2), 1.0);
        assert!(!m.spills(u64::MAX / 2));
    }

    #[test]
    fn terasort_regime_switch_near_n15() {
        // 128 MB per node: capacity crossed between n = 15 and n = 16.
        let m = MemoryModel::reducer_2gb();
        let shard = 128 * 1024 * 1024u64;
        assert!(!m.spills(15 * shard));
        assert!(m.spills(16 * shard + 1));
    }

    #[test]
    fn validation() {
        assert!(MemoryModel::reducer_2gb().validate().is_ok());
        let bad = MemoryModel {
            capacity_bytes: 0,
            ..MemoryModel::reducer_2gb()
        };
        assert!(bad.validate().is_err());
        let bad = MemoryModel {
            spill_cost_factor: -0.1,
            ..MemoryModel::reducer_2gb()
        };
        assert!(bad.validate().is_err());
    }
}
