//! Online statistics and percentile helpers for simulation metrics.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use ipso_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics on non-finite samples.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "statistics require finite samples");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`m2 / n`; 0 with fewer than two samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2 / (n − 1)`; 0 with fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `p`-th percentile (0–100) of a sample set, by linear interpolation
/// between closest ranks.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`. Samples are ranked in IEEE
/// total order, so non-finite values sort deterministically instead of
/// panicking.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [1.0, 2.5, -3.0, 4.0, 10.0, 0.5];
        let mut s = OnlineStats::new();
        for v in data {
            s.push(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-3.0));
        assert_eq!(s.max(), Some(10.0));
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &v in &data {
            all.push(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &data[..37] {
            left.push(v);
        }
        for &v in &data[37..] {
            right.push(v);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(4.0));
        assert_eq!(percentile(&data, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_on_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&data, 50.0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "finite samples")]
    fn nan_sample_rejected() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }
}
