//! Polynomial least squares of arbitrary degree.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::matrix::Matrix;
use crate::FitError;

/// Result of fitting `y = c0 + c1·x + … + cd·x^d`.
///
/// # Example
///
/// ```
/// use ipso_fit::fit_polynomial;
///
/// # fn main() -> Result<(), ipso_fit::FitError> {
/// let x: Vec<f64> = (0..8).map(|v| v as f64).collect();
/// let y: Vec<f64> = x.iter().map(|v| 1.0 + 2.0 * v + 0.5 * v * v).collect();
/// let fit = fit_polynomial(&x, &y, 2)?;
/// assert!((fit.coefficients[2] - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialFit {
    /// Coefficients in ascending-power order: `coefficients[k]` multiplies
    /// `x^k`.
    pub coefficients: Vec<f64>,
    /// Goodness-of-fit statistics.
    pub gof: GoodnessOfFit,
}

impl PolynomialFit {
    /// Degree of the fitted polynomial.
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Evaluates the fitted polynomial at `x` (Horner's method).
    pub fn predict(&self, x: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Returns the highest-power coefficient, i.e. the leading term the
    /// asymptotic analysis in the paper keeps (Eqs. 14–15).
    pub fn leading_coefficient(&self) -> f64 {
        *self
            .coefficients
            .last()
            .expect("polynomial has at least one coefficient")
    }
}

/// Fits a polynomial of the given `degree` by least squares on the normal
/// equations.
///
/// # Errors
///
/// Returns an error if fewer than `degree + 1` points are supplied, inputs
/// are mismatched or non-finite, or the Vandermonde system is singular
/// (e.g. repeated `x` values with high degree).
pub fn fit_polynomial(x: &[f64], y: &[f64], degree: usize) -> Result<PolynomialFit, FitError> {
    validate_xy(x, y, degree + 1)?;
    let rows: Vec<Vec<f64>> = x
        .iter()
        .map(|&xv| (0..=degree).map(|p| xv.powi(p as i32)).collect())
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let design = Matrix::from_rows(&row_refs);
    let yv = Matrix::column(y);
    let coefficients = Matrix::least_squares(&design, &yv)?.into_column_vec();

    let predicted: Vec<f64> = x
        .iter()
        .map(|&xv| coefficients.iter().rev().fold(0.0, |acc, &c| acc * xv + c))
        .collect();
    let gof = GoodnessOfFit::from_predictions(y, &predicted, degree + 1);
    Ok(PolynomialFit { coefficients, gof })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_zero_is_the_mean() {
        let fit = fit_polynomial(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], 0).unwrap();
        assert_eq!(fit.degree(), 0);
        assert!((fit.coefficients[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_quadratic() {
        let x: Vec<f64> = (0..10).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 - v + 2.0 * v * v).collect();
        let fit = fit_polynomial(&x, &y, 2).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-8);
        assert!((fit.coefficients[1] + 1.0).abs() < 1e-8);
        assert!((fit.coefficients[2] - 2.0).abs() < 1e-9);
        assert!((fit.leading_coefficient() - 2.0).abs() < 1e-9);
        assert!(fit.gof.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn recovers_cubic() {
        let x: Vec<f64> = (1..12).map(|v| v as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.1 * v.powi(3) - v + 2.0).collect();
        let fit = fit_polynomial(&x, &y, 3).unwrap();
        assert!((fit.coefficients[3] - 0.1).abs() < 1e-7);
        assert!((fit.predict(4.0) - (0.1 * 64.0 - 4.0 + 2.0)).abs() < 1e-6);
    }

    #[test]
    fn too_few_points_for_degree() {
        let err = fit_polynomial(&[1.0, 2.0], &[1.0, 2.0], 2).unwrap_err();
        assert_eq!(
            err,
            FitError::TooFewPoints {
                points: 2,
                required: 3
            }
        );
    }

    #[test]
    fn repeated_x_is_singular_for_high_degree() {
        let err = fit_polynomial(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 2).unwrap_err();
        assert_eq!(err, FitError::Singular);
    }

    #[test]
    fn predict_matches_horner_evaluation() {
        let fit = PolynomialFit {
            coefficients: vec![1.0, -2.0, 0.5],
            gof: GoodnessOfFit::from_predictions(&[0.0], &[0.0], 1),
        };
        // 1 - 2*3 + 0.5*9 = -0.5
        assert!((fit.predict(3.0) + 0.5).abs() < 1e-12);
    }
}
