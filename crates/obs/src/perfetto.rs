//! Chrome trace-event (Perfetto) export.
//!
//! Serializes recorded [`TraceEvent`]s into the JSON object format
//! understood by `chrome://tracing` and [ui.perfetto.dev]: a single
//! process (`pid` 1) with one thread per track, named via `ph:"M"`
//! `thread_name` metadata, `ph:"X"` complete events for spans and
//! `ph:"i"` thread-scoped instants. Timestamps are microseconds.
//!
//! The output is deterministic: tracks are numbered in first-seen order
//! and events appear in recording order, which keeps golden-file tests
//! stable.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::span::{SpanKind, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
}

/// Formats a microsecond timestamp with fixed sub-microsecond precision.
fn fmt_us(us: f64) -> String {
    format!("{us:.3}")
}

/// Serializes events into Chrome trace-event JSON.
///
/// Track ids (`tid`) are assigned in order of first appearance, starting
/// at 1; each track gets a `thread_name` metadata record so the viewer
/// shows the track label (`driver`, `executor-0`, …).
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut tids: BTreeMap<&str, u32> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for e in events {
        if !tids.contains_key(e.track.as_str()) {
            tids.insert(&e.track, tids.len() as u32 + 1);
            order.push(&e.track);
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |record: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&record);
    };

    for track in &order {
        let tid = tids[track];
        let mut name = String::new();
        escape_json(track, &mut name);
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    for e in events {
        let tid = tids[e.track.as_str()];
        let mut name = String::new();
        escape_json(&e.name, &mut name);
        let mut cat = String::new();
        escape_json(&e.cat, &mut cat);
        let record = match e.kind {
            SpanKind::Complete { start, end } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                fmt_us(start * 1e6),
                fmt_us((end - start) * 1e6),
            ),
            SpanKind::Instant { at } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"pid\":1,\
                 \"tid\":{tid},\"ts\":{},\"s\":\"t\"}}",
                fmt_us(at * 1e6),
            ),
        };
        emit(record, &mut out, &mut first);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Exports `events` to a file at `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, export_chrome_trace(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &str, name: &str, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            track: track.into(),
            name: name.into(),
            cat: "test".into(),
            kind: SpanKind::Complete { start, end },
        }
    }

    #[test]
    fn tracks_numbered_in_first_seen_order() {
        let events = vec![
            span("driver", "init", 0.0, 1.0),
            span("executor-0", "map", 1.0, 2.0),
            span("driver", "merge", 2.0, 3.0),
        ];
        let json = export_chrome_trace(&events);
        // driver first-seen first → tid 1; executor-0 → tid 2.
        assert!(json.contains("\"args\":{\"name\":\"driver\"}"));
        assert!(
            json.contains("\"name\":\"init\",\"cat\":\"test\",\"ph\":\"X\",\"pid\":1,\"tid\":1")
        );
        assert!(json.contains("\"name\":\"map\",\"cat\":\"test\",\"ph\":\"X\",\"pid\":1,\"tid\":2"));
        assert!(
            json.contains("\"name\":\"merge\",\"cat\":\"test\",\"ph\":\"X\",\"pid\":1,\"tid\":1")
        );
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = export_chrome_trace(&[span("t", "s", 1.5, 2.0)]);
        assert!(json.contains("\"ts\":1500000.000,\"dur\":500000.000"));
    }

    #[test]
    fn instants_use_thread_scope() {
        let events = vec![TraceEvent {
            track: "executor-3".into(),
            name: "straggler".into(),
            cat: "cluster".into(),
            kind: SpanKind::Instant { at: 0.25 },
        }];
        let json = export_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":250000.000,\"s\":\"t\""));
    }

    #[test]
    fn names_are_json_escaped() {
        let json = export_chrome_trace(&[span("t\"rack", "na\\me\n", 0.0, 0.0)]);
        assert!(json.contains("t\\\"rack"));
        assert!(json.contains("na\\\\me\\n"));
    }

    #[test]
    fn empty_event_list_is_valid_json() {
        let json = export_chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
    }
}
