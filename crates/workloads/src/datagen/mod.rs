//! Synthetic data generators matching the paper's inputs.
//!
//! * [`dictionary`] — random text drawn from a 1000-word UNIX-style
//!   dictionary (WordCount / Sort working sets);
//! * [`teragen`] — TeraGen-style 100-byte records with 10-byte keys;
//! * [`ratings`] — user×item rating triples (Collaborative Filtering);
//! * [`points`] — labeled feature vectors (Bayes, SVM, Random Forest);
//! * [`graph`] — random directed graphs (NWeight).

pub mod dictionary;
pub mod graph;
pub mod points;
pub mod ratings;
pub mod teragen;

pub use dictionary::{random_lines, unix_dictionary, DICTIONARY_SIZE};
pub use graph::{random_graph, Edge};
pub use points::{random_points, LabeledPoint};
pub use ratings::{random_ratings, Rating};
pub use teragen::{teragen_records, TeraRecord, TERA_RECORD_BYTES};
