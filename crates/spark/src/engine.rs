//! Stage-DAG execution.
//!
//! # Host-side execution
//!
//! [`run_job`] runs in three phases so the expensive part — computing
//! each stage's wave schedule — can use `spec.engine.threads` host
//! threads without changing a single output byte:
//!
//! 1. **Plan** (sequential): per-stage RNG draws and duration vectors, in
//!    stage order, so the straggler stream is identical to the
//!    sequential engine's;
//! 2. **Schedule** (parallel wave over stages): actual, idealized and
//!    no-straggler schedules per stage, with any observability records
//!    captured thread-locally ([`ipso_obs::capture`]);
//! 3. **Walk** (sequential): the virtual clock advances stage by stage,
//!    merging each stage's captured records in stage order so the global
//!    observability stream is byte-identical to a sequential run.

use ipso_cluster::{resolve_faults, run_wave_schedule, uniform_wave_makespan};
use ipso_cluster::{
    CentralScheduler, ClusterError, FaultOutcome, FaultSummary, RecoveryEventKind, StragglerModel,
    TaskSchedule,
};
use ipso_sim::SimRng;

use crate::eventlog::{write_event_log, SparkEvent};
use crate::job::SparkJobSpec;

/// Read rate for task input, bytes/s (cached partitions / local HDFS
/// blocks stream at roughly memory-page-cache speed on m4-class nodes).
pub(crate) const INPUT_READ_RATE: f64 = 150.0e6;

/// The result of one Spark-like job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkRun {
    /// Total wall-clock time, seconds.
    pub total_time: f64,
    /// Per-stage wall-clock latencies, in DAG order.
    pub stage_times: Vec<f64>,
    /// Scale-out-induced portion: broadcasts, dispatch serialization,
    /// first-wave deserialization, barrier skew, and — with faults
    /// enabled — wasted recovery work and lineage recomputation, seconds.
    pub overhead_time: f64,
    /// Per-stage fault-recovery summaries, in DAG order. Empty when the
    /// fault model is disabled.
    pub fault_summaries: Vec<FaultSummary>,
    /// The Spark-style JSON event log of the run.
    pub log: String,
}

impl SparkRun {
    /// Fraction of wall-clock time that is scale-out-induced overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_time > 0.0 {
            self.overhead_time / self.total_time
        } else {
            0.0
        }
    }
}

/// The pre-drawn inputs of one stage's schedule: everything that
/// consumes the RNG stream, computed sequentially in stage order.
struct StagePlan {
    /// Serialized driver broadcast time.
    broadcast: f64,
    /// Nominal task time (compute + input read) before noise.
    base: f64,
    /// Spill multiplier from executor memory pressure.
    mem_mult: f64,
    /// Number of first-wave tasks paying the one-time executor cost.
    first_wave: usize,
    /// Per-task durations with first-wave cost, straggler noise and —
    /// when faults are enabled — recovery latency.
    durations: Vec<f64>,
    /// Fault resolution for this stage, when the model is enabled.
    fault: Option<FaultOutcome>,
}

/// One stage's computed schedules, ready for the sequential clock walk.
struct StageSchedule {
    /// The actual wave schedule.
    schedule: TaskSchedule,
    /// Makespan of the idealized (free dispatch, no first wave, no
    /// noise) schedule.
    ideal_makespan: f64,
    /// No-straggler durations and their makespan under the real
    /// scheduler, computed only when observability is on.
    no_straggler: Option<(Vec<f64>, f64)>,
    /// Observability records captured while scheduling.
    records: ipso_obs::LocalRecords,
}

/// Executes the job's stage DAG on `m` executors.
///
/// Per stage, in order:
///
/// 0. the driver launches the `m` executors serially (overhead linear
///    in `m`);
/// 1. the driver broadcasts `broadcast_bytes` to each executor *serially*
///    (the \[12\] bottleneck) — pure scale-out-induced time;
/// 2. tasks are dispatched centrally and run in waves; tasks of the first
///    wave pay the executor's one-time deserialization cost;
/// 3. tasks whose executor working set (cached partitions × tasks per
///    executor) exceeds executor memory run `spill_slowdown`× slower;
/// 4. the stage's shuffle output is redistributed m-to-m with the incast
///    goodput penalty at each receiver.
///
/// # Panics
///
/// Panics if the spec fails validation or — with faults enabled — the
/// run hits an unrecoverable fault ([`try_run_job`] returns those as
/// typed errors instead).
pub fn run_job(spec: &SparkJobSpec) -> SparkRun {
    try_run_job(spec).unwrap_or_else(|e| panic!("unrecoverable fault: {e}"))
}

/// [`run_job`] with fault-recovery failures surfaced as typed errors.
///
/// With `spec.faults` enabled, each stage's planned durations pass
/// through [`resolve_faults`] (in the sequential plan phase, so the RNG
/// stream stays byte-deterministic for any thread count): recovery
/// latency lengthens the affected tasks, wasted work is charged into
/// `overhead_time`, and a node crash in stage `k > 0` additionally
/// triggers lineage recomputation of the crashed node's stage-`k−1`
/// partitions — Spark's RDD recovery — charged as both clock time and
/// overhead.
///
/// # Errors
///
/// Returns [`ClusterError::RetriesExhausted`] or
/// [`ClusterError::WastedWorkExceeded`] from any stage's resolution.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn try_run_job(spec: &SparkJobSpec) -> Result<SparkRun, ClusterError> {
    spec.validate().expect("invalid spark job spec");
    let m = spec.parallelism;
    let mut rng =
        SimRng::seed_from(spec.seed ^ (u64::from(m) << 32) ^ u64::from(spec.problem_size));

    // Phase 1 — plan. All RNG consumption happens here, sequentially in
    // stage order, so the straggler stream is independent of how the
    // schedules are later computed.
    let mut plans: Vec<StagePlan> = Vec::with_capacity(spec.stages.len());
    for stage in &spec.stages {
        let broadcast = spec.network.broadcast_time(stage.broadcast_bytes, m);

        // Memory pressure: tasks per executor × cached partition size.
        let tasks_per_exec = (stage.tasks as f64 / m as f64).ceil();
        let working_set = if stage.caches_input {
            (stage.input_bytes_per_task as f64 * tasks_per_exec) as u64
        } else {
            stage.input_bytes_per_task
        };
        let mem_mult = if working_set > spec.executor_memory {
            spec.spill_slowdown
        } else {
            1.0
        };

        // Task durations with first-wave cost and straggler noise.
        let base = stage.task_compute + stage.input_bytes_per_task as f64 / INPUT_READ_RATE;
        let first_wave = m.min(stage.tasks) as usize;
        let durations: Vec<f64> = (0..stage.tasks as usize)
            .map(|i| {
                let fw = if i < first_wave {
                    spec.first_wave_cost
                } else {
                    0.0
                };
                base * mem_mult * spec.straggler.multiplier(&mut rng) + fw
            })
            .collect();

        // Fault resolution per stage: recovery latency lengthens the
        // tasks that get rescheduled below. Disabled (the default)
        // consumes zero RNG draws.
        let fault: Option<FaultOutcome> = if spec.faults.enabled() {
            Some(resolve_faults(
                &durations,
                m as usize,
                &spec.faults,
                &spec.recovery,
                &mut rng,
            )?)
        } else {
            None
        };
        let durations = match &fault {
            Some(outcome) => outcome.durations.clone(),
            None => durations,
        };
        plans.push(StagePlan {
            broadcast,
            base,
            mem_mult,
            first_wave,
            durations,
            fault,
        });
    }

    // Phase 2 — schedule, as a parallel wave over stages. Each worker
    // captures its observability records thread-locally; they are merged
    // in stage order during the clock walk, so the global stream is
    // byte-identical to a sequential run for any thread count.
    let schedules: Vec<StageSchedule> =
        ipso_sim::par::ordered_map_indexed(spec.engine.threads, plans.len(), |i| {
            let plan = &plans[i];
            let ((schedule, ideal_makespan, no_straggler), records) = ipso_obs::capture(|| {
                let schedule = run_wave_schedule(&plan.durations, m as usize, &spec.scheduler);
                // The overhead yardstick: an idealized schedule with free
                // dispatch, no first-wave cost and no noise. Its tasks are
                // uniform, so the allocation-free closed form applies.
                let ideal_makespan = uniform_wave_makespan(
                    plan.base * plan.mem_mult,
                    plan.durations.len(),
                    m as usize,
                    &CentralScheduler::idealized(),
                );
                // No-straggler schedule under the *same* scheduler, used
                // to split overhead into tail and scheduling shares.
                let no_straggler = if ipso_obs::enabled() {
                    let ns: Vec<f64> = (0..plan.durations.len())
                        .map(|i| {
                            let fw = if i < plan.first_wave {
                                spec.first_wave_cost
                            } else {
                                0.0
                            };
                            plan.base * plan.mem_mult + fw
                        })
                        .collect();
                    let ns_makespan = run_wave_schedule(&ns, m as usize, &spec.scheduler).makespan;
                    Some((ns, ns_makespan))
                } else {
                    None
                };
                (schedule, ideal_makespan, no_straggler)
            });
            StageSchedule {
                schedule,
                ideal_makespan,
                no_straggler,
                records,
            }
        });

    // Phase 3 — walk the virtual clock through the stages in order.
    let mut clock = 0.0f64;
    let mut overhead = 0.0f64;
    let mut stage_times = Vec::with_capacity(spec.stages.len());
    let mut events = vec![SparkEvent::ApplicationStart {
        app_name: spec.name.clone(),
        timestamp: 0.0,
    }];

    // Executor launch is serialized at the driver: pure scale-out-induced
    // time linear in m (the driver registers one container at a time).
    let launch = f64::from(m) * spec.executor_launch_cost;
    clock += launch;
    overhead += launch;
    if ipso_obs::enabled() {
        ipso_obs::counter_add("spark.jobs", 1);
        ipso_obs::record_span("driver", "executor-launch", "spark", 0.0, launch);
        ipso_obs::gauge_add("overhead.scheduling_s", launch);
    }

    for (((stage_id, stage), plan), staged) in
        spec.stages.iter().enumerate().zip(&plans).zip(schedules)
    {
        let submitted = clock;
        events.push(SparkEvent::StageSubmitted {
            stage_id: stage_id as u32,
            stage_name: stage.name.clone(),
            num_tasks: stage.tasks,
            submission_time: submitted,
        });

        // 1. Driver broadcast (serialized unicasts).
        let broadcast = plan.broadcast;
        clock += broadcast;
        overhead += broadcast;
        if ipso_obs::enabled() {
            stage.record_metrics();
            if broadcast > 0.0 {
                ipso_obs::record_span(
                    "driver",
                    &format!("broadcast-{}", stage.name),
                    "spark",
                    submitted,
                    submitted + broadcast,
                );
            }
            ipso_obs::gauge_add("overhead.broadcast_s", broadcast);
        }

        // 2./3. The schedules computed in phase 2; their captured records
        // land in the global stream here, in stage order.
        ipso_obs::merge(staged.records);
        let schedule = staged.schedule;
        let stage_overhead = (schedule.makespan - staged.ideal_makespan).max(0.0);
        overhead += stage_overhead;
        if let Some((no_straggler, ns_makespan)) = &staged.no_straggler {
            let tail = (schedule.makespan - *ns_makespan).clamp(0.0, stage_overhead);
            ipso_obs::gauge_add("overhead.straggler_tail_s", tail);
            ipso_obs::gauge_add("overhead.scheduling_s", stage_overhead - tail);
            for record in &schedule.records {
                let track = format!("executor-{}", record.executor);
                ipso_obs::record_span(
                    &track,
                    &format!("task-{}", record.task_id),
                    "spark",
                    clock + record.start,
                    clock + record.end,
                );
                let nominal = no_straggler[record.task_id as usize];
                if nominal > 0.0 && record.duration() / nominal >= StragglerModel::SEVERE_MULTIPLIER
                {
                    ipso_obs::record_instant(&track, "straggler", "spark", clock + record.end);
                }
            }
        }
        if let Some(outcome) = &plan.fault {
            if ipso_obs::enabled() {
                for event in &outcome.summary.events {
                    let record = &schedule.records[event.task as usize];
                    let track = format!("executor-{}", record.executor);
                    let name = match event.kind {
                        RecoveryEventKind::AttemptFailed { .. } => "task-retry",
                        RecoveryEventKind::OutputLost { .. } => "output-lost",
                        RecoveryEventKind::Speculated { .. } => "speculative-copy",
                    };
                    ipso_obs::record_instant(&track, name, "spark", clock + record.end);
                }
            }
        }
        clock += schedule.makespan;

        // Fault recovery accounting. The recovery *latency* is already in
        // the lengthened task durations above; the re-executed *work* is
        // scale-out-induced workload (the sequential reference never
        // re-executes), so it is charged into the overhead share.
        if let Some(outcome) = &plan.fault {
            overhead += outcome.summary.wasted_total();

            // Lineage recomputation: a node crash in stage k > 0 also
            // loses the node's resident stage-(k−1) partitions, which
            // must be recomputed from lineage before this stage's shuffle
            // can complete. Crashed nodes recompute in parallel, so the
            // clock pays the slowest node while Wo pays the total work.
            if stage_id > 0 && !outcome.crashed_nodes.is_empty() {
                let prev = &plans[stage_id - 1].durations;
                let mut recompute_work = 0.0f64;
                let mut recompute_makespan = 0.0f64;
                for &node in &outcome.crashed_nodes {
                    let node_work: f64 = prev.iter().skip(node as usize).step_by(m as usize).sum();
                    recompute_work += node_work;
                    recompute_makespan = recompute_makespan.max(node_work);
                }
                if ipso_obs::enabled() && recompute_makespan > 0.0 {
                    ipso_obs::record_span(
                        "driver",
                        &format!("lineage-recompute-{}", stage.name),
                        "spark",
                        clock,
                        clock + recompute_makespan,
                    );
                    ipso_obs::counter_add(
                        "spark.lineage_recomputes",
                        outcome.crashed_nodes.len() as u64,
                    );
                    ipso_obs::gauge_add("overhead.lineage_recompute_s", recompute_work);
                }
                clock += recompute_makespan;
                overhead += recompute_work;
            }
        }

        // 4. Shuffle boundary: each of the m receivers pulls total/m bytes
        // at incast-degraded goodput.
        if stage.shuffle_output_per_task > 0 {
            let total = stage.total_shuffle_output();
            let per_receiver = total as f64 / m as f64;
            let shuffle = per_receiver / spec.network.incast_goodput(m);
            if ipso_obs::enabled() {
                ipso_obs::record_span(
                    "driver",
                    &format!("shuffle-{}", stage.name),
                    "spark",
                    clock,
                    clock + shuffle,
                );
                // Incast degradation beyond undegraded worker goodput:
                // informational, not part of the engine's Wo accounting.
                let undegraded = per_receiver / spec.network.incast_goodput(1);
                ipso_obs::gauge_add("spark.shuffle_incast_excess_s", shuffle - undegraded);
            }
            clock += shuffle;
        }

        let stage_time = clock - submitted;
        stage_times.push(stage_time);
        ipso_obs::record_span("driver", &stage.name, "spark", submitted, clock);
        events.push(SparkEvent::StageCompleted {
            stage_id: stage_id as u32,
            stage_name: stage.name.clone(),
            num_tasks: stage.tasks,
            submission_time: submitted,
            completion_time: clock,
        });
    }

    events.push(SparkEvent::ApplicationEnd { timestamp: clock });
    let log = write_event_log(&events).expect("event log serialization cannot fail");
    let fault_summaries: Vec<FaultSummary> = plans
        .into_iter()
        .filter_map(|p| p.fault.map(|o| o.summary))
        .collect();
    Ok(SparkRun {
        total_time: clock,
        stage_times,
        overhead_time: overhead,
        fault_summaries,
        log,
    })
}

/// The sequential execution reference (speedup numerator): the whole
/// workload streamed through one processing unit — no broadcast, no
/// dispatch, no first-wave cost, no stragglers (mean multiplier), no
/// cache spill (partitions are processed one at a time), shuffle data
/// repartitioned at local rates.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn run_sequential_reference(spec: &SparkJobSpec) -> f64 {
    spec.validate().expect("invalid spark job spec");
    let mean_mult = spec.straggler.mean_multiplier();
    let mut total = 0.0;
    for stage in &spec.stages {
        let base = stage.task_compute + stage.input_bytes_per_task as f64 / INPUT_READ_RATE;
        total += stage.tasks as f64 * base * mean_mult;
        if stage.shuffle_output_per_task > 0 {
            // Local repartition at worker disk speed.
            total += stage.total_shuffle_output() as f64 / spec.cluster.worker.disk_bandwidth;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventlog::parse_event_log;
    use crate::stage::StageSpec;
    use ipso_cluster::StragglerModel;

    fn simple_job(n_tasks: u32, m: u32) -> SparkJobSpec {
        SparkJobSpec::emr("test", n_tasks, m)
            .stage(StageSpec::new("map", n_tasks).with_task_compute(1.0))
    }

    #[test]
    fn single_stage_wall_clock_is_waves() {
        let mut job = simple_job(8, 4);
        job.straggler = StragglerModel::None;
        job.first_wave_cost = 0.0;
        job.executor_launch_cost = 0.0;
        let run = run_job(&job);
        // Two waves of 1 s tasks plus small dispatch.
        assert!(
            (2.0..2.3).contains(&run.total_time),
            "t = {}",
            run.total_time
        );
    }

    #[test]
    fn sequential_reference_sums_all_tasks() {
        let mut job = simple_job(8, 4);
        job.straggler = StragglerModel::None;
        let t = run_sequential_reference(&job);
        assert!((t - 8.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_counts_as_overhead() {
        let mut job = SparkJobSpec::emr("bcast", 4, 4).stage(
            StageSpec::new("iter", 4)
                .with_task_compute(0.5)
                .with_broadcast(50 * 1024 * 1024),
        );
        job.straggler = StragglerModel::None;
        let run = run_job(&job);
        // 4 serialized 50 MB unicasts at 250 MB/s ≈ 0.8 s.
        assert!(run.overhead_time > 0.7, "overhead = {}", run.overhead_time);
        assert!(run.overhead_fraction() > 0.3);
    }

    #[test]
    fn broadcast_overhead_grows_linearly_with_m() {
        let mk = |m: u32| {
            let mut j = SparkJobSpec::emr("bcast", m, m).stage(
                StageSpec::new("iter", m)
                    .with_task_compute(0.5)
                    .with_broadcast(20 * 1024 * 1024),
            );
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        let o10 = run_job(&mk(10)).overhead_time;
        let o40 = run_job(&mk(40)).overhead_time;
        assert!(
            o40 > 3.5 * o10 && o40 < 4.5 * o10,
            "o10 = {o10}, o40 = {o40}"
        );
    }

    #[test]
    fn memory_pressure_slows_overloaded_executors() {
        let mk = |load: u32| {
            let m = 4;
            let n = m * load;
            let mut j = SparkJobSpec::emr("mem", n, m).stage(
                StageSpec::new("train", n)
                    .with_task_compute(1.0)
                    .with_input_bytes(1024 * 1024 * 1024)
                    .with_cached_input(true),
            );
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        // Load 2: 2 GiB cached per executor — fits in 4 GiB. Load 8: 8 GiB
        // — spills.
        let fit = run_job(&mk(2));
        let spill = run_job(&mk(8));
        let per_task_fit = fit.total_time / 2.0;
        let per_task_spill = spill.total_time / 8.0;
        assert!(per_task_spill > 1.4 * per_task_fit);
    }

    #[test]
    fn event_log_reflects_stages() {
        let mut job = simple_job(4, 2).stage(StageSpec::new("agg", 2).with_task_compute(0.2));
        job.executor_launch_cost = 0.0;
        let run = run_job(&job);
        let (stages, duration) = parse_event_log(&run.log).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage_name, "map");
        assert_eq!(stages[1].stage_name, "agg");
        let sum: f64 = stages.iter().map(|s| s.latency).sum();
        assert!((sum - run.total_time).abs() < 1e-9);
        assert_eq!(duration, Some(run.total_time));
    }

    #[test]
    fn executor_launch_is_linear_overhead() {
        let mk = |m: u32| {
            let mut j = simple_job(m, m);
            j.straggler = StragglerModel::None;
            j.first_wave_cost = 0.0;
            j
        };
        let o8 = run_job(&mk(8)).overhead_time;
        let o64 = run_job(&mk(64)).overhead_time;
        assert!(
            o64 > 6.0 * o8,
            "launch overhead should grow ~linearly: {o8} -> {o64}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let job = simple_job(16, 4);
        assert_eq!(run_job(&job), run_job(&job));
    }

    fn multi_stage_job() -> SparkJobSpec {
        SparkJobSpec::emr("multi", 32, 8)
            .stage(
                StageSpec::new("load", 32)
                    .with_task_compute(0.4)
                    .with_input_bytes(64 * 1024 * 1024)
                    .with_shuffle_output(8 * 1024 * 1024),
            )
            .stage(
                StageSpec::new("train", 32)
                    .with_task_compute(0.6)
                    .with_broadcast(10 * 1024 * 1024),
            )
            .stage(StageSpec::new("agg", 8).with_task_compute(0.2))
    }

    #[test]
    fn thread_count_never_changes_results() {
        let mut job = multi_stage_job();
        let baseline = run_job(&job);
        for threads in [0, 2, 3, 8] {
            job.engine.threads = threads;
            assert_eq!(run_job(&job), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn observability_stream_is_identical_for_any_thread_count() {
        let _guard = obs_test_lock();
        let collect = |threads: usize| {
            ipso_obs::set_enabled(true);
            ipso_obs::reset();
            let mut job = multi_stage_job();
            job.engine.threads = threads;
            let run = run_job(&job);
            let events = ipso_obs::take_events();
            let metrics = ipso_obs::snapshot();
            ipso_obs::set_enabled(false);
            ipso_obs::reset();
            (run, events, metrics)
        };
        let sequential = collect(1);
        assert!(!sequential.1.is_empty());
        for threads in [2, 4] {
            assert_eq!(collect(threads), sequential, "threads = {threads}");
        }
    }

    /// Serializes tests that toggle the global obs recorder.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_faults_leave_runs_untouched() {
        let job = multi_stage_job();
        let run = run_job(&job);
        assert!(run.fault_summaries.is_empty());
        assert_eq!(run, run_job(&job));
    }

    #[test]
    fn fault_injection_is_deterministic_and_grows_overhead() {
        let baseline = run_job(&multi_stage_job());
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(0.3);
        job.recovery.max_attempts = 8;
        let a = run_job(&job);
        let b = run_job(&job);
        assert_eq!(a, b);
        assert_eq!(a.fault_summaries.len(), job.stages.len());
        let wasted: f64 = a.fault_summaries.iter().map(|s| s.wasted_total()).sum();
        assert!(wasted > 0.0, "p = 0.3 over 72 tasks must waste work");
        assert!(a.overhead_time >= baseline.overhead_time + wasted - 1e-9);
        assert!(a.total_time > baseline.total_time);
    }

    #[test]
    fn node_crash_in_a_later_stage_triggers_lineage_recompute() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel {
            node_crash_prob: 1.0,
            ..ipso_cluster::FaultModel::none()
        };
        let crash = run_job(&job);
        // Every node crashes in every stage: stages 1 and 2 must replay
        // their predecessors' partitions from lineage on top of the
        // directly lost outputs.
        let crash_wasted: f64 = crash.fault_summaries.iter().map(|s| s.wasted_total()).sum();
        assert!(
            crash.overhead_time > crash_wasted,
            "lineage recompute work must be charged beyond the per-stage waste: {} <= {}",
            crash.overhead_time,
            crash_wasted
        );
        let baseline = run_job(&multi_stage_job());
        assert!(crash.total_time > baseline.total_time);
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(1.0);
        let err = try_run_job(&job).expect_err("certain failure must exhaust retries");
        assert!(matches!(
            err,
            ClusterError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        let mut job = multi_stage_job();
        job.faults = ipso_cluster::FaultModel::flaky(0.25);
        job.recovery.max_attempts = 8;
        job.recovery.speculation = true;
        let baseline = run_job(&job);
        for threads in [0, 2, 4] {
            job.engine.threads = threads;
            assert_eq!(run_job(&job), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn shuffle_adds_boundary_time() {
        let mut with = SparkJobSpec::emr("s", 8, 4).stage(
            StageSpec::new("map", 8)
                .with_task_compute(0.5)
                .with_shuffle_output(20 * 1024 * 1024),
        );
        with.straggler = StragglerModel::None;
        let mut without =
            SparkJobSpec::emr("s", 8, 4).stage(StageSpec::new("map", 8).with_task_compute(0.5));
        without.straggler = StragglerModel::None;
        assert!(run_job(&with).total_time > run_job(&without).total_time + 0.5);
    }
}
