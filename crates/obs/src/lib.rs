//! Unified observability for the IPSO engines.
//!
//! Three pieces, shared by every engine crate:
//!
//! * [`span`] — a low-overhead span tracer. Engines record *virtual-time*
//!   spans (the simulated clock the engines compute analytically) via
//!   [`record_span`] / [`VirtualSpan`], and *wall-clock* spans via the
//!   RAII [`WallSpan`] guard.
//! * [`metrics`] — a global registry of atomic counters, gauges and
//!   log₂-bucketed histograms.
//! * [`perfetto`] — a Chrome trace-event (Perfetto-loadable) JSON
//!   exporter over the recorded spans: one track per executor, `ph:"X"`
//!   duration events and `ph:"i"` instants.
//!
//! Everything is gated behind one global flag. When tracing is disabled
//! (the default) every instrumentation call reduces to a single relaxed
//! atomic load, so the engines pay essentially nothing; see the
//! `obs_overhead` bench in `crates/bench`.
//!
//! # Example
//!
//! ```
//! ipso_obs::set_enabled(true);
//! ipso_obs::reset();
//! ipso_obs::record_span("executor-0", "map", "mapreduce", 0.0, 1.5);
//! ipso_obs::counter_add("tasks_launched", 1);
//! let json = ipso_obs::perfetto::export_chrome_trace(&ipso_obs::take_events());
//! assert!(json.contains("\"ph\":\"X\""));
//! ipso_obs::set_enabled(false);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

pub mod metrics;
pub mod perfetto;
pub mod span;

pub use metrics::{
    counter_add, counter_value, gauge_add, gauge_set, gauge_value, histogram_record, reset_metrics,
    snapshot, MetricsSnapshot,
};
pub use perfetto::{export_chrome_trace, write_chrome_trace};
pub use span::{
    clear_events, record_instant, record_span, snapshot_events, take_events, SpanKind, TraceEvent,
    VirtualSpan, WallSpan,
};

/// The global instrumentation switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled.
///
/// This is the only cost instrumented code pays when tracing is off: a
/// single relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded spans and metrics (the enable flag is untouched).
pub fn reset() {
    span::clear_events();
    metrics::reset_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Other tests toggle the flag; just exercise the transitions.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
