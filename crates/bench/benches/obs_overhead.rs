//! Overhead of the observability layer on the MapReduce engine.
//!
//! The design contract of `ipso-obs` is that disabled instrumentation
//! costs one relaxed atomic load per touch point. This bench measures
//! the engine with tracing off and on, measures the disabled check
//! itself, and **asserts** that the disabled-mode instrumentation cost
//! stays below 5% of the engine's runtime.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipso_workloads::sort;

fn run_once() {
    let spec = sort::job_spec(16);
    let splits = sort::make_splits(16, 1);
    black_box(ipso_mapreduce::run_scale_out(
        black_box(&spec),
        &sort::SortMapper,
        &sort::SortReducer,
        black_box(&splits),
    ));
}

fn bench_disabled_vs_enabled(c: &mut Criterion) {
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
    c.bench_function("mapreduce_sort_n16_tracing_off", |b| b.iter(run_once));

    ipso_obs::set_enabled(true);
    c.bench_function("mapreduce_sort_n16_tracing_on", |b| {
        b.iter(|| {
            ipso_obs::reset();
            run_once()
        })
    });
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
}

/// Counts how many times the engine touches the observability layer in
/// one fully-enabled run: every recorded span, instant, counter
/// increment, gauge write and histogram sample corresponds to at most
/// one `ipso_obs::enabled()` check on the disabled path (guard blocks
/// cover several recordings with a single check, so this over-counts).
fn count_touch_points() -> u64 {
    ipso_obs::set_enabled(true);
    ipso_obs::reset();
    run_once();
    let events = ipso_obs::take_events().len() as u64;
    let snap = ipso_obs::snapshot();
    // A count-style counter's value equals its number of increments; a
    // `*_bytes` counter's value is a byte total, and its increments are
    // paired 1:1 with a sibling count counter under the same guard.
    let counters: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| !name.ends_with("_bytes"))
        .map(|(_, v)| v)
        .sum();
    let gauges = snap.gauges.len() as u64;
    let samples: u64 = snap.histograms.values().map(|h| h.count).sum();
    ipso_obs::set_enabled(false);
    ipso_obs::reset();
    events + counters + gauges + samples
}

fn assert_disabled_overhead_below_5_percent(c: &mut Criterion) {
    // Engine runtime with tracing disabled.
    ipso_obs::set_enabled(false);
    let runs = 20u32;
    let start = Instant::now();
    for _ in 0..runs {
        run_once();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(runs);

    // Cost of one disabled check, measured in a tight loop.
    let checks = 4_000_000u64;
    let start = Instant::now();
    for _ in 0..checks {
        black_box(ipso_obs::enabled());
    }
    let per_check = start.elapsed().as_secs_f64() / checks as f64;

    let touches = count_touch_points();
    let disabled_cost = touches as f64 * per_check;
    let share = disabled_cost / per_run;
    c.bench_function("obs_disabled_check", |b| {
        b.iter(|| black_box(ipso_obs::enabled()))
    });
    println!(
        "obs overhead: {touches} touch points x {:.2} ns/check = {:.3} us \
         over a {:.3} ms run = {:.4}% (budget 5%)",
        per_check * 1e9,
        disabled_cost * 1e6,
        per_run * 1e3,
        share * 100.0
    );
    assert!(
        share < 0.05,
        "disabled instrumentation costs {:.2}% of the engine runtime (budget 5%)",
        share * 100.0
    );
}

criterion_group!(
    benches,
    bench_disabled_vs_enabled,
    assert_disabled_overhead_below_5_percent
);
criterion_main!(benches);
