//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate provides the (small) API subset the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngCore`] and [`Rng::gen_range`] over the common numeric ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, high-quality non-cryptographic PRNG. It is *not*
//! bit-compatible with upstream `StdRng` (ChaCha12); all consumers in
//! this workspace only rely on determinism-given-seed, which holds.

use std::ops::{Range, RangeInclusive};

/// The core of a random-number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng);
        // Floating rounding can land exactly on `hi`; nudge back inside.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
    }
}

/// Lemire-style unbiased bounded integers.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A sample of a [`Standard`]-distributed value (here: `f64` in
    /// `[0, 1)`, `bool`, or a full-width integer).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types generable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a standard-distribution sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn tiny_half_open_range_excludes_upper_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(6);
        // Must not overflow or hang.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn unit_samples_have_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
