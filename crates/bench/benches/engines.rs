//! Criterion benchmarks of the full engines: one MapReduce job
//! (map + shuffle + merge + reduce with real record processing) and one
//! Spark job (stage DAG with broadcast and shuffles), plus an end-to-end
//! scaling sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ipso_bench::SweepRunner;
use ipso_spark::run_job;
use ipso_workloads::{bayes, sort, wordcount};

fn bench_mapreduce_jobs(c: &mut Criterion) {
    let splits = sort::make_splits(16, 1);
    let spec = sort::job_spec(16);
    c.bench_function("mapreduce_sort_n16", |b| {
        b.iter(|| {
            ipso_mapreduce::run_scale_out(
                black_box(&spec),
                &sort::SortMapper,
                &sort::SortReducer,
                black_box(&splits),
            )
        })
    });

    let wc_splits = wordcount::make_splits(8, 1);
    let wc_spec = wordcount::job_spec(8);
    c.bench_function("mapreduce_wordcount_n8", |b| {
        b.iter(|| {
            ipso_mapreduce::run_scale_out(
                black_box(&wc_spec),
                &wordcount::WordCountMapper,
                &wordcount::WordCountReducer,
                black_box(&wc_splits),
            )
        })
    });
}

fn bench_spark_job(c: &mut Criterion) {
    let job = bayes::job(256, 64);
    c.bench_function("spark_bayes_n256_m64", |b| {
        b.iter(|| run_job(black_box(&job)))
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    c.bench_function("sort_sweep_to_n16", |b| {
        b.iter(|| sort::sweep(black_box(&[1, 2, 4, 8, 16])))
    });

    // The same sweep decomposed into per-n grid points through the
    // deterministic runner: jobs = 1 measures the runner's overhead over
    // the plain loop, jobs = 0 (all hardware threads) its speedup.
    let cases = [
        ("sort_sweep_to_n16_runner_seq", 1usize),
        ("sort_sweep_to_n16_runner_par", 0),
    ];
    for (label, jobs) in cases {
        let runner = SweepRunner::new(jobs);
        c.bench_function(label, |b| {
            b.iter(|| {
                runner
                    .map(black_box(vec![1u32, 2, 4, 8, 16]), |_ctx, n| {
                        sort::sweep(&[n]).points
                    })
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
            })
        });
    }
}

criterion_group!(
    benches,
    bench_mapreduce_jobs,
    bench_spark_job,
    bench_full_sweep
);
criterion_main!(benches);
