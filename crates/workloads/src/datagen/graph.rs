//! Random directed graphs for the NWeight workload.

use ipso_sim::SimRng;

/// A weighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// Edge weight in `(0, 1]`.
    pub weight: f64,
}

/// Generates a random directed graph with `vertices` vertices and
/// `out_degree` out-edges per vertex (no self-loops; parallel edges
/// possible, as in the HiBench generator).
pub fn random_graph(vertices: u32, out_degree: u32, rng: &mut SimRng) -> Vec<Edge> {
    assert!(vertices >= 2, "graph needs at least two vertices");
    let mut edges = Vec::with_capacity((vertices * out_degree) as usize);
    for src in 0..vertices {
        for _ in 0..out_degree {
            let mut dst = rng.index(vertices as usize) as u32;
            if dst == src {
                dst = (dst + 1) % vertices;
            }
            edges.push(Edge {
                src,
                dst,
                weight: rng.uniform(0.05, 1.0),
            });
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_expected_shape() {
        let mut rng = SimRng::seed_from(13);
        let edges = random_graph(50, 4, &mut rng);
        assert_eq!(edges.len(), 200);
        for e in &edges {
            assert!(e.src < 50 && e.dst < 50);
            assert_ne!(e.src, e.dst, "self loop");
            assert!((0.05..=1.0).contains(&e.weight));
        }
    }

    #[test]
    fn every_vertex_has_out_edges() {
        let mut rng = SimRng::seed_from(14);
        let edges = random_graph(30, 3, &mut rng);
        for v in 0..30u32 {
            assert_eq!(edges.iter().filter(|e| e.src == v).count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn tiny_graph_rejected() {
        let mut rng = SimRng::seed_from(1);
        let _ = random_graph(1, 1, &mut rng);
    }

    #[test]
    fn generation_is_seeded() {
        let mut a = SimRng::seed_from(15);
        let mut b = SimRng::seed_from(15);
        assert_eq!(random_graph(10, 2, &mut a), random_graph(10, 2, &mut b));
    }
}
