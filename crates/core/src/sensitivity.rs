//! Sensitivity analysis of the asymptotic speedup.
//!
//! The paper closes with the provisioning problem: "how to quickly
//! estimate the two scaling parameters, δ and γ". Estimation effort is
//! best spent on the parameter the speedup is most sensitive to at the
//! operating point, which is what this module quantifies — the partial
//! *elasticities* `∂ln S / ∂ln θ` of the speedup with respect to each of
//! the five asymptotic parameters.

use crate::asymptotic::AsymptoticParams;
use crate::error::check_scale_out;
use crate::ModelError;

/// Relative step used for the central finite differences.
const REL_STEP: f64 = 1e-5;

/// The elasticity of `S(n)` with respect to each parameter at one
/// operating point: the percentage change of the speedup per 1% change of
/// the parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// Operating scale-out degree.
    pub n: f64,
    /// Speedup at the operating point.
    pub speedup: f64,
    /// Elasticity with respect to η.
    pub eta: f64,
    /// Elasticity with respect to α.
    pub alpha: f64,
    /// Sensitivity to δ: `∂ln S / ∂δ` (δ is an exponent and may be zero,
    /// so the plain derivative is reported instead of an elasticity).
    pub delta: f64,
    /// Elasticity with respect to β (zero when the model has no induced
    /// workload).
    pub beta: f64,
    /// Sensitivity to γ: `∂ln S / ∂γ` (exponent, plain derivative).
    pub gamma: f64,
}

impl Sensitivity {
    /// Name of the parameter with the largest absolute sensitivity —
    /// where measurement effort pays off most.
    pub fn dominant(&self) -> &'static str {
        let entries = [
            ("eta", self.eta.abs()),
            ("alpha", self.alpha.abs()),
            ("delta", self.delta.abs()),
            ("beta", self.beta.abs()),
            ("gamma", self.gamma.abs()),
        ];
        entries
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }
}

/// Computes the sensitivity of the asymptotic speedup at `(params, n)`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidScaleOut`] for invalid `n` and propagates
/// evaluation errors (including perturbed evaluations).
///
/// # Example
///
/// ```
/// use ipso::sensitivity::sensitivity;
/// use ipso::AsymptoticParams;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// // A CF-like pathological workload: near the peak, γ dominates.
/// let p = AsymptoticParams::new(1.0, 1.0, 0.0, 0.0004, 2.0)?;
/// let s = sensitivity(&p, 100.0)?;
/// assert_eq!(s.dominant(), "gamma");
/// # Ok(())
/// # }
/// ```
pub fn sensitivity(params: &AsymptoticParams, n: f64) -> Result<Sensitivity, ModelError> {
    check_scale_out(n)?;
    let s0 = params.speedup(n)?;

    // Central difference of ln S under multiplicative perturbation
    // (elasticity) or additive perturbation (exponents).
    let eval = |p: &AsymptoticParams| p.speedup(n);

    let elasticity =
        |lo: AsymptoticParams, hi: AsymptoticParams, h: f64| -> Result<f64, ModelError> {
            let slo = eval(&lo)?;
            let shi = eval(&hi)?;
            Ok((shi.ln() - slo.ln()) / (2.0 * h))
        };

    // η: multiplicative elasticity. At the η = 1 boundary the model
    // switches to the serial-free branch (Eq. 17), so the derivative is
    // not defined there; report 0 — η cannot be increased further.
    let d_eta = if params.eta >= 1.0 - 1e-9 {
        0.0
    } else {
        let h_eta = REL_STEP;
        let eta_hi = (params.eta * (1.0 + h_eta)).min(1.0 - 1e-12);
        let eta_lo = params.eta * (1.0 - h_eta);
        let lo = AsymptoticParams {
            eta: eta_lo,
            ..*params
        };
        let hi = AsymptoticParams {
            eta: eta_hi,
            ..*params
        };
        let slo = eval(&lo)?;
        let shi = eval(&hi)?;
        (shi.ln() - slo.ln()) / (eta_hi.ln() - eta_lo.ln())
    };

    // α: pure multiplicative elasticity (skip when the workload is
    // serial-free: α is then irrelevant by construction).
    let d_alpha = if params.is_serial_free() || params.alpha == 0.0 {
        0.0
    } else {
        elasticity(
            AsymptoticParams {
                alpha: params.alpha * (1.0 - REL_STEP),
                ..*params
            },
            AsymptoticParams {
                alpha: params.alpha * (1.0 + REL_STEP),
                ..*params
            },
            REL_STEP,
        )?
    };

    // δ: additive derivative of ln S.
    let d_delta = if params.is_serial_free() {
        0.0
    } else {
        let h = REL_STEP;
        let lo = AsymptoticParams {
            delta: params.delta - h,
            ..*params
        };
        let hi = AsymptoticParams {
            delta: params.delta + h,
            ..*params
        };
        (eval(&hi)?.ln() - eval(&lo)?.ln()) / (2.0 * h)
    };

    // β: multiplicative elasticity; zero without induced workload.
    let d_beta = if params.no_induced_workload() {
        0.0
    } else {
        elasticity(
            AsymptoticParams {
                beta: params.beta * (1.0 - REL_STEP),
                ..*params
            },
            AsymptoticParams {
                beta: params.beta * (1.0 + REL_STEP),
                ..*params
            },
            REL_STEP,
        )?
    };

    // γ: additive derivative; zero without induced workload.
    let d_gamma = if params.no_induced_workload() {
        0.0
    } else {
        let h = REL_STEP;
        let lo = AsymptoticParams {
            gamma: (params.gamma - h).max(0.0),
            ..*params
        };
        let hi = AsymptoticParams {
            gamma: params.gamma + h,
            ..*params
        };
        (eval(&hi)?.ln() - eval(&lo)?.ln()) / (hi.gamma - lo.gamma)
    };

    Ok(Sensitivity {
        n,
        speedup: s0,
        eta: d_eta,
        alpha: d_alpha,
        delta: d_delta,
        beta: d_beta,
        gamma: d_gamma,
    })
}

/// Sensitivity profile over a range of scale-out degrees.
///
/// # Errors
///
/// Propagates the first evaluation error.
pub fn sensitivity_profile(
    params: &AsymptoticParams,
    ns: impl IntoIterator<Item = u32>,
) -> Result<Vec<Sensitivity>, ModelError> {
    ns.into_iter()
        .map(|n| sensitivity(params, f64::from(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gustafson_speedup_is_eta_dominated() {
        let p = AsymptoticParams::new(0.9, 1.0, 1.0, 0.0, 0.0).unwrap();
        let s = sensitivity(&p, 100.0).unwrap();
        assert_eq!(s.dominant(), "eta");
        // Analytic check: S = ηn + 1 − η; dlnS/dlnη = ηn−η / S ≈ 0.989.
        let expected = (0.9 * 100.0 - 0.9) / (0.9 * 100.0 + 0.1);
        assert!((s.eta - expected).abs() < 1e-3, "eta sens = {}", s.eta);
        assert_eq!(s.beta, 0.0);
        assert_eq!(s.gamma, 0.0);
    }

    #[test]
    fn pathological_workload_is_gamma_dominated_at_scale() {
        let p = AsymptoticParams::new(1.0, 1.0, 0.0, 0.0004, 2.0).unwrap();
        let s = sensitivity(&p, 150.0).unwrap();
        assert_eq!(s.dominant(), "gamma");
        // γ sensitivity is negative: faster-growing overhead hurts.
        assert!(s.gamma < 0.0);
        assert!(s.beta < 0.0);
    }

    #[test]
    fn amdahl_eta_sensitivity_grows_with_n() {
        let p = AsymptoticParams::new(0.9, 1.0, 0.0, 0.0, 0.0).unwrap();
        let small = sensitivity(&p, 4.0).unwrap();
        let large = sensitivity(&p, 1000.0).unwrap();
        assert!(large.eta.abs() > small.eta.abs());
    }

    #[test]
    fn beta_elasticity_matches_closed_form() {
        // η = 1: S = n/(1+βn^γ); dlnS/dlnβ = −βn^γ/(1+βn^γ).
        let (beta, gamma, n) = (0.01, 1.0, 50.0);
        let p = AsymptoticParams::new(1.0, 1.0, 0.0, beta, gamma).unwrap();
        let s = sensitivity(&p, n).unwrap();
        let q = beta * n.powf(gamma);
        let expected = -q / (1.0 + q);
        assert!((s.beta - expected).abs() < 1e-4, "beta sens = {}", s.beta);
    }

    #[test]
    fn delta_sensitivity_positive_for_fixed_time() {
        // Faster external-vs-internal scaling always helps.
        let p = AsymptoticParams::new(0.8, 1.0, 0.5, 0.0, 0.0).unwrap();
        let s = sensitivity(&p, 64.0).unwrap();
        assert!(s.delta > 0.0);
    }

    #[test]
    fn profile_is_dense() {
        let p = AsymptoticParams::new(0.9, 1.0, 1.0, 0.001, 2.0).unwrap();
        let prof = sensitivity_profile(&p, [2, 8, 32, 128]).unwrap();
        assert_eq!(prof.len(), 4);
        assert!(prof.windows(2).all(|w| w[1].n > w[0].n));
    }

    #[test]
    fn rejects_invalid_n() {
        let p = AsymptoticParams::new(0.9, 1.0, 1.0, 0.0, 0.0).unwrap();
        assert!(sensitivity(&p, 0.5).is_err());
    }
}
