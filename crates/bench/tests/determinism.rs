//! The runner's determinism contract, end to end: for ANY worker count,
//! a seeded stochastic sweep through [`SweepRunner`] returns bit-identical
//! results to the sequential (`--jobs 1`) run, and decomposing a real
//! engine sweep into per-n grid points reproduces the monolithic sweep
//! exactly. These are the properties every figure binary's `--jobs N`
//! flag rests on.

use ipso::stochastic::TaskTimeDistribution;
use ipso_bench::SweepRunner;
use ipso_mapreduce::ScalingSweep;
use proptest::prelude::*;

/// A sweep whose points consume their private RNG streams: for each n,
/// a Monte-Carlo estimate of E[max of n] plus a few raw draws.
fn stochastic_sweep(jobs: usize, base_seed: u64, ns: &[u32]) -> Vec<u64> {
    let dist = TaskTimeDistribution::Exponential { mean: 10.0 };
    SweepRunner::with_seed(jobs, base_seed)
        .map(ns.to_vec(), |ctx, n| {
            let mut rng = ctx.rng();
            let mc = dist
                .monte_carlo_expected_max(n, 16, ctx.seed)
                .expect("valid distribution");
            (mc + dist.sample_max(n, &mut rng)).to_bits()
        })
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-for-bit equality between the sequential run and every tested
    /// parallel worker count, for arbitrary seeds and grids.
    #[test]
    fn seeded_sweep_is_identical_for_any_jobs(
        jobs in 2usize..9,
        base_seed in any::<u64>(),
        ns in prop::collection::vec(1u32..48, 1..16),
    ) {
        let sequential = stochastic_sweep(1, base_seed, &ns);
        let parallel = stochastic_sweep(jobs, base_seed, &ns);
        prop_assert_eq!(parallel, sequential);
    }

    /// Different base seeds give different streams — the runner is not
    /// accidentally ignoring its seed.
    #[test]
    fn base_seed_changes_the_stream(base_seed in any::<u64>()) {
        let ns = [4u32, 8, 16];
        let a = stochastic_sweep(1, base_seed, &ns);
        let b = stochastic_sweep(1, base_seed.wrapping_add(1), &ns);
        prop_assert!(a != b);
    }
}

/// Decomposing a real MapReduce sweep into one grid point per n — the
/// pattern every ported figure binary uses — must reproduce the
/// monolithic sequential sweep measurement-for-measurement.
#[test]
fn per_point_decomposition_matches_full_sweep() {
    let ns = [1u32, 2, 4, 8];
    let full = ipso_workloads::qmc::sweep(&ns);
    for jobs in [1usize, 4] {
        let points = SweepRunner::new(jobs)
            .map(ns.to_vec(), |_ctx, n| {
                ipso_workloads::qmc::sweep(&[n]).points
            })
            .into_iter()
            .flatten()
            .collect();
        let decomposed = ScalingSweep { points };
        assert_eq!(
            decomposed.measurements(),
            full.measurements(),
            "jobs = {jobs}"
        );
    }
}
