//! Property-based tests of the simulation substrate and the two engines.

use ipso_cluster::{run_wave_schedule, CentralScheduler};
use ipso_mapreduce::{run_scale_out, run_sequential, InputSplit, JobSpec, Mapper, Reducer};
use ipso_sim::{EventQueue, ServerPool, SimTime};
use ipso_spark::{run_job, SparkJobSpec, StageSpec};
use proptest::prelude::*;

// ── MapReduce: a sort job over arbitrary records ────────────────────────

struct IdMap;
impl Mapper for IdMap {
    type Input = u64;
    type Key = u64;
    type Value = u32;
    fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u32)) {
        emit(*input, 1);
    }
}
struct IdReduce;
impl Reducer for IdReduce {
    type Key = u64;
    type Value = u32;
    type Output = u64;
    fn reduce(&self, key: &u64, values: &[u32], emit: &mut dyn FnMut(u64)) {
        for _ in 0..values.iter().sum::<u32>() {
            emit(*key);
        }
    }
}

fn splits_from(records: &[Vec<u64>]) -> Vec<InputSplit<u64>> {
    records
        .iter()
        .map(|r| {
            let bytes = (r.len() as u64 * 8).max(1);
            InputSplit::new(r.clone(), bytes, bytes * 64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine really sorts: output is the sorted multiset of inputs,
    /// for any record contents and any split shapes.
    #[test]
    fn mapreduce_sort_is_a_sorted_permutation(
        records in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..40),
            1..6,
        ),
    ) {
        let splits = splits_from(&records);
        let spec = JobSpec::emr("prop-sort", splits.len() as u32);
        let run = run_scale_out(&spec, &IdMap, &IdReduce, &splits);
        let mut expected: Vec<u64> = records.into_iter().flatten().collect();
        expected.sort_unstable();
        prop_assert_eq!(run.output, expected);
    }

    /// Sequential and scale-out executions produce identical outputs and
    /// identical reduce-side data volumes.
    #[test]
    fn mapreduce_modes_agree(
        records in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..30),
            1..5,
        ),
    ) {
        let splits = splits_from(&records);
        let spec = JobSpec::emr("prop-agree", splits.len() as u32);
        let par = run_scale_out(&spec, &IdMap, &IdReduce, &splits);
        let seq = run_sequential(&spec, &IdMap, &IdReduce, &splits);
        prop_assert_eq!(&par.output, &seq.output);
        prop_assert_eq!(par.reduce_input_bytes, seq.reduce_input_bytes);
        // The parallel map phase never exceeds the sequential sum beyond
        // the straggler multiplier's upper bound (±5% mild jitter).
        prop_assert!(par.trace.phases.map <= seq.trace.phases.map * 1.06 + 1e-9);
    }

    /// Wave schedules respect the two classic makespan bounds:
    /// max(longest task, total/k) <= makespan (with free dispatch), and
    /// list scheduling stays under total/k + longest task.
    #[test]
    fn wave_schedule_makespan_bounds(
        durations in prop::collection::vec(0.01f64..10.0, 1..60),
        executors in 1usize..16,
    ) {
        let s = run_wave_schedule(&durations, executors, &CentralScheduler::idealized());
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().cloned().fold(0.0, f64::max);
        let lower = (total / executors as f64).max(longest);
        prop_assert!(s.makespan >= lower - 1e-6, "makespan {} < lower {}", s.makespan, lower);
        let upper = total / executors as f64 + longest + s.dispatch_total + 1e-6;
        prop_assert!(s.makespan <= upper, "makespan {} > upper {}", s.makespan, upper);
    }

    /// The event queue is a stable priority queue: pops come out in
    /// non-decreasing time order, FIFO within equal times.
    #[test]
    fn event_queue_is_stable_and_ordered(
        times in prop::collection::vec(0u32..50, 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), (t, i));
        }
        let mut last: Option<(u32, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_secs(), f64::from(t));
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated within equal timestamps");
                }
            }
            last = Some((t, i));
        }
    }

    /// Server pools never idle while work is waiting: the makespan of k
    /// servers is at most that of k-1 servers.
    #[test]
    fn more_servers_never_hurt(
        durations in prop::collection::vec(0.01f64..5.0, 1..40),
        servers in 2usize..8,
    ) {
        let run = |k: usize| {
            let mut pool = ServerPool::new(k);
            for &d in &durations {
                pool.submit(SimTime::ZERO, d);
            }
            pool.makespan().as_secs()
        };
        prop_assert!(run(servers) <= run(servers - 1) + 1e-9);
    }

    /// Spark wall-clock time is monotone in the problem size at fixed
    /// parallelism.
    #[test]
    fn spark_time_monotone_in_problem_size(
        base_tasks in 4u32..32,
        m in 1u32..16,
    ) {
        let mk = |n: u32| {
            let mut j = SparkJobSpec::emr("prop", n, m)
                .stage(StageSpec::new("s", n).with_task_compute(0.5));
            j.straggler = ipso_cluster::StragglerModel::None;
            j
        };
        let small = run_job(&mk(base_tasks)).total_time;
        let large = run_job(&mk(base_tasks * 2)).total_time;
        prop_assert!(large >= small - 1e-9, "{large} < {small}");
    }

    /// Spark overhead is monotone in the broadcast payload.
    #[test]
    fn spark_overhead_monotone_in_broadcast(
        bytes in 0u64..64_000_000,
        m in 2u32..32,
    ) {
        let mk = |b: u64| {
            let mut j = SparkJobSpec::emr("prop", m, m)
                .stage(StageSpec::new("s", m).with_task_compute(0.5).with_broadcast(b));
            j.straggler = ipso_cluster::StragglerModel::None;
            j
        };
        let small = run_job(&mk(bytes)).overhead_time;
        let large = run_job(&mk(bytes + 8_000_000)).overhead_time;
        prop_assert!(large > small, "{large} <= {small}");
    }
}
