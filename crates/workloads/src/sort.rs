//! Sort (HiBench micro benchmark; paper Figs. 4c, 6, 7).
//!
//! Every input line passes through the single reducer, so the serial
//! merging workload grows in proportion to the external scaling: the
//! paper fits `IN(n) = 0.36·n − 0.11` and the speedup saturates near 5 —
//! the pathological IIIt,1 type that Gustafson's law cannot capture.
//!
//! HiBench's Sort configures a large reducer heap, so unlike
//! [`crate::terasort`] no spill regime appears in the measured range; we
//! model that with an unlimited reducer memory.

use ipso_cluster::MemoryModel;
use ipso_mapreduce::{InputSplit, JobCostModel, JobSpec, Mapper, Reducer, ScalingSweep};
use ipso_sim::SimRng;

use crate::datagen::random_lines;

/// Nominal HDFS shard per map task.
pub const SHARD_BYTES: u64 = 128 * 1024 * 1024;
/// Sample lines executed per task.
const SAMPLE_LINES: usize = 300;
const WORDS_PER_LINE: usize = 8;

/// Identity mapper keyed by the full line (the sort key).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMapper;

impl Mapper for SortMapper {
    type Input = String;
    type Key = String;
    type Value = u32;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u32)) {
        // The value carries a multiplicity of one; duplicate lines stack.
        emit(line.clone(), 1);
    }
}

/// Emits each line once per occurrence, in key order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortReducer;

impl Reducer for SortReducer {
    type Key = String;
    type Value = u32;
    type Output = String;

    fn reduce(&self, key: &String, values: &[u32], emit: &mut dyn FnMut(String)) {
        let count: u32 = values.iter().sum();
        for _ in 0..count {
            emit(key.clone());
        }
    }
}

/// Cost calibration reproducing the paper's fitted factors
/// (`η ≈ 0.6`, `IN(n) ≈ 0.43·n + 0.57` after normalization, speedup
/// bound ≈ 4.6): pass-through mapping at 80 MB/s; the reducer pipeline
/// handles a shard's worth of data in ≈ 0.46 s against a 0.6 s setup.
pub fn cost_model() -> JobCostModel {
    JobCostModel {
        map_rate: 80.0e6,
        shuffle_rate: 550.0e6,
        merge_rate: 1100.0e6,
        reduce_rate: 1500.0e6,
        seq_init: 2.0,
        serial_setup: 0.6,
    }
}

/// The job spec at scale-out degree `n`.
pub fn job_spec(n: u32) -> JobSpec {
    let mut spec = JobSpec::emr("sort", n);
    spec.cost = cost_model();
    spec.reducer_memory = MemoryModel::unlimited();
    spec
}

/// The `n` fixed-time splits of dictionary text.
pub fn make_splits(n: u32, seed: u64) -> Vec<InputSplit<String>> {
    (0..n)
        .map(|task| {
            let mut rng = SimRng::seed_from(seed ^ (u64::from(task) << 20) ^ 0x5027);
            let lines = random_lines(SAMPLE_LINES, WORDS_PER_LINE, &mut rng);
            let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
            InputSplit::new(lines, bytes, SHARD_BYTES)
        })
        .collect()
}

/// Runs the full paper sweep for Sort.
pub fn sweep(ns: &[u32]) -> ScalingSweep {
    ScalingSweep::run(
        ns,
        &SortMapper,
        &SortReducer,
        job_spec,
        |n| make_splits(n, 2),
        |n| make_splits(n, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_a_sorted_permutation_of_the_input() {
        use ipso_mapreduce::run_scale_out;
        let splits = make_splits(3, 9);
        let run = run_scale_out(&job_spec(3), &SortMapper, &SortReducer, &splits);
        let mut expected: Vec<String> = splits.into_iter().flat_map(|s| s.records).collect();
        assert!(run.output.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        expected.sort();
        assert_eq!(run.output, expected, "not a permutation");
    }

    #[test]
    fn intermediate_data_is_proportional_to_input() {
        use ipso_mapreduce::run_scale_out;
        let r2 = run_scale_out(&job_spec(2), &SortMapper, &SortReducer, &make_splits(2, 1));
        let r8 = run_scale_out(&job_spec(8), &SortMapper, &SortReducer, &make_splits(8, 1));
        let ratio = r8.reduce_input_bytes as f64 / r2.reduce_input_bytes as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn speedup_saturates_well_below_gustafson() {
        let sweep = sweep(&[1, 2, 4, 8, 16, 32, 64, 96]);
        let curve = sweep.speedup_curve().unwrap();
        let s96 = curve.points().last().unwrap().speedup;
        // Paper: Sort caps near 4–5 while Gustafson predicts ≈ 60.
        assert!((2.5..6.5).contains(&s96), "S(96) = {s96}");
        let s32 = curve.points()[5].speedup;
        assert!(s96 < s32 * 1.5, "still growing fast at 96");
    }

    #[test]
    fn internal_scaling_is_linear_with_large_slope() {
        use ipso::estimate::{estimate_factors, FactorShape};
        let sweep = sweep(&[1, 2, 4, 8, 12, 16]);
        let est = estimate_factors(&sweep.measurements()).unwrap();
        assert_eq!(est.internal.shape, FactorShape::Linear);
        let in16 = est.internal.factor.eval(16.0) / est.internal.factor.eval(1.0);
        // Paper's Sort: IN(16) = 0.36·16 − 0.11 ≈ 5.7 (normalised ≈ 23×
        // the n = 1 value is before normalisation; after normalisation to
        // IN(1) = 1 the growth to n = 16 is ≈ 7×). Ours is calibrated to
        // the same regime: substantial, clearly super-constant growth.
        assert!(in16 > 4.0, "IN(16)/IN(1) = {in16}");
    }

    #[test]
    fn eta_matches_calibration() {
        let sweep = sweep(&[1, 2, 4]);
        let m = &sweep.measurements()[0];
        let eta = m.seq_parallel_work / (m.seq_parallel_work + m.seq_serial_work);
        assert!((0.5..0.7).contains(&eta), "eta = {eta}");
    }
}
