//! WordCount (HiBench micro benchmark; paper Fig. 4b).
//!
//! Random dictionary text is tokenized and counted. The map-side combiner
//! collapses each task's output to at most one entry per dictionary word,
//! so the intermediate data is bounded (~1000 entries) no matter how many
//! shards are processed: the serial portion is dominated by the constant
//! reducer setup and the paper measures `IN(n) ≈ 1` — a benign It/IIt
//! scaling type.

use ipso_mapreduce::{
    InputSplit, JobCostModel, JobSpec, Mapper, OutputScaling, Reducer, ScalingSweep,
};
use ipso_sim::SimRng;

use crate::datagen::random_lines;

/// Nominal HDFS shard per map task (the paper's maximal block size).
pub const SHARD_BYTES: u64 = 128 * 1024 * 1024;
/// Lines of sample text actually executed per task.
const SAMPLE_LINES: usize = 250;
/// Words per generated line.
const WORDS_PER_LINE: usize = 8;

/// Tokenizing mapper with a summing combiner.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountMapper;

impl Mapper for WordCountMapper {
    type Input = String;
    type Key = String;
    type Value = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }

    fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn output_scaling(&self) -> OutputScaling {
        OutputScaling::Saturating
    }
}

/// Count-summing reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountReducer;

impl Reducer for WordCountReducer {
    type Key = String;
    type Value = u64;
    type Output = (String, u64);

    fn reduce(&self, key: &String, values: &[u64], emit: &mut dyn FnMut((String, u64))) {
        emit((key.clone(), values.iter().sum()));
    }
}

/// Cost calibration: WordCount is CPU-bound on the map side (JVM
/// tokenization of a 128 MB block takes ~13 s, matching 2019-era Hadoop)
/// with negligible reduce-side data.
pub fn cost_model() -> JobCostModel {
    JobCostModel {
        map_rate: 10.0e6,
        shuffle_rate: 200.0e6,
        merge_rate: 200.0e6,
        reduce_rate: 200.0e6,
        seq_init: 2.0,
        serial_setup: 1.0,
    }
}

/// The job spec at scale-out degree `n`.
pub fn job_spec(n: u32) -> JobSpec {
    let mut spec = JobSpec::emr("wordcount", n);
    spec.cost = cost_model();
    spec
}

/// The `n` fixed-time splits: one 128 MB shard of dictionary text per
/// task, sampled down for execution.
pub fn make_splits(n: u32, seed: u64) -> Vec<InputSplit<String>> {
    (0..n)
        .map(|task| {
            let mut rng = SimRng::seed_from(seed ^ (u64::from(task) << 20) ^ 0x57c0);
            let lines = random_lines(SAMPLE_LINES, WORDS_PER_LINE, &mut rng);
            let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
            InputSplit::new(lines, bytes, SHARD_BYTES)
        })
        .collect()
}

/// Runs the full paper sweep for WordCount.
pub fn sweep(ns: &[u32]) -> ScalingSweep {
    ScalingSweep::run(
        ns,
        &WordCountMapper,
        &WordCountReducer,
        job_spec,
        |n| make_splits(n, 1),
        |n| make_splits(n, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        use ipso_mapreduce::run_sequential;
        let splits = make_splits(2, 7);
        let expected: u64 = splits.iter().map(|s| s.records.len() as u64 * 8).sum();
        let run = run_sequential(&job_spec(2), &WordCountMapper, &WordCountReducer, &splits);
        let total: u64 = run.output.iter().map(|(_, c)| c).sum();
        assert_eq!(total, expected);
        // Every key is a dictionary word.
        let dict: std::collections::HashSet<String> =
            crate::datagen::unix_dictionary().into_iter().collect();
        assert!(run.output.iter().all(|(w, _)| dict.contains(w)));
    }

    #[test]
    fn intermediate_data_saturates() {
        use ipso_mapreduce::run_scale_out;
        let r4 = run_scale_out(
            &job_spec(4),
            &WordCountMapper,
            &WordCountReducer,
            &make_splits(4, 1),
        );
        let r8 = run_scale_out(
            &job_spec(8),
            &WordCountMapper,
            &WordCountReducer,
            &make_splits(8, 1),
        );
        // Reduce input grows at most linearly in tasks with a tiny
        // per-task bound (1000 dictionary entries).
        assert!(r8.reduce_input_bytes < 2 * r4.reduce_input_bytes + 1024);
        assert!(r8.reduce_input_bytes < 8 * 1000 * 20);
    }

    #[test]
    fn speedup_is_near_gustafson() {
        let sweep = sweep(&[1, 2, 4, 8, 16, 32]);
        let curve = sweep.speedup_curve().unwrap();
        let s32 = curve.points().last().unwrap().speedup;
        let eta = sweep.measurements()[0].seq_parallel_work
            / (sweep.measurements()[0].seq_parallel_work + sweep.measurements()[0].seq_serial_work);
        let gustafson = eta * 32.0 + (1.0 - eta);
        // Close to Gustafson's prediction — the benign case. The gap
        // (straggler E[max] and job-setup excess) matches the slight
        // shortfall visible in the paper's Fig. 4b data points.
        assert!(
            (s32 - gustafson).abs() / gustafson < 0.3,
            "S(32) = {s32}, Gustafson = {gustafson}"
        );
        // And growth stays near-linear.
        let s16 = curve.points()[4].speedup;
        assert!(s32 / s16 > 1.6, "S(32)/S(16) = {}", s32 / s16);
    }

    #[test]
    fn internal_scaling_is_flat() {
        use ipso::estimate::{estimate_factors, FactorShape};
        let sweep = sweep(&[1, 2, 4, 8, 12, 16]);
        let est = estimate_factors(&sweep.measurements()).unwrap();
        // IN(n) ≈ 1 as in the paper (constant, or linear with a tiny
        // slope relative to the intercept).
        match est.internal.shape {
            FactorShape::Constant => {}
            FactorShape::Linear => {
                let at16 = est.internal.factor.eval(16.0) / est.internal.factor.eval(1.0);
                assert!(at16 < 1.6, "IN(16) = {at16}");
            }
            other => panic!("unexpected IN shape {other:?}"),
        }
    }
}
