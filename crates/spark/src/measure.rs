//! Speedup measurement and the paper's two sweep dimensions.
//!
//! The paper projects Spark speedups onto two dimensions while scaling the
//! parallel degree `n = m`:
//!
//! * **fixed-time** — the per-executor load `N/m` is held constant
//!   (Fig. 9);
//! * **fixed-size** — the problem size `N` is held constant (Fig. 10).

use crate::engine::{run_job, run_sequential_reference};
use crate::job::SparkJobSpec;

/// One point of a Spark scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkSweepPoint {
    /// Parallel degree `m` (= scale-out degree `n`).
    pub m: u32,
    /// Problem size `N` used at this point.
    pub problem_size: u32,
    /// Measured speedup versus the sequential reference.
    pub speedup: f64,
    /// Parallel wall-clock time, seconds.
    pub total_time: f64,
    /// Scale-out-induced overhead time, seconds.
    pub overhead_time: f64,
}

/// Measures the speedup of one configuration: sequential reference over
/// parallel execution.
pub fn speedup(spec: &SparkJobSpec) -> f64 {
    let par = run_job(spec);
    let seq = run_sequential_reference(spec);
    seq / par.total_time
}

/// Sweeps the fixed-time dimension: `N = load_level · m` for each `m`.
///
/// `make_job(problem_size, parallelism)` builds the fully-staged job —
/// the workload crates provide these constructors.
pub fn sweep_fixed_time(
    mut make_job: impl FnMut(u32, u32) -> SparkJobSpec,
    load_level: u32,
    ms: &[u32],
) -> Vec<SparkSweepPoint> {
    assert!(load_level > 0, "load level N/m must be positive");
    ms.iter()
        .map(|&m| {
            let spec = make_job(load_level * m, m);
            point(&spec, m)
        })
        .collect()
}

/// Sweeps the fixed-size dimension: `N` constant for each `m`.
pub fn sweep_fixed_size(
    mut make_job: impl FnMut(u32, u32) -> SparkJobSpec,
    problem_size: u32,
    ms: &[u32],
) -> Vec<SparkSweepPoint> {
    assert!(problem_size > 0, "problem size N must be positive");
    ms.iter()
        .map(|&m| {
            let spec = make_job(problem_size, m);
            point(&spec, m)
        })
        .collect()
}

fn point(spec: &SparkJobSpec, m: u32) -> SparkSweepPoint {
    let par = run_job(spec);
    let seq = run_sequential_reference(spec);
    SparkSweepPoint {
        m,
        problem_size: spec.problem_size,
        speedup: seq / par.total_time,
        total_time: par.total_time,
        overhead_time: par.overhead_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageSpec;
    use ipso_cluster::StragglerModel;

    /// A two-stage job shaped like the paper's ML benchmarks: a heavy
    /// training stage with a broadcast plus a small aggregation.
    fn ml_job(n: u32, m: u32) -> SparkJobSpec {
        let mut job = SparkJobSpec::emr("ml", n, m)
            .stage(
                StageSpec::new("train", n)
                    .with_task_compute(2.0)
                    .with_input_bytes(64 * 1024 * 1024)
                    .with_broadcast(8 * 1024 * 1024)
                    .with_shuffle_output(1024 * 1024),
            )
            .stage(StageSpec::new("aggregate", m.max(1)).with_task_compute(0.3));
        job.straggler = StragglerModel::None;
        job
    }

    #[test]
    fn fixed_time_speedup_grows_then_saturates() {
        let pts = sweep_fixed_time(ml_job, 4, &[1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(pts.len(), 7);
        // Growing at the start.
        assert!(pts[3].speedup > pts[1].speedup);
        // Sublinear at scale: S(64) well below 64.
        assert!(pts[6].speedup < 50.0);
        assert!(pts[6].speedup > pts[6].overhead_time); // sanity: finite values
    }

    #[test]
    fn higher_load_level_scales_better() {
        // The paper's Fig. 9 ordering: N/m = 4 outperforms N/m = 1 because
        // first-wave overhead amortizes over more tasks.
        let low = sweep_fixed_time(ml_job, 1, &[8, 16, 32]);
        let high = sweep_fixed_time(ml_job, 4, &[8, 16, 32]);
        for (l, h) in low.iter().zip(&high) {
            assert!(
                h.speedup > l.speedup,
                "m = {}: N/m=4 gives {}, N/m=1 gives {}",
                l.m,
                h.speedup,
                l.speedup
            );
        }
    }

    #[test]
    fn fixed_size_speedup_peaks_and_falls() {
        let pts = sweep_fixed_size(ml_job, 32, &[1, 2, 4, 8, 16, 32, 64, 128]);
        let peak = pts
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        let last = pts.last().unwrap();
        assert!(peak.m < 128, "peak at m = {}", peak.m);
        assert!(last.speedup < peak.speedup, "no fall after peak");
    }

    #[test]
    fn speedup_matches_manual_ratio() {
        let spec = ml_job(8, 4);
        let s = speedup(&spec);
        let manual = run_sequential_reference(&spec) / run_job(&spec).total_time;
        assert!((s - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_level_rejected() {
        let _ = sweep_fixed_time(ml_job, 0, &[1]);
    }
}
