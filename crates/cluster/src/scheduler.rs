//! The centralized job scheduler model.
//!
//! Hadoop and Spark dispatch every task from a single master process.
//! [Qu et al., arXiv:1602.01412] observe that the resulting task-dispatch
//! rate requirement grows quadratically with cluster size, turning the
//! scheduler into a scalability bottleneck — one of the paper's canonical
//! sources of scale-out-induced workload.
//!
//! [`CentralScheduler`] charges each task a dispatch cost
//! `base + contention · outstanding`, where `outstanding` counts tasks
//! dispatched earlier in the same burst: the scheduler's internal state
//! (locks, heartbeat queues, RPC backlog) grows as a burst progresses.
//! Dispatching `k` tasks back-to-back therefore costs
//! `k·base + contention·k(k−1)/2` — linear in `k` per task and quadratic
//! per burst, matching the reference.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Order in which the central scheduler dispatches a burst of tasks.
///
/// The dispatch-cost model ([`CentralScheduler`]) is orthogonal to the
/// dispatch *order*: FIFO replays submission order, fair scheduling
/// dispatches the shortest tasks first (approximating max-min fairness
/// over many small jobs), and locality-aware scheduling groups tasks by
/// their preferred executor so consecutive dispatches hit warm data.
/// All policies are deterministic; ties break by task index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Dispatch tasks in submission (index) order — Hadoop's and Spark's
    /// default, and the order every committed artifact was produced with.
    #[default]
    Fifo,
    /// Shortest-duration-first, ties by index.
    Fair,
    /// Group by preferred executor (`task % executors`), ties by index.
    Locality,
}

impl SchedulerPolicy {
    /// The dispatch permutation: position `k` in the returned vector is
    /// the index of the `k`-th task handed to the scheduler.
    pub fn dispatch_order(&self, durations: &[f64], executors: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..durations.len()).collect();
        match self {
            SchedulerPolicy::Fifo => {}
            SchedulerPolicy::Fair => {
                order.sort_by(|&a, &b| durations[a].total_cmp(&durations[b]).then(a.cmp(&b)));
            }
            SchedulerPolicy::Locality => {
                order.sort_by_key(|&i| (i % executors.max(1), i));
            }
        }
        order
    }

    /// Canonical CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Fair => "fair",
            SchedulerPolicy::Locality => "locality",
        }
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SchedulerPolicy {
    type Err = ClusterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(SchedulerPolicy::Fifo),
            "fair" => Ok(SchedulerPolicy::Fair),
            "locality" => Ok(SchedulerPolicy::Locality),
            other => Err(ClusterError::InvalidParameter {
                what: "scheduler policy",
                message: format!("unknown policy {other:?}; expected fifo, fair or locality"),
            }),
        }
    }
}

/// Dispatch-cost model of a centralized scheduler.
///
/// # Example
///
/// ```
/// use ipso_cluster::CentralScheduler;
///
/// let sched = CentralScheduler::hadoop_like();
/// let burst = sched.dispatch_burst_time(100);
/// let single = sched.dispatch_burst_time(1);
/// assert!(burst > 100.0 * single); // superlinear in burst size
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentralScheduler {
    /// Fixed cost to dispatch one task (serialization, RPC), seconds.
    pub base_dispatch: f64,
    /// Additional cost per already-dispatched task in the burst, seconds.
    pub contention: f64,
    /// One-time job setup cost (application master launch, container
    /// negotiation), seconds.
    pub job_setup: f64,
}

impl CentralScheduler {
    /// Parameters approximating a 2019-era Hadoop/YARN master: ~5 ms per
    /// task dispatch, weak contention, multi-second AM startup.
    pub fn hadoop_like() -> CentralScheduler {
        CentralScheduler {
            base_dispatch: 5e-3,
            contention: 20e-6,
            job_setup: 3.0,
        }
    }

    /// Parameters approximating a Spark driver: ~1 ms per task (tasks are
    /// threads, not containers), visible contention, fast job setup.
    pub fn spark_like() -> CentralScheduler {
        CentralScheduler {
            base_dispatch: 1e-3,
            contention: 15e-6,
            job_setup: 0.8,
        }
    }

    /// An idealized distributed scheduler with negligible, constant
    /// dispatch cost — for ablations against the centralized design.
    pub fn idealized() -> CentralScheduler {
        CentralScheduler {
            base_dispatch: 1e-5,
            contention: 0.0,
            job_setup: 0.1,
        }
    }

    /// Cost for the `i`-th task of a burst (0-based).
    pub fn dispatch_time(&self, already_dispatched: u32) -> f64 {
        ipso_obs::counter_add("scheduler.dispatches", 1);
        self.base_dispatch + self.contention * already_dispatched as f64
    }

    /// Total master-side time to dispatch a burst of `k` tasks:
    /// `k·base + contention·k(k−1)/2`.
    pub fn dispatch_burst_time(&self, k: u32) -> f64 {
        let kf = k as f64;
        kf * self.base_dispatch + self.contention * kf * (kf - 1.0) / 2.0
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("base_dispatch", self.base_dispatch),
            ("contention", self.contention),
            ("job_setup", self.job_setup),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

impl Default for CentralScheduler {
    fn default() -> Self {
        CentralScheduler::hadoop_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_cost_matches_summation() {
        let s = CentralScheduler::spark_like();
        let direct: f64 = (0..50).map(|i| s.dispatch_time(i)).sum();
        assert!((s.dispatch_burst_time(50) - direct).abs() < 1e-12);
    }

    #[test]
    fn burst_cost_is_superlinear() {
        let s = CentralScheduler::hadoop_like();
        let t100 = s.dispatch_burst_time(100);
        let t200 = s.dispatch_burst_time(200);
        assert!(t200 > 2.0 * t100);
    }

    #[test]
    fn idealized_scheduler_is_linear() {
        let s = CentralScheduler::idealized();
        let t100 = s.dispatch_burst_time(100);
        let t200 = s.dispatch_burst_time(200);
        assert!((t200 - 2.0 * t100).abs() < 1e-12);
    }

    #[test]
    fn empty_burst_is_free() {
        assert_eq!(CentralScheduler::hadoop_like().dispatch_burst_time(0), 0.0);
    }

    #[test]
    fn presets_validate() {
        assert!(CentralScheduler::hadoop_like().validate().is_ok());
        assert!(CentralScheduler::spark_like().validate().is_ok());
        assert!(CentralScheduler::idealized().validate().is_ok());
        let bad = CentralScheduler {
            base_dispatch: -1.0,
            ..CentralScheduler::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn spark_dispatch_is_cheaper_than_hadoop() {
        assert!(
            CentralScheduler::spark_like().dispatch_burst_time(64)
                < CentralScheduler::hadoop_like().dispatch_burst_time(64)
        );
    }
}
