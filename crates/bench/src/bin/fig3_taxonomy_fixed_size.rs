//! Fig. 3 — the four fixed-size scaling behaviours (Is, IIs, IIIs,1,
//! IIIs,2, IVs) with their bounds. Amdahl's law appears as the special
//! case of IIIs,1 with γ = 0 and α = 1.

use ipso::taxonomy::{classify, WorkloadType};
use ipso::AsymptoticParams;
use ipso_bench::{SweepRunner, Table};

fn main() {
    let runner = SweepRunner::from_env();
    let cases: Vec<(&str, AsymptoticParams)> = vec![
        (
            "Is",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "IIs",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.3, 0.5).expect("valid"),
        ),
        (
            "IIIs1_amdahl",
            AsymptoticParams::new(0.95, 1.0, 0.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "IIIs2",
            AsymptoticParams::new(0.95, 1.0, 0.0, 0.02, 1.0).expect("valid"),
        ),
        (
            "IVs",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.0006, 2.0).expect("valid"),
        ),
    ];

    let ns: Vec<u32> = (0..=50).map(|i| 1 + i * 10).collect();
    let mut columns = vec!["n".to_string()];
    columns.extend(cases.iter().map(|(name, _)| name.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("fig3_taxonomy_fixed_size", &col_refs);

    // One grid point per n-row; every case is evaluated at that n.
    let rows = runner.map(ns, |_ctx, n| {
        let mut row = vec![f64::from(n)];
        for (_, p) in &cases {
            row.push(p.speedup(f64::from(n)).expect("evaluable"));
        }
        row
    });
    for row in rows {
        table.push(row);
    }
    table.emit();

    println!("classification and bounds (paper Fig. 3 annotations):");
    for (name, p) in &cases {
        let (class, bound) = classify(p, WorkloadType::FixedSize).expect("classifiable");
        match bound {
            Some(b) => println!("  {name:13} -> {class} bound = {b:.2}"),
            None => println!("  {name:13} -> {class} unbounded"),
        }
    }
}
