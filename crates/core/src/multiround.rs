//! Multi-round job execution (paper Section III).
//!
//! *"This model can also be applied to the case where there are multiple
//! rounds of the split and merge phases with the same number of
//! processing units in each split phase. … by viewing `Wp(n)`, `Ws(n)`
//! and `Wo(n)` as the sum of the corresponding workloads in all rounds,
//! the above IPSO model can be applied to the case involving multiple
//! rounds of the same scale-out degree."*
//!
//! [`MultiRoundJob`] composes per-round workload descriptions into one
//! aggregate IPSO model and exposes the per-round and total speedups.

use crate::error::check_scale_out;
use crate::factors::ScalingFactor;
use crate::ModelError;

/// One round's workload description: absolute workloads at `n = 1` plus
/// the three scaling factors for that round.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Round label (e.g. `"iteration-3/users"`).
    pub name: String,
    /// Parallelizable workload of the round at `n = 1`, seconds.
    pub wp1: f64,
    /// Serial (merge) workload of the round at `n = 1`, seconds.
    pub ws1: f64,
    /// External scaling of the round.
    pub external: ScalingFactor,
    /// Internal scaling of the round.
    pub internal: ScalingFactor,
    /// Scale-out-induced factor of the round.
    pub induced: ScalingFactor,
}

impl Round {
    /// A convenience constructor for a Gustafson-style round
    /// (`EX(n) = n`, `IN(n) = 1`, `q(n) = 0`).
    pub fn fixed_time(name: &str, wp1: f64, ws1: f64) -> Round {
        Round {
            name: name.to_string(),
            wp1,
            ws1,
            external: ScalingFactor::linear(),
            internal: ScalingFactor::one(),
            induced: ScalingFactor::zero(),
        }
    }

    /// A fixed-size round (`EX(n) = 1`).
    pub fn fixed_size(name: &str, wp1: f64, ws1: f64) -> Round {
        Round {
            external: ScalingFactor::one(),
            ..Round::fixed_time(name, wp1, ws1)
        }
    }

    /// Sets the internal scaling factor.
    pub fn with_internal(mut self, factor: ScalingFactor) -> Round {
        self.internal = factor;
        self
    }

    /// Sets the scale-out-induced factor.
    pub fn with_induced(mut self, factor: ScalingFactor) -> Round {
        self.induced = factor;
        self
    }

    /// Validates the round.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonFinite`] for bad workloads and factor
    /// validation errors.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.wp1.is_finite() || self.wp1 < 0.0 {
            return Err(ModelError::NonFinite("round parallel workload"));
        }
        if !self.ws1.is_finite() || self.ws1 < 0.0 {
            return Err(ModelError::NonFinite("round serial workload"));
        }
        if self.wp1 + self.ws1 <= 0.0 {
            return Err(ModelError::NonFinite("round total workload"));
        }
        self.external.validate_structure()?;
        self.internal.validate_structure()?;
        self.induced.validate_structure()
    }

    /// The round's parallelizable workload at degree `n` (s).
    pub fn wp(&self, n: f64) -> f64 {
        self.wp1 * self.external.eval(n) / self.external.eval(1.0).max(1e-300)
    }

    /// The round's serial workload at degree `n` (s).
    pub fn ws(&self, n: f64) -> f64 {
        if self.ws1 == 0.0 {
            0.0
        } else {
            self.ws1 * self.internal.eval(n) / self.internal.eval(1.0).max(1e-300)
        }
    }

    /// The round's scale-out-induced workload at degree `n` (s),
    /// `Wo(n) = Wp(n)/n · q(n)`.
    pub fn wo(&self, n: f64) -> f64 {
        self.wp(n) / n * self.induced.eval(n)
    }
}

/// A job of several barrier-synchronized rounds with one scale-out
/// degree.
///
/// # Example
///
/// ```
/// use ipso::multiround::{MultiRoundJob, Round};
/// use ipso::ScalingFactor;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// // Two CF-style fixed-size rounds with broadcast-induced overhead.
/// let job = MultiRoundJob::new(vec![
///     Round::fixed_size("users", 800.0, 0.0)
///         .with_induced(ScalingFactor::induced(0.0003, 2.0)),
///     Round::fixed_size("items", 800.0, 0.0)
///         .with_induced(ScalingFactor::induced(0.0003, 2.0)),
/// ])?;
/// let (n_peak, _) = job.peak_speedup(300)?;
/// assert!(n_peak > 1 && n_peak < 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundJob {
    rounds: Vec<Round>,
}

impl MultiRoundJob {
    /// Creates a job from its rounds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InsufficientData`] for an empty round list
    /// and propagates round validation errors.
    pub fn new(rounds: Vec<Round>) -> Result<MultiRoundJob, ModelError> {
        if rounds.is_empty() {
            return Err(ModelError::InsufficientData {
                points: 0,
                required: 1,
            });
        }
        for r in &rounds {
            r.validate()?;
        }
        Ok(MultiRoundJob { rounds })
    }

    /// The rounds.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Aggregate parallelizable fraction at `n = 1` (paper Eq. 9 over the
    /// round sums).
    pub fn eta(&self) -> f64 {
        let wp: f64 = self.rounds.iter().map(|r| r.wp1).sum();
        let ws: f64 = self.rounds.iter().map(|r| r.ws1).sum();
        wp / (wp + ws)
    }

    /// Total sequential execution time at degree `n` (s): every round's
    /// parallel portion run on one unit plus its merge.
    pub fn sequential_time(&self, n: f64) -> f64 {
        self.rounds.iter().map(|r| r.wp(n) + r.ws(n)).sum()
    }

    /// Total parallel execution time at degree `n` (s): per round, the
    /// split phase `Wp(n)/n` (deterministic tasks), the induced workload
    /// and the serial merge — rounds are barrier-synchronized so times
    /// add.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for invalid `n`.
    pub fn parallel_time(&self, n: f64) -> Result<f64, ModelError> {
        check_scale_out(n)?;
        Ok(self
            .rounds
            .iter()
            .map(|r| r.wp(n) / n + r.wo(n) + r.ws(n))
            .sum())
    }

    /// The multi-round speedup `S(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for invalid `n` and
    /// [`ModelError::NonFinite`] for a degenerate denominator.
    pub fn speedup(&self, n: f64) -> Result<f64, ModelError> {
        let num = self.sequential_time(n);
        let den = self.parallel_time(n)?;
        if den <= 0.0 || !den.is_finite() {
            return Err(ModelError::NonFinite("multi-round speedup"));
        }
        Ok(num / den)
    }

    /// The degree maximizing the speedup in `[1, n_max]`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; rejects `n_max = 0`.
    pub fn peak_speedup(&self, n_max: u32) -> Result<(u32, f64), ModelError> {
        if n_max == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let mut best = (1u32, self.speedup(1.0)?);
        for n in 2..=n_max {
            let s = self.speedup(f64::from(n))?;
            if s > best.1 {
                best = (n, s);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IpsoModel;

    #[test]
    fn single_round_matches_ipso_model() {
        let round =
            Round::fixed_time("only", 9.0, 1.0).with_internal(ScalingFactor::affine(0.36, 0.64));
        let job = MultiRoundJob::new(vec![round]).unwrap();
        let model = IpsoModel::builder(0.9)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.36, 0.64))
            .build()
            .unwrap();
        for n in [1.0, 4.0, 32.0, 200.0] {
            let a = job.speedup(n).unwrap();
            let b = model.speedup(n).unwrap();
            assert!((a - b).abs() / b < 1e-12, "n = {n}: {a} vs {b}");
        }
    }

    #[test]
    fn identical_rounds_have_the_single_round_speedup() {
        // R copies of the same round: workloads sum, ratios unchanged.
        let mk = |copies: usize| {
            let rounds = (0..copies)
                .map(|i| {
                    Round::fixed_time(&format!("r{i}"), 10.0, 2.0)
                        .with_internal(ScalingFactor::affine(0.5, 0.5))
                })
                .collect();
            MultiRoundJob::new(rounds).unwrap()
        };
        let one = mk(1);
        let five = mk(5);
        for n in [2.0, 16.0, 128.0] {
            assert!((one.speedup(n).unwrap() - five.speedup(n).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn eta_aggregates_across_rounds() {
        let job = MultiRoundJob::new(vec![
            Round::fixed_time("compute", 30.0, 0.0),
            Round::fixed_time("merge-heavy", 10.0, 10.0),
        ])
        .unwrap();
        assert!((job.eta() - 40.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_rounds_blend_behaviours() {
        // A Gustafson round plus a pathological broadcast round: the
        // aggregate peaks (the pathology wins at scale) but later than the
        // pathological round alone.
        let pathological =
            MultiRoundJob::new(vec![Round::fixed_size("bcast", 100.0, 0.0)
                .with_induced(ScalingFactor::induced(0.001, 2.0))])
            .unwrap();
        let blended = MultiRoundJob::new(vec![
            Round::fixed_time("clean", 100.0, 0.0),
            Round::fixed_size("bcast", 100.0, 0.0).with_induced(ScalingFactor::induced(0.001, 2.0)),
        ])
        .unwrap();
        let (p_alone, _) = pathological.peak_speedup(2000).unwrap();
        let (p_blend, _) = blended.peak_speedup(2000).unwrap();
        assert!(p_alone > 1 && p_alone < 2000);
        assert!(
            p_blend >= p_alone,
            "blend peak {p_blend} vs alone {p_alone}"
        );
    }

    #[test]
    fn collaborative_filtering_shape() {
        // Three iterations × two broadcast rounds, fixed-size: IVs with an
        // interior peak, as in the paper's CF case.
        // Peak at n* ~ sqrt(1/beta) = 60 when every round carries the
        // same broadcast-induced q(n) = beta*(n^2 - 1).
        let rounds: Vec<Round> = (0..6)
            .map(|i| {
                Round::fixed_size(&format!("round-{i}"), 1600.0 / 6.0, 0.0)
                    .with_induced(ScalingFactor::induced(1.0 / 3600.0, 2.0))
            })
            .collect();
        let job = MultiRoundJob::new(rounds).unwrap();
        let (n_peak, s_peak) = job.peak_speedup(300).unwrap();
        assert!((30..=90).contains(&n_peak), "peak at {n_peak}");
        assert!(s_peak < 40.0);
        assert!(job.speedup(300.0).unwrap() < s_peak);
    }

    #[test]
    fn validation_errors() {
        assert!(MultiRoundJob::new(Vec::new()).is_err());
        let bad = Round {
            wp1: -1.0,
            ..Round::fixed_time("x", 1.0, 1.0)
        };
        assert!(MultiRoundJob::new(vec![bad]).is_err());
        let zero = Round::fixed_time("z", 0.0, 0.0);
        assert!(MultiRoundJob::new(vec![zero]).is_err());
    }

    #[test]
    fn speedup_at_one_is_unity_without_induced() {
        let job = MultiRoundJob::new(vec![
            Round::fixed_time("a", 5.0, 1.0),
            Round::fixed_size("b", 3.0, 2.0),
        ])
        .unwrap();
        assert!((job.speedup(1.0).unwrap() - 1.0).abs() < 1e-12);
    }
}
