//! What-if scenario analysis on fitted models.
//!
//! The ablation experiments answer "what would fixing mechanism X buy?"
//! empirically, by re-running the simulator. This module answers the same
//! question *analytically* from a fitted [`IpsoModel`]: apply a
//! hypothetical intervention to the scaling factors and quantify the
//! speedup change — the decision-support step between diagnosis
//! ("you are IIIt,1 because of the merge") and engineering ("is fixing
//! the merge worth it?").

use crate::factors::ScalingFactor;
use crate::model::IpsoModel;
use crate::ModelError;

/// A hypothetical intervention on a fitted model.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// Scale the growing part of the internal factor by `factor`
    /// (e.g. 0.5 = "make the merge grow half as fast": parallelize half
    /// of the reduction). The constant part — `IN(1) = 1` — is preserved.
    ScaleInternalGrowth {
        /// Multiplier on the growth component, in `[0, 1]` for
        /// improvements.
        factor: f64,
    },
    /// Replace the internal scaling with `IN(n) = 1` entirely — a perfect
    /// parallel reduction tree (the classic-law assumption).
    EliminateInternalScaling,
    /// Scale the induced factor by `factor` (e.g. 0.1 = "make dispatch
    /// 10× cheaper").
    ScaleInduced {
        /// Multiplier on `q(n)`.
        factor: f64,
    },
    /// Reduce the induced factor's growth *order* by `delta_gamma`
    /// (e.g. 1.0 turns a quadratic broadcast into a linear tree one).
    /// Applies to power-shaped induced factors; others are unchanged.
    ReduceInducedOrder {
        /// Amount subtracted from the exponent (clamped at 0).
        delta_gamma: f64,
    },
    /// Remove the induced workload entirely.
    EliminateInduced,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::ScaleInternalGrowth { factor } => {
                write!(f, "scale internal growth by {factor}")
            }
            Scenario::EliminateInternalScaling => write!(f, "eliminate internal scaling"),
            Scenario::ScaleInduced { factor } => write!(f, "scale induced factor by {factor}"),
            Scenario::ReduceInducedOrder { delta_gamma } => {
                write!(f, "reduce induced order by {delta_gamma}")
            }
            Scenario::EliminateInduced => write!(f, "eliminate induced workload"),
        }
    }
}

/// The outcome of applying one scenario at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The scenario applied.
    pub scenario: Scenario,
    /// Operating scale-out degree.
    pub n: f64,
    /// Speedup before the intervention.
    pub baseline: f64,
    /// Speedup after the intervention.
    pub improved: f64,
    /// The modified model, for further analysis.
    pub model: IpsoModel,
}

impl ScenarioOutcome {
    /// Relative gain, `improved/baseline − 1`.
    pub fn gain(&self) -> f64 {
        self.improved / self.baseline - 1.0
    }
}

/// Applies a scenario to a model, returning the modified model.
///
/// # Errors
///
/// Propagates model reconstruction errors and rejects negative scale
/// factors.
pub fn apply(model: &IpsoModel, scenario: &Scenario) -> Result<IpsoModel, ModelError> {
    let (internal, induced) = match scenario {
        Scenario::ScaleInternalGrowth { factor } => {
            if !factor.is_finite() || *factor < 0.0 {
                return Err(ModelError::NonFinite("scenario scale factor"));
            }
            (
                scale_growth(model.internal(), *factor),
                model.induced().clone(),
            )
        }
        Scenario::EliminateInternalScaling => (ScalingFactor::one(), model.induced().clone()),
        Scenario::ScaleInduced { factor } => {
            if !factor.is_finite() || *factor < 0.0 {
                return Err(ModelError::NonFinite("scenario scale factor"));
            }
            (model.internal().clone(), model.induced().scaled(*factor))
        }
        Scenario::ReduceInducedOrder { delta_gamma } => {
            if !delta_gamma.is_finite() || *delta_gamma < 0.0 {
                return Err(ModelError::NonFinite("scenario order reduction"));
            }
            let reduced = match model.induced() {
                ScalingFactor::ShiftedPower {
                    coefficient,
                    exponent,
                } => ScalingFactor::ShiftedPower {
                    coefficient: *coefficient,
                    exponent: (exponent - delta_gamma).max(0.0),
                },
                ScalingFactor::Power {
                    coefficient,
                    exponent,
                } => ScalingFactor::Power {
                    coefficient: *coefficient,
                    exponent: (exponent - delta_gamma).max(0.0),
                },
                other => other.clone(),
            };
            (model.internal().clone(), reduced)
        }
        Scenario::EliminateInduced => (model.internal().clone(), ScalingFactor::zero()),
    };
    IpsoModel::builder(model.eta())
        .external(model.external().clone())
        .internal(internal)
        .induced(induced)
        .build()
}

/// Scales the *growth* component of a factor while keeping `f(1) = 1`:
/// `f'(n) = 1 + k·(f(n) − 1)`.
fn scale_growth(factor: &ScalingFactor, k: f64) -> ScalingFactor {
    match factor {
        ScalingFactor::Constant(_) => factor.clone(),
        ScalingFactor::Affine { slope, intercept } => {
            // f(1) = slope + intercept; keep that point, scale the slope.
            let at_one = slope + intercept;
            ScalingFactor::Affine {
                slope: slope * k,
                intercept: at_one - slope * k,
            }
        }
        other => {
            // Generic fallback: tabulate 1 + k·(f(n) − 1) over a wide grid.
            let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
                .iter()
                .map(|&n| {
                    let at_one = other.eval(1.0);
                    (n, 1.0 + k * (other.eval(n) / at_one.max(1e-300) - 1.0))
                })
                .collect();
            ScalingFactor::Table(points)
        }
    }
}

/// Evaluates several scenarios at an operating point, sorted by gain
/// (largest first) — "which fix buys the most?".
///
/// # Errors
///
/// Propagates application and evaluation errors.
pub fn rank_scenarios(
    model: &IpsoModel,
    scenarios: &[Scenario],
    n: f64,
) -> Result<Vec<ScenarioOutcome>, ModelError> {
    let baseline = model.speedup(n)?;
    let mut out = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let improved_model = apply(model, s)?;
        let improved = improved_model.speedup(n)?;
        out.push(ScenarioOutcome {
            scenario: s.clone(),
            n,
            baseline,
            improved,
            model: improved_model,
        });
    }
    out.sort_by(|a, b| b.gain().total_cmp(&a.gain()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_like() -> IpsoModel {
        IpsoModel::builder(0.6)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.43, 0.57))
            .build()
            .expect("valid")
    }

    fn cf_like() -> IpsoModel {
        IpsoModel::builder(1.0)
            .external(ScalingFactor::one())
            .induced(ScalingFactor::induced(1.0 / 3600.0, 2.0))
            .build()
            .expect("valid")
    }

    #[test]
    fn halving_merge_growth_lifts_the_bound() {
        let model = sort_like();
        let fixed = apply(&model, &Scenario::ScaleInternalGrowth { factor: 0.5 }).unwrap();
        // IN(1) stays 1 in the modified model.
        assert!((fixed.internal().eval(1.0) - 1.0).abs() < 1e-9);
        let n = 160.0;
        assert!(fixed.speedup(n).unwrap() > 1.5 * model.speedup(n).unwrap());
    }

    #[test]
    fn eliminating_internal_scaling_restores_gustafson() {
        let model = sort_like();
        let fixed = apply(&model, &Scenario::EliminateInternalScaling).unwrap();
        let expected = crate::classic::gustafson(0.6, 100.0).unwrap();
        assert!((fixed.speedup(100.0).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn reducing_broadcast_order_moves_the_peak() {
        let model = cf_like();
        let fixed = apply(&model, &Scenario::ReduceInducedOrder { delta_gamma: 1.0 }).unwrap();
        let (peak_before, _) = model.peak_speedup(500).unwrap();
        let (peak_after, s_after) = fixed.peak_speedup(500).unwrap();
        // Quadratic → linear q: with γ = 1 the speedup becomes bounded
        // but monotone — no interior peak any more.
        assert!(
            peak_after > 2 * peak_before,
            "{peak_before} -> {peak_after}"
        );
        assert!(s_after > model.peak_speedup(500).unwrap().1);
    }

    #[test]
    fn eliminating_induced_workload_restores_linear_scaling() {
        let model = cf_like();
        let fixed = apply(&model, &Scenario::EliminateInduced).unwrap();
        assert!((fixed.speedup(300.0).unwrap() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_orders_by_gain() {
        // For the CF pathology, removing the broadcast beats damping it.
        let model = cf_like();
        let ranked = rank_scenarios(
            &model,
            &[
                Scenario::ScaleInduced { factor: 0.5 },
                Scenario::EliminateInduced,
                Scenario::ReduceInducedOrder { delta_gamma: 1.0 },
            ],
            200.0,
        )
        .unwrap();
        assert_eq!(ranked[0].scenario, Scenario::EliminateInduced);
        assert!(ranked.windows(2).all(|w| w[0].gain() >= w[1].gain()));
        assert!(ranked[0].gain() > 1.0);
    }

    #[test]
    fn internal_scenarios_do_not_change_serial_free_models() {
        let model = cf_like(); // eta = 1: no serial portion at all
        let out = rank_scenarios(&model, &[Scenario::EliminateInternalScaling], 100.0).unwrap();
        assert!(out[0].gain().abs() < 1e-9);
    }

    #[test]
    fn invalid_factors_rejected() {
        let model = sort_like();
        assert!(apply(&model, &Scenario::ScaleInduced { factor: -1.0 }).is_err());
        assert!(apply(&model, &Scenario::ScaleInternalGrowth { factor: f64::NAN }).is_err());
        assert!(apply(&model, &Scenario::ReduceInducedOrder { delta_gamma: -0.5 }).is_err());
    }

    #[test]
    fn scenario_display_is_readable() {
        assert_eq!(
            Scenario::ScaleInduced { factor: 0.5 }.to_string(),
            "scale induced factor by 0.5"
        );
        assert_eq!(
            Scenario::EliminateInduced.to_string(),
            "eliminate induced workload"
        );
    }
}
