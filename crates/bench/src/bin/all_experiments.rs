//! Runs every figure/table regeneration binary in sequence.
//!
//! ```text
//! cargo run -p ipso-bench --release --bin all_experiments -- --jobs 4
//! ```
//!
//! The `--jobs N` flag is forwarded to every child binary, so one flag
//! parallelizes the whole regeneration; the CSVs under `results/` are
//! byte-identical for every `N`.

use std::process::Command;

use ipso_bench::jobs_from_args;

const EXPERIMENTS: &[&str] = &[
    "fig2_taxonomy_fixed_time",
    "fig3_taxonomy_fixed_size",
    "fig4_mapreduce_speedups",
    "fig5_terasort_stepwise",
    "fig6_scaling_factors",
    "fig7_ipso_prediction",
    "table1_collab_filtering",
    "fig8_collab_filtering",
    "fig9_spark_fixed_time",
    "fig10_spark_fixed_size",
    "provisioning_tradeoffs",
    // Ablations of the mechanisms behind the paper's pathologies.
    "ablation_broadcast",
    "ablation_scheduler",
    "ablation_stragglers",
    "ablation_memory",
    "ablation_shuffle_pipelining",
    "ablation_faults",
    "sensitivity_analysis",
];

fn main() {
    let jobs = jobs_from_args(std::env::args().skip(1));
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("──────────────────────────────────────────────────────");
        println!("▶ {name}");
        println!("──────────────────────────────────────────────────────");
        let status = Command::new(bin_dir.join(name))
            .arg("--jobs")
            .arg(jobs.to_string())
            .status()
            .unwrap_or_else(|e| panic!("cannot launch {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs under results/",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
