//! Ablation: centralized scheduler dispatch cost.
//!
//! [Qu et al.] (the paper's reference \[7\]) blame centralized schedulers
//! for a quadratic task-dispatch burden. This ablation runs the same
//! large Spark job under three dispatch models — Hadoop-like, Spark-like
//! and an idealized distributed scheduler — and measures how much of the
//! wall clock the dispatcher eats as the task count grows.

use ipso_bench::{SweepRunner, Table};
use ipso_cluster::CentralScheduler;
use ipso_spark::{run_job, run_sequential_reference};
use ipso_workloads::bayes;

fn main() {
    let runner = SweepRunner::from_env();
    let schedulers: [(&str, CentralScheduler); 3] = [
        ("hadoop", CentralScheduler::hadoop_like()),
        ("spark", CentralScheduler::spark_like()),
        ("idealized", CentralScheduler::idealized()),
    ];
    let task_counts = [64u32, 128, 256, 512, 1024, 2048];

    let mut table = Table::new(
        "ablation_scheduler",
        &[
            "tasks",
            "hadoop_speedup",
            "spark_speedup",
            "idealized_speedup",
        ],
    );

    // Grid: (tasks, scheduler), task-count-major to match the row order.
    let grid: Vec<(u32, usize)> = task_counts
        .iter()
        .flat_map(|&t| (0..schedulers.len()).map(move |s| (t, s)))
        .collect();
    let mut speedups = runner
        .map(grid, |_ctx, (tasks, s)| {
            let m = 64;
            let mut spec = bayes::job(tasks, m);
            // Shrink per-task compute so dispatch matters, as in
            // fine-grained cloud workloads.
            for stage in &mut spec.stages {
                stage.task_compute /= 8.0;
                stage.input_bytes_per_task = 0;
                stage.caches_input = false;
            }
            spec.scheduler = schedulers[s].1;
            run_sequential_reference(&spec) / run_job(&spec).total_time
        })
        .into_iter();

    for &tasks in &task_counts {
        let mut row = vec![f64::from(tasks)];
        row.extend(speedups.by_ref().take(schedulers.len()));
        table.push(row);
    }
    table.emit();

    let hadoop = table.values("hadoop_speedup");
    let ideal = table.values("idealized_speedup");
    let last = hadoop.len() - 1;
    println!(
        "at 2048 fine-grained tasks the idealized scheduler is {:.1}x faster than the\n\
         hadoop-like one ({:.1} vs {:.1}) — the centralized-dispatch bottleneck of [7]",
        ideal[last] / hadoop[last],
        ideal[last],
        hadoop[last]
    );
    assert!(
        ideal[last] > hadoop[last],
        "idealized dispatch must win at scale"
    );
}
