#![warn(missing_docs)]

//! Regression and curve-fitting substrate for the IPSO reproduction.
//!
//! The IPSO paper estimates its scaling factors — `EX(n)`, `IN(n)` and
//! `q(n)` — from measurements at small scale-out degrees and extrapolates
//! them to large `n` (Section V, "Scaling Prediction"). The original authors
//! used off-the-shelf (non)linear regression; this crate implements the same
//! toolkit from scratch:
//!
//! * [`linear`] — ordinary least squares for `y = a + b·x` with diagnostics.
//! * [`polynomial`] — polynomial least squares of arbitrary degree.
//! * [`powerlaw`] — power-law fits `y = a·x^b` (log–log OLS) and
//!   `y = a·x^b + c` (nonlinear).
//! * [`segmented`] — two-segment linear regression with changepoint search,
//!   used for the step-wise internal scaling of TeraSort (paper Fig. 5).
//! * [`nonlinear`] — Gauss–Newton and Levenberg–Marquardt solvers with
//!   numeric Jacobians for arbitrary parametric models.
//! * [`select`] — AICc-based model selection across candidate families.
//! * [`matrix`] — the small dense linear-algebra kernel backing the solvers.
//! * [`diagnostics`] — R², adjusted R², RMSE and residual helpers.
//!
//! # Example
//!
//! ```
//! use ipso_fit::linear::fit_line;
//!
//! # fn main() -> Result<(), ipso_fit::FitError> {
//! // IN(n) for Sort in the paper is approximately 0.36·n − 0.11.
//! let n: Vec<f64> = (1..=16).map(|v| v as f64).collect();
//! let y: Vec<f64> = n.iter().map(|v| 0.36 * v - 0.11).collect();
//! let fit = fit_line(&n, &y)?;
//! assert!((fit.slope - 0.36).abs() < 1e-9);
//! assert!((fit.intercept + 0.11).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod diagnostics;
pub mod error;
pub mod linear;
pub mod matrix;
pub mod nonlinear;
pub mod polynomial;
pub mod powerlaw;
pub mod segmented;
pub mod select;

pub use error::FitError;
pub use linear::{fit_line, fit_line_through_origin, LineFit};
pub use nonlinear::{levenberg_marquardt, NonlinearFit, NonlinearOptions};
pub use polynomial::{fit_polynomial, PolynomialFit};
pub use powerlaw::{fit_power_law, fit_power_law_offset, PowerLawFit};
pub use segmented::{fit_two_segment, TwoSegmentFit};
pub use select::{select_model, Candidate, ModelFamily};
