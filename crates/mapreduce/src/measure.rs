//! Converting job traces into IPSO measurements and sweeping `n`.

use ipso::measurement::{RunMeasurement, SpeedupCurve};
use ipso_cluster::JobTrace;

use crate::api::{Mapper, Reducer};
use crate::config::JobSpec;
use crate::engine::{run_scale_out, run_sequential};
use crate::split::InputSplit;

/// Builds the IPSO run decomposition from a paired sequential/scale-out
/// execution at the same scale-out degree, following the paper's
/// attribution:
///
/// * `Wp(n)` — the sequential run's map phase (sum of task times);
/// * `Ws(n)` — the sequential run's shuffle + merge + reduce;
/// * `max Tp,i(n)` — the scale-out run's map phase (slowest task);
/// * `Wo(n)` — overheads present only in the scale-out run: the recorded
///   scale-out overhead plus any excess of the scale-out serial phases
///   over their sequential counterparts (e.g. incast-stretched shuffle).
///
/// # Panics
///
/// Panics if the two traces disagree on `n`.
pub fn measurement_from_runs(seq: &JobTrace, par: &JobTrace) -> RunMeasurement {
    assert_eq!(seq.n, par.n, "sequential and scale-out traces must share n");
    let seq_serial = seq.phases.serial_portion();
    let par_serial = par.phases.serial_portion();
    // Any stretch of the serial phases caused purely by scaling out
    // (incast, queueing) is scale-out-induced workload, not Ws.
    let serial_excess = (par_serial - seq_serial).max(0.0);
    RunMeasurement {
        n: seq.n,
        seq_parallel_work: seq.phases.map,
        seq_serial_work: seq_serial,
        par_map_time: par.phases.map,
        par_serial_time: par_serial.min(seq_serial),
        par_overhead: par.scale_out_overhead + serial_excess,
    }
}

/// One point of a scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Scale-out degree.
    pub n: u32,
    /// Sequential-execution trace.
    pub seq: JobTrace,
    /// Scale-out trace.
    pub par: JobTrace,
    /// The derived IPSO measurement.
    pub measurement: RunMeasurement,
}

/// Results of sweeping the scale-out degree for one application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalingSweep {
    /// Points in ascending `n`.
    pub points: Vec<SweepPoint>,
}

impl ScalingSweep {
    /// Runs a full sweep: for each `n`, execute the sequential reference
    /// and the scale-out job, derive the measurement.
    ///
    /// * `make_spec(n)` — job spec for degree `n`;
    /// * `par_splits(n)` — the `n` splits of the scale-out run;
    /// * `seq_splits(n)` — the task list of the sequential model (equal to
    ///   `par_splits(n)` for fixed-time workloads; a single whole-set
    ///   split for fixed-size ones, per the paper's Section IV).
    pub fn run<M, R>(
        ns: &[u32],
        mapper: &M,
        reducer: &R,
        mut make_spec: impl FnMut(u32) -> JobSpec,
        mut par_splits: impl FnMut(u32) -> Vec<InputSplit<M::Input>>,
        mut seq_splits: impl FnMut(u32) -> Vec<InputSplit<M::Input>>,
    ) -> ScalingSweep
    where
        M: Mapper + Sync,
        M::Input: Sync,
        M::Key: Send,
        M::Value: Send,
        R: Reducer<Key = M::Key, Value = M::Value>,
    {
        let mut points = Vec::with_capacity(ns.len());
        for &n in ns {
            let spec = make_spec(n);
            let par = run_scale_out(&spec, mapper, reducer, &par_splits(n)).trace;
            let mut seq = run_sequential(&spec, mapper, reducer, &seq_splits(n)).trace;
            // The sequential model's n is the sweep's n even when it runs
            // as a single task over the whole working set (fixed-size).
            seq.n = n;
            let measurement = measurement_from_runs(&seq, &par);
            points.push(SweepPoint {
                n,
                seq,
                par,
                measurement,
            });
        }
        points.sort_by_key(|p| p.n);
        ScalingSweep { points }
    }

    /// The derived measurements, in ascending `n`.
    pub fn measurements(&self) -> Vec<RunMeasurement> {
        self.points.iter().map(|p| p.measurement).collect()
    }

    /// The measured speedup curve.
    ///
    /// # Errors
    ///
    /// Propagates curve-construction errors.
    pub fn speedup_curve(&self) -> Result<SpeedupCurve, ipso::ModelError> {
        SpeedupCurve::from_pairs(self.points.iter().map(|p| (p.n, p.measurement.speedup())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipso_cluster::PhaseTimes;

    fn trace(n: u32, map: f64, shuffle: f64, merge: f64, reduce: f64, wo: f64) -> JobTrace {
        JobTrace {
            job: "t".into(),
            n,
            phases: PhaseTimes {
                init: 1.0,
                map,
                shuffle,
                merge,
                reduce,
            },
            tasks: Vec::new(),
            scale_out_overhead: wo,
            config: None,
            faults: None,
        }
    }

    #[test]
    fn attribution_follows_the_paper() {
        let seq = trace(4, 40.0, 2.0, 6.0, 2.0, 0.0);
        let par = trace(4, 11.0, 3.0, 6.0, 2.0, 0.5);
        let m = measurement_from_runs(&seq, &par);
        assert_eq!(m.n, 4);
        assert_eq!(m.seq_parallel_work, 40.0);
        assert_eq!(m.seq_serial_work, 10.0);
        assert_eq!(m.par_map_time, 11.0);
        // Incast stretched the shuffle by 1 s: counted as overhead.
        assert_eq!(m.par_serial_time, 10.0);
        assert!((m.par_overhead - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_serial_excess_when_parallel_is_faster() {
        let seq = trace(2, 20.0, 2.0, 4.0, 2.0, 0.0);
        let par = trace(2, 10.5, 2.0, 4.0, 2.0, 0.2);
        let m = measurement_from_runs(&seq, &par);
        assert_eq!(m.par_overhead, 0.2);
        assert_eq!(m.par_serial_time, 8.0);
    }

    #[test]
    #[should_panic(expected = "share n")]
    fn mismatched_n_rejected() {
        let seq = trace(2, 1.0, 0.0, 0.0, 0.0, 0.0);
        let par = trace(3, 1.0, 0.0, 0.0, 0.0, 0.0);
        let _ = measurement_from_runs(&seq, &par);
    }

    // Full sweep integration with a real mini-job.
    use crate::api::{Mapper, Reducer};
    use crate::JobSpec;

    struct IdMap;
    impl Mapper for IdMap {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, *input);
        }
    }
    struct IdReduce;
    impl Reducer for IdReduce {
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, key: &u64, values: &[u64], emit: &mut dyn FnMut(u64)) {
            for _ in values {
                emit(*key);
            }
        }
    }

    fn mk_splits(n: u32) -> Vec<InputSplit<u64>> {
        (0..n)
            .map(|i| {
                let records: Vec<u64> = (0..64).map(|j| u64::from(i) * 64 + j).collect();
                InputSplit::new(records, 64 * 8, 128 * 1024 * 1024)
            })
            .collect()
    }

    #[test]
    fn sweep_produces_increasing_speedups_for_sort_like_job() {
        let sweep = ScalingSweep::run(
            &[1, 2, 4, 8],
            &IdMap,
            &IdReduce,
            |n| JobSpec::emr("sort", n),
            mk_splits,
            mk_splits,
        );
        assert_eq!(sweep.points.len(), 4);
        let curve = sweep.speedup_curve().unwrap();
        assert!(curve.points()[0].speedup <= curve.points()[3].speedup * 1.01);
        // Speedup at n = 1 is ~1: only the scale-out environment's extra
        // setup (≈1 s on a ≈7 s job) separates the two runs.
        assert!((curve.points()[0].speedup - 1.0).abs() < 0.2);
        let ms = sweep.measurements();
        assert!(ms.windows(2).all(|w| w[0].n < w[1].n));
    }
}
