//! Modeling an iterative ML job with the multi-round IPSO extension
//! (paper Section III), plus the sensitivity analysis that tells you
//! which scaling parameter to measure carefully.
//!
//! ```text
//! cargo run --release --example iterative_ml
//! ```

use ipso::multiround::{MultiRoundJob, Round};
use ipso::sensitivity::sensitivity;
use ipso::{AsymptoticParams, ScalingFactor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ALS-style job: each of three iterations alternates two
    // broadcast-then-map rounds (the paper's Collaborative Filtering
    // structure), plus a final fixed-time evaluation round with a real
    // merge.
    let mut rounds = Vec::new();
    for iter in 0..3 {
        for half in ["users", "items"] {
            rounds.push(
                Round::fixed_size(&format!("iter{iter}-{half}"), 260.0, 0.0)
                    .with_induced(ScalingFactor::induced(1.0 / 3600.0, 2.0)),
            );
        }
    }
    // The final evaluation pass scores the fixed model over the fixed
    // test set — also fixed-size, with a real serial merge.
    rounds.push(Round::fixed_size("evaluate", 120.0, 25.0));
    let job = MultiRoundJob::new(rounds)?;

    println!("aggregate eta = {:.3}", job.eta());
    println!(
        "\n{:>5} {:>10} {:>12} {:>12}",
        "n", "speedup", "seq time s", "par time s"
    );
    for n in [1u32, 10, 30, 60, 90, 120, 180] {
        let nf = f64::from(n);
        println!(
            "{:>5} {:>10.2} {:>12.1} {:>12.1}",
            n,
            job.speedup(nf)?,
            job.sequential_time(nf),
            job.parallel_time(nf)?
        );
    }
    let (n_peak, s_peak) = job.peak_speedup(300)?;
    println!(
        "\npeak: S({n_peak}) = {s_peak:.1} — past it, every broadcast round's linear\n\
         cost outgrows the shrinking per-node work (type IVs)"
    );

    // Which parameter controls the fate of this job? Approximate the
    // aggregate asymptotically and ask the sensitivity analysis.
    let params = AsymptoticParams::new(job.eta(), 1.0, 0.0, 1.0 / 3600.0, 2.0)?;
    let sens = sensitivity(&params, f64::from(n_peak))?;
    println!(
        "\nsensitivities at the peak: eta {:+.2}, alpha {:+.2}, delta {:+.2}, \
         beta {:+.2}, gamma {:+.2}",
        sens.eta, sens.alpha, sens.delta, sens.beta, sens.gamma
    );
    println!(
        "dominant parameter: {} — spend measurement effort there first",
        sens.dominant()
    );
    Ok(())
}
