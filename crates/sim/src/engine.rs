//! The simulation driver: a virtual clock plus an event queue.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A discrete-event simulation.
///
/// The driver is deliberately thin: callers pull events with
/// [`Simulation::next_event`] (which advances the clock) and schedule new
/// ones in response. This keeps the engine free of trait gymnastics while
/// remaining fully deterministic.
///
/// # Example
///
/// ```
/// use ipso_sim::Simulation;
///
/// // A tiny M/D/1-style cascade: each event spawns one follow-up until
/// // five have fired.
/// let mut sim = Simulation::new();
/// sim.schedule_in(1.0, 0u32);
/// let mut fired = Vec::new();
/// while let Some((_, k)) = sim.next_event() {
///     fired.push(k);
///     if k < 4 {
///         sim.schedule_in(1.0, k + 1);
///     }
/// }
/// assert_eq!(fired, vec![0, 1, 2, 3, 4]);
/// assert_eq!(sim.now().as_secs(), 5.0);
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates a simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock — events cannot fire in
    /// the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.queue.push(at, event);
    }

    /// Schedules `event` after a `delay` in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and >= 0"
        );
        self.queue.push(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its firing time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.processed += 1;
        ipso_obs::counter_add("sim.events_processed", 1);
        Some((t, e))
    }

    /// Runs events through a handler until the queue drains, returning the
    /// final clock value. The handler may schedule further events.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(&mut Simulation<E>, SimTime, E),
    {
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
        }
        self.now
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule_in(2.0, "b");
        sim.schedule_in(1.0, "a");
        assert_eq!(sim.pending(), 2);
        let (t, e) = sim.next_event().unwrap();
        assert_eq!((t.as_secs(), e), (1.0, "a"));
        assert_eq!(sim.now().as_secs(), 1.0);
        let (t, e) = sim.next_event().unwrap();
        assert_eq!((t.as_secs(), e), (2.0, "b"));
        assert_eq!(sim.processed(), 2);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn run_drains_cascading_events() {
        let mut sim = Simulation::new();
        sim.schedule_in(0.5, 3u32);
        let end = sim.run(|sim, _, remaining| {
            if remaining > 0 {
                sim.schedule_in(0.5, remaining - 1);
            }
        });
        assert_eq!(end.as_secs(), 2.0);
        assert_eq!(sim.processed(), 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_in(1.0, ());
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(0.5), ());
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn negative_delay_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_in(-1.0, ());
    }

    #[test]
    fn relative_scheduling_uses_current_clock() {
        let mut sim = Simulation::new();
        sim.schedule_in(1.0, 1);
        sim.next_event();
        sim.schedule_in(1.0, 2);
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t.as_secs(), 2.0);
    }
}
