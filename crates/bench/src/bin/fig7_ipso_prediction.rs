//! Fig. 7 — IPSO-predicted speedups versus measured and Gustafson's law
//! for the four MapReduce cases.
//!
//! The pipeline fits the scaling factors on small runs only (n ≤ 16 for
//! QMC/WordCount/Sort; 16 ≤ n ≤ 64 for TeraSort, skipping the pre-spill
//! regime as the paper does) and extrapolates to n = 200. The headline
//! claim: IPSO tracks the measured curves everywhere while Gustafson's
//! law overshoots by an order of magnitude on Sort/TeraSort.

use ipso::classic::gustafson;
use ipso::predict::ScalingPredictor;
use ipso_bench::Table;
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::{qmc, sort, terasort, wordcount, FIT_WINDOW, PAPER_SWEEP};

fn main() {
    let cases: Vec<(&str, ScalingSweep, bool)> = vec![
        ("qmc", qmc::sweep(PAPER_SWEEP), false),
        ("wordcount", wordcount::sweep(PAPER_SWEEP), false),
        ("sort", sort::sweep(PAPER_SWEEP), false),
        // TeraSort: fit past the spill boundary, as the paper does; the
        // n = 1 run still provides the workload reference.
        (
            "terasort",
            terasort::sweep(&[
                1, 2, 4, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128, 160, 200,
            ]),
            true,
        ),
    ];

    for (name, sweep, late_window) in &cases {
        let measurements = sweep.measurements();
        let predictor = if *late_window {
            ScalingPredictor::fit_range(&measurements, 16, 64).expect("fit")
        } else {
            ScalingPredictor::fit(&measurements, FIT_WINDOW).expect("fit")
        };
        let base = &measurements[0];
        let eta = base.seq_parallel_work / (base.seq_parallel_work + base.seq_serial_work);

        let mut table = Table::new(
            &format!("fig7_{name}"),
            &["n", "measured", "ipso", "gustafson"],
        );
        let mut max_rel_err = 0.0f64;
        for m in &measurements {
            let ipso_s = predictor.predict(f64::from(m.n)).expect("predictable");
            let g = gustafson(eta, f64::from(m.n)).expect("valid");
            table.push(vec![f64::from(m.n), m.speedup(), ipso_s, g]);
            if m.n > predictor.window() {
                max_rel_err = max_rel_err.max((ipso_s - m.speedup()).abs() / m.speedup());
            }
        }
        table.emit();
        println!(
            "  {name}: max IPSO extrapolation error beyond the fit window = {:.1}%\n",
            100.0 * max_rel_err
        );
    }
}
