//! Quickstart: build IPSO models, evaluate speedups, and classify
//! scaling behaviours.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ipso::classic;
use ipso::taxonomy::{classify, WorkloadType};
use ipso::{AsymptoticParams, IpsoModel, ScalingFactor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. The classic laws are IPSO special cases ──────────────────────
    let eta = 0.9;
    println!("classic laws at eta = {eta}:");
    for n in [4.0, 16.0, 64.0, 256.0] {
        println!(
            "  n = {n:5}: Amdahl {a:7.2}   Gustafson {g:7.2}   Sun-Ni(g=n) {s:7.2}",
            a = classic::amdahl(eta, n)?,
            g = classic::gustafson(eta, n)?,
            s = classic::sun_ni_linear_memory(eta, n)?,
        );
    }

    // ── 2. A data-intensive workload with in-proportion scaling ─────────
    // The serial merge grows with the parallel portion (like the paper's
    // Sort): IN(n) = 0.36n + 0.64 after normalization.
    let sort_like = IpsoModel::builder(eta)
        .external(ScalingFactor::linear())
        .internal(ScalingFactor::affine(0.36, 0.64))
        .build()?;
    println!("\nin-proportion scaling caps the fixed-time speedup:");
    for n in [4.0, 16.0, 64.0, 256.0, 4096.0] {
        println!(
            "  n = {n:6}: S = {s:6.2}   (Gustafson would claim {g:7.1})",
            s = sort_like.speedup(n)?,
            g = classic::gustafson(eta, n)?
        );
    }

    // ── 3. Scale-out-induced overhead can make scaling pathological ─────
    // A broadcast whose cost grows linearly per node induces q(n) ~ n²
    // (the paper's Collaborative Filtering case).
    let cf_like = IpsoModel::builder(1.0)
        .external(ScalingFactor::one()) // fixed-size
        .induced(ScalingFactor::induced(0.0004, 2.0))
        .build()?;
    let (n_peak, s_peak) = cf_like.peak_speedup(300)?;
    println!("\nsuperlinear induced overhead peaks the speedup:");
    println!(
        "  best S = {s_peak:.1} at n = {n_peak}; S(300) = {:.1}",
        cf_like.speedup(300.0)?
    );

    // ── 4. Classify behaviours in the taxonomy of Figs. 2–3 ─────────────
    println!("\ntaxonomy:");
    let cases = [
        (
            "Gustafson-like",
            AsymptoticParams::new(0.9, 1.0, 1.0, 0.0, 0.0)?,
            WorkloadType::FixedTime,
        ),
        (
            "Sort-like",
            AsymptoticParams::new(0.9, 2.8, 0.0, 0.0, 0.0)?,
            WorkloadType::FixedTime,
        ),
        (
            "CF-like",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.0004, 2.0)?,
            WorkloadType::FixedSize,
        ),
    ];
    for (name, params, workload) in cases {
        let (class, bound) = classify(&params, workload)?;
        match bound {
            Some(b) => println!("  {name:15} -> {class} (bound {b:.1})"),
            None => println!("  {name:15} -> {class} (unbounded)"),
        }
    }
    Ok(())
}
