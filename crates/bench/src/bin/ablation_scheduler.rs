//! Ablation: centralized scheduler dispatch cost.
//!
//! [Qu et al.] (the paper's reference \[7\]) blame centralized schedulers
//! for a quadratic task-dispatch burden. This ablation runs the same
//! large Spark job under three dispatch models — Hadoop-like, Spark-like
//! and an idealized distributed scheduler — and measures how much of the
//! wall clock the dispatcher eats as the task count grows.

use ipso_bench::Table;
use ipso_cluster::CentralScheduler;
use ipso_spark::{run_job, run_sequential_reference};
use ipso_workloads::bayes;

fn main() {
    let schedulers: [(&str, CentralScheduler); 3] = [
        ("hadoop", CentralScheduler::hadoop_like()),
        ("spark", CentralScheduler::spark_like()),
        ("idealized", CentralScheduler::idealized()),
    ];

    let mut table = Table::new(
        "ablation_scheduler",
        &[
            "tasks",
            "hadoop_speedup",
            "spark_speedup",
            "idealized_speedup",
        ],
    );

    for &tasks in &[64u32, 128, 256, 512, 1024, 2048] {
        let m = 64;
        let mut row = vec![f64::from(tasks)];
        for (_, sched) in &schedulers {
            let mut spec = bayes::job(tasks, m);
            // Shrink per-task compute so dispatch matters, as in
            // fine-grained cloud workloads.
            for s in &mut spec.stages {
                s.task_compute /= 8.0;
                s.input_bytes_per_task = 0;
                s.caches_input = false;
            }
            spec.scheduler = *sched;
            let speedup = run_sequential_reference(&spec) / run_job(&spec).total_time;
            row.push(speedup);
        }
        table.push(row);
    }
    table.emit();

    let hadoop = table.values("hadoop_speedup");
    let ideal = table.values("idealized_speedup");
    let last = hadoop.len() - 1;
    println!(
        "at 2048 fine-grained tasks the idealized scheduler is {:.1}x faster than the\n\
         hadoop-like one ({:.1} vs {:.1}) — the centralized-dispatch bottleneck of [7]",
        ideal[last] / hadoop[last],
        ideal[last],
        hadoop[last]
    );
    assert!(
        ideal[last] > hadoop[last],
        "idealized dispatch must win at scale"
    );
}
