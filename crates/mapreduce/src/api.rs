//! User-facing MapReduce traits.

/// Types whose serialized size the engine can account for. Intermediate
/// data volumes (and therefore shuffle and merge costs) are derived from
/// these sizes.
pub trait Sizeable {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> u64;
}

impl Sizeable for String {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl Sizeable for &str {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl Sizeable for std::sync::Arc<str> {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl Sizeable for u64 {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Sizeable for i64 {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Sizeable for f64 {
    fn size_bytes(&self) -> u64 {
        8
    }
}

impl Sizeable for u32 {
    fn size_bytes(&self) -> u64 {
        4
    }
}

impl Sizeable for () {
    fn size_bytes(&self) -> u64 {
        0
    }
}

impl Sizeable for Vec<u8> {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl<const N: usize> Sizeable for [u8; N] {
    fn size_bytes(&self) -> u64 {
        N as u64
    }
}

impl<A: Sizeable, B: Sizeable> Sizeable for (A, B) {
    fn size_bytes(&self) -> u64 {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

/// How a mapper's (post-combine) output volume extrapolates from the
/// executed sample to the nominal shard size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputScaling {
    /// Output grows in proportion to input (Sort, TeraSort: every record
    /// passes through). Nominal intermediate bytes = sample bytes ÷
    /// sample fraction.
    Proportional,
    /// Output saturates at a bounded key space (WordCount after its
    /// combiner: at most one entry per dictionary word; QMC-Pi: one
    /// partial count per task). Nominal intermediate bytes = sample bytes.
    Saturating,
}

/// A map function over one input record.
///
/// # Example
///
/// ```
/// use ipso_mapreduce::{Mapper, OutputScaling};
///
/// struct Tokenize;
///
/// impl Mapper for Tokenize {
///     type Input = String;
///     type Key = String;
///     type Value = u64;
///
///     fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
///         for word in line.split_whitespace() {
///             emit(word.to_string(), 1);
///         }
///     }
///
///     fn combine(&self, _key: &String, values: &mut Vec<u64>) {
///         let sum = values.iter().sum();
///         values.clear();
///         values.push(sum);
///     }
///
///     fn output_scaling(&self) -> OutputScaling {
///         OutputScaling::Saturating
///     }
/// }
/// ```
pub trait Mapper {
    /// Input record type.
    type Input;
    /// Intermediate key.
    type Key: Ord + Clone + Sizeable;
    /// Intermediate value.
    type Value: Clone + Sizeable;

    /// Maps one record, emitting zero or more key/value pairs.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// Optional map-side combiner applied per task and key, rewriting
    /// the group's values in place (so a summing combiner reuses the
    /// group's buffer instead of allocating a fresh one per key). The
    /// default leaves the values unchanged.
    fn combine(&self, _key: &Self::Key, _values: &mut Vec<Self::Value>) {}

    /// How this mapper's output volume extrapolates to nominal shard
    /// sizes. Defaults to [`OutputScaling::Proportional`].
    fn output_scaling(&self) -> OutputScaling {
        OutputScaling::Proportional
    }
}

/// A reduce function over one key group.
pub trait Reducer {
    /// Intermediate key (matches the mapper's).
    type Key: Ord + Clone + Sizeable;
    /// Intermediate value (matches the mapper's).
    type Value: Clone + Sizeable;
    /// Output record.
    type Output;

    /// Reduces all values of one key to zero or more outputs.
    fn reduce(&self, key: &Self::Key, values: &[Self::Value], emit: &mut dyn FnMut(Self::Output));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_sensible() {
        assert_eq!("hello".to_string().size_bytes(), 5);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(1.5f64.size_bytes(), 8);
        assert_eq!(3u32.size_bytes(), 4);
        assert_eq!(().size_bytes(), 0);
        assert_eq!(vec![0u8; 10].size_bytes(), 10);
        assert_eq!([0u8; 10].size_bytes(), 10);
        assert_eq!(std::sync::Arc::<str>::from("hello").size_bytes(), 5);
        assert_eq!(("ab".to_string(), 1u64).size_bytes(), 10);
    }

    struct Identity;
    impl Mapper for Identity {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(*input, 1);
        }
    }

    #[test]
    fn default_combine_is_passthrough() {
        let m = Identity;
        let mut values = vec![1, 2, 3];
        m.combine(&1, &mut values);
        assert_eq!(values, vec![1, 2, 3]);
        assert_eq!(m.output_scaling(), OutputScaling::Proportional);
    }

    #[test]
    fn mapper_emits_through_closure() {
        let m = Identity;
        let mut out = Vec::new();
        m.map(&42, &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(42, 1)]);
    }
}
