//! Per-workload processing-rate calibration.
//!
//! The engine executes real records but charges virtual time from data
//! volumes through these rates. Defaults approximate 2019-era m4.large
//! workers processing 128 MB HDFS blocks.

use serde::{Deserialize, Serialize};

/// Processing rates for one MapReduce job class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobCostModel {
    /// Map-side processing rate, input bytes/s per processing unit.
    pub map_rate: f64,
    /// Shuffle-stage service rate at the reducer (pulling mapper output
    /// from DFS), bytes/s, before any incast penalty.
    pub shuffle_rate: f64,
    /// Merge-stage rate (in-memory external merge of sorted runs),
    /// bytes/s.
    pub merge_rate: f64,
    /// Final reduce-stage rate, bytes/s of reduce input.
    pub reduce_rate: f64,
    /// Fixed sequential-job initialization time (JVM startup etc.), s.
    pub seq_init: f64,
    /// Fixed reducer-side setup cost charged once per job in the merge
    /// phase (reduce container launch, sort buffers), s. For jobs with
    /// tiny intermediate data (WordCount, QMC) this constant dominates the
    /// serial portion, which is why the paper measures `IN(n) ≈ 1` for
    /// them.
    pub serial_setup: f64,
}

impl JobCostModel {
    /// A CPU-light, IO-bound profile (Sort/TeraSort-like): mapping is
    /// mostly a pass-through, merging dominates.
    pub fn io_bound() -> JobCostModel {
        JobCostModel {
            map_rate: 80.0e6,
            shuffle_rate: 90.0e6,
            merge_rate: 45.0e6,
            reduce_rate: 120.0e6,
            seq_init: 2.0,
            serial_setup: 1.0,
        }
    }

    /// A CPU-heavy profile (WordCount-like): mapping is slower per byte,
    /// reduce input is tiny.
    pub fn cpu_bound() -> JobCostModel {
        JobCostModel {
            map_rate: 40.0e6,
            shuffle_rate: 90.0e6,
            merge_rate: 45.0e6,
            reduce_rate: 120.0e6,
            seq_init: 2.0,
            serial_setup: 1.0,
        }
    }

    /// Validates rate ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("map_rate", self.map_rate),
            ("shuffle_rate", self.shuffle_rate),
            ("merge_rate", self.merge_rate),
            ("reduce_rate", self.reduce_rate),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive"));
            }
        }
        if !self.seq_init.is_finite() || self.seq_init < 0.0 {
            return Err("seq_init must be finite and >= 0".into());
        }
        if !self.serial_setup.is_finite() || self.serial_setup < 0.0 {
            return Err("serial_setup must be finite and >= 0".into());
        }
        Ok(())
    }

    /// Map-task time for `bytes` of nominal input.
    pub fn map_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.map_rate
    }

    /// Merge-stage time for `bytes` of reduce input (before any memory
    /// slowdown multiplier).
    pub fn merge_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.merge_rate
    }

    /// Reduce-stage time for `bytes` of reduce input.
    pub fn reduce_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.reduce_rate
    }

    /// Shuffle-stage time for `bytes` at the reducer without network
    /// effects (the sequential execution path: local DFS reads).
    pub fn shuffle_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.shuffle_rate
    }
}

impl Default for JobCostModel {
    fn default() -> Self {
        JobCostModel::io_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn presets_validate() {
        assert!(JobCostModel::io_bound().validate().is_ok());
        assert!(JobCostModel::cpu_bound().validate().is_ok());
    }

    #[test]
    fn map_time_for_128mb_block_is_seconds() {
        let c = JobCostModel::io_bound();
        let t = c.map_time(128 * MIB);
        assert!((1.0..3.0).contains(&t), "t = {t}");
    }

    #[test]
    fn rates_divide_correctly() {
        let c = JobCostModel::io_bound();
        assert!((c.merge_time(45_000_000) - 1.0).abs() < 1e-9);
        assert!((c.reduce_time(120_000_000) - 1.0).abs() < 1e-9);
        assert!((c.shuffle_time(90_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_rates() {
        let mut c = JobCostModel::io_bound();
        c.map_rate = 0.0;
        assert!(c.validate().is_err());
        c = JobCostModel::io_bound();
        c.seq_init = -1.0;
        assert!(c.validate().is_err());
    }
}
