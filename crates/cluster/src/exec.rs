//! Wave scheduling of a task set over an executor pool.
//!
//! Spark runs `N` tasks on `m` executors in waves; MapReduce with one
//! container per node runs `n` tasks on `n` units in a single wave. In
//! both cases every task must first be dispatched by the centralized
//! scheduler, which serializes dispatches at the master. This module
//! combines the [`CentralScheduler`] cost model with a
//! [`ipso_sim::ServerPool`] to produce the full task timeline.

use ipso_sim::{ServerPool, SimTime};
use serde::{Deserialize, Serialize};

use crate::metrics::TaskRecord;
use crate::scheduler::{CentralScheduler, SchedulerPolicy};

/// Host-side execution knobs shared by the MapReduce and Spark engines.
///
/// These control how the engines use the *host* machine to execute real
/// user code and compute schedules; they never affect simulated time,
/// traces, or outputs — the engines guarantee byte-identical results for
/// every `threads` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Host threads used for map-task waves (MapReduce) and stage
    /// scheduling (Spark): `1` runs sequentially (the default), `0` uses
    /// one worker per available hardware thread.
    pub threads: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { threads: 1 }
    }
}

impl EngineOptions {
    /// Options running on `threads` host threads (`0` = all hardware
    /// threads).
    pub fn with_threads(threads: usize) -> Self {
        EngineOptions { threads }
    }
}

/// The schedule produced by [`run_wave_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSchedule {
    /// Per-task records, in task order.
    pub records: Vec<TaskRecord>,
    /// Time at which the last task finished (s).
    pub makespan: f64,
    /// Total master time spent dispatching (s) — part of `Wo(n)`.
    pub dispatch_total: f64,
}

impl TaskSchedule {
    /// Duration of the slowest task.
    pub fn max_task_duration(&self) -> f64 {
        self.records
            .iter()
            .map(TaskRecord::duration)
            .fold(0.0, f64::max)
    }

    /// Extra wall-clock time attributable to dispatch serialization:
    /// the makespan minus what a zero-dispatch-cost schedule would take.
    pub fn dispatch_induced_delay(&self, zero_dispatch_makespan: f64) -> f64 {
        (self.makespan - zero_dispatch_makespan).max(0.0)
    }
}

/// Runs `durations.len()` tasks over `executors` slots.
///
/// Task `i` becomes runnable once the scheduler has dispatched it
/// (dispatches are serialized at the master in task order) and an executor
/// slot frees up; slots are granted earliest-available-first.
///
/// # Panics
///
/// Panics if `executors` is zero or any duration is negative/non-finite.
pub fn run_wave_schedule(
    durations: &[f64],
    executors: usize,
    scheduler: &CentralScheduler,
) -> TaskSchedule {
    run_wave_schedule_policy(durations, executors, scheduler, SchedulerPolicy::Fifo)
}

/// [`run_wave_schedule`] with an explicit dispatch-order policy.
///
/// [`SchedulerPolicy::Fifo`] reproduces `run_wave_schedule` operation for
/// operation (dispatch order, pool submissions, instrumentation), so every
/// pre-policy artifact is byte-identical. Other policies permute only the
/// dispatch order; the returned records are always in task-id order.
///
/// # Panics
///
/// Panics if `executors` is zero or any duration is negative/non-finite.
pub fn run_wave_schedule_policy(
    durations: &[f64],
    executors: usize,
    scheduler: &CentralScheduler,
    policy: SchedulerPolicy,
) -> TaskSchedule {
    assert!(executors > 0, "need at least one executor");
    for &d in durations {
        assert!(
            d.is_finite() && d >= 0.0,
            "task durations must be finite and >= 0"
        );
    }
    let order = policy.dispatch_order(durations, executors);
    let mut pool = ServerPool::new(executors);
    let mut records = Vec::with_capacity(durations.len());
    let mut dispatch_clock = 0.0;

    let mut queued: Vec<(f64, f64)> = Vec::new();
    for (position, &task) in order.iter().enumerate() {
        dispatch_clock += scheduler.dispatch_time(position as u32);
        let grant = pool.submit(SimTime::from_secs(dispatch_clock), durations[task]);
        // Executor id is not tracked by the pool; derive a stable label
        // from wave position for traceability.
        records.push(TaskRecord {
            task_id: task as u32,
            executor: (position % executors) as u32,
            start: grant.start.as_secs(),
            end: grant.finish.as_secs(),
        });
        if ipso_obs::enabled() {
            let queue_delay = grant.start.as_secs() - dispatch_clock;
            ipso_obs::histogram_record("cluster.task_queue_delay_us", (queue_delay * 1e6) as u64);
            queued.push((dispatch_clock, grant.start.as_secs()));
        }
    }
    records.sort_by_key(|r| r.task_id);

    if ipso_obs::enabled() {
        ipso_obs::counter_add("cluster.wave_schedules", 1);
        ipso_obs::counter_add("cluster.tasks_scheduled", records.len() as u64);
        ipso_obs::gauge_set("cluster.queue_depth_peak", peak_queue_depth(&queued));
    }

    TaskSchedule {
        makespan: pool.makespan().as_secs(),
        dispatch_total: dispatch_clock,
        records,
    }
}

/// Makespan of `tasks` identical-duration tasks over `executors` slots —
/// the allocation-free fast path for idealized reference schedules.
///
/// Equivalent to `run_wave_schedule(&vec![duration; tasks], …).makespan`
/// but without materializing the duration vector, the per-task records,
/// or the scheduler-level instrumentation: reference schedules are
/// hypothetical runs, so they skip the `cluster.*` counters and
/// queue-delay histograms a real schedule emits.
///
/// # Panics
///
/// Panics if `executors` is zero or `duration` is negative/non-finite.
pub fn uniform_wave_makespan(
    duration: f64,
    tasks: usize,
    executors: usize,
    scheduler: &CentralScheduler,
) -> f64 {
    assert!(executors > 0, "need at least one executor");
    assert!(
        duration.is_finite() && duration >= 0.0,
        "task durations must be finite and >= 0"
    );
    let mut pool = ServerPool::new(executors);
    let mut dispatch_clock = 0.0;
    for i in 0..tasks {
        dispatch_clock += scheduler.dispatch_time(i as u32);
        pool.submit(SimTime::from_secs(dispatch_clock), duration);
    }
    pool.makespan().as_secs()
}

/// Peak number of tasks simultaneously dispatched but not yet started —
/// the scheduler-to-executor queue depth — from per-task
/// `(dispatched, started)` intervals.
fn peak_queue_depth(queued: &[(f64, f64)]) -> f64 {
    let mut boundaries: Vec<(f64, i32)> = Vec::with_capacity(queued.len() * 2);
    for &(dispatched, started) in queued {
        if started > dispatched {
            boundaries.push((dispatched, 1));
            boundaries.push((started, -1));
        }
    }
    // Sort by time with departures (-1) before arrivals at equal times so
    // a back-to-back handoff does not inflate the peak.
    boundaries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, delta) in boundaries {
        depth += delta;
        peak = peak.max(depth);
    }
    f64::from(peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wave_is_max_plus_dispatch() {
        let sched = CentralScheduler::idealized();
        let s = run_wave_schedule(&[5.0, 7.0, 6.0], 3, &sched);
        // Dispatch is ~instant, so makespan ≈ slowest task.
        assert!((s.makespan - 7.0).abs() < 1e-3);
        assert_eq!(s.records.len(), 3);
        assert!((s.max_task_duration() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn waves_stack_on_few_executors() {
        let sched = CentralScheduler::idealized();
        let s = run_wave_schedule(&[1.0; 6], 2, &sched);
        // 6 unit tasks on 2 executors: 3 waves.
        assert!((s.makespan - 3.0).abs() < 1e-3);
    }

    #[test]
    fn dispatch_serialization_delays_start() {
        let sched = CentralScheduler {
            base_dispatch: 1.0,
            contention: 0.0,
            job_setup: 0.0,
        };
        let s = run_wave_schedule(&[10.0, 10.0], 2, &sched);
        // Task 0 dispatched at t = 1, task 1 at t = 2.
        assert!((s.records[0].start - 1.0).abs() < 1e-12);
        assert!((s.records[1].start - 2.0).abs() < 1e-12);
        assert!((s.makespan - 12.0).abs() < 1e-12);
        assert!((s.dispatch_total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn contention_makes_dispatch_superlinear() {
        let sched = CentralScheduler {
            base_dispatch: 0.001,
            contention: 0.001,
            job_setup: 0.0,
        };
        let s100 = run_wave_schedule(&[0.0; 100], 100, &sched);
        let s200 = run_wave_schedule(&[0.0; 200], 200, &sched);
        assert!(s200.dispatch_total > 2.5 * s100.dispatch_total);
    }

    #[test]
    fn dispatch_induced_delay_is_nonnegative() {
        let sched = CentralScheduler {
            base_dispatch: 0.5,
            contention: 0.0,
            job_setup: 0.0,
        };
        let s = run_wave_schedule(&[4.0, 4.0], 2, &sched);
        let zero = 4.0; // with free dispatch both run immediately
        assert!(s.dispatch_induced_delay(zero) > 0.0);
        assert_eq!(s.dispatch_induced_delay(1e9), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        run_wave_schedule(&[1.0], 0, &CentralScheduler::idealized());
    }

    #[test]
    fn empty_task_set_is_trivial() {
        let s = run_wave_schedule(&[], 4, &CentralScheduler::idealized());
        assert_eq!(s.makespan, 0.0);
        assert!(s.records.is_empty());
    }

    #[test]
    fn uniform_makespan_matches_full_schedule() {
        for (d, tasks, execs) in [(1.0, 6, 2), (0.5, 16, 5), (3.0, 1, 4), (0.0, 8, 3)] {
            for scheduler in [
                CentralScheduler::idealized(),
                CentralScheduler {
                    base_dispatch: 0.2,
                    contention: 0.01,
                    job_setup: 0.0,
                },
            ] {
                let full = run_wave_schedule(&vec![d; tasks], execs, &scheduler);
                let fast = uniform_wave_makespan(d, tasks, execs, &scheduler);
                assert_eq!(
                    full.makespan, fast,
                    "d = {d}, tasks = {tasks}, execs = {execs}"
                );
            }
        }
    }

    #[test]
    fn uniform_makespan_of_empty_set_is_zero() {
        assert_eq!(
            uniform_wave_makespan(1.0, 0, 2, &CentralScheduler::idealized()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn uniform_makespan_rejects_zero_executors() {
        uniform_wave_makespan(1.0, 4, 0, &CentralScheduler::idealized());
    }

    #[test]
    fn engine_options_default_to_sequential() {
        assert_eq!(EngineOptions::default().threads, 1);
        assert_eq!(EngineOptions::with_threads(8).threads, 8);
        let json = serde_json::to_string(&EngineOptions::default()).unwrap();
        let back: EngineOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, EngineOptions::default());
    }
}
