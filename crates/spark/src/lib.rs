#![warn(missing_docs)]

//! A miniature Spark-like stage/DAG engine on the simulated cluster.
//!
//! The paper's multi-stage case studies (Bayes, Random Forest, SVM,
//! NWeight) run on Spark, configured by a problem size `N` (nominal tasks
//! per stage) and a parallel degree `m` (executors). This crate reproduces
//! the execution structure the paper measures:
//!
//! * jobs are DAGs of stages separated by wide (shuffle) dependencies,
//!   each stage running `tasks` over `m` executors in waves
//!   ([`stage::StageSpec`], [`job::SparkJobSpec`]);
//! * the driver dispatches every task centrally, with first-wave
//!   scheduling and deserialization costs that dominate at small `N/m` —
//!   the paper's explanation for why larger per-executor load improves
//!   fixed-time speedups ([`engine`]);
//! * broadcast variables are pushed by the driver to each executor
//!   serially, the Collaborative-Filtering pathology of \[12\];
//! * executor memory pressure from cached partitions slows tasks once the
//!   per-executor working set exceeds RAM — why `N/m = 8` underperforms
//!   `N/m = 4` in the paper's Fig. 9;
//! * every run emits a Spark-style JSON event log ([`eventlog`]) from
//!   which stage latencies are extracted, mirroring the paper's
//!   measurement methodology.

pub mod dag;
pub mod engine;
pub mod eventlog;
pub mod job;
pub mod lower;
pub mod measure;
pub mod stage;

pub use dag::{assign_levels, run_dag};
pub use engine::{run_job, run_sequential_reference, try_run_job, SparkRun};
pub use eventlog::{parse_event_log, write_event_log, SparkEvent};
pub use job::SparkJobSpec;
pub use lower::{lower_chain, lower_levels};
pub use measure::{speedup, sweep_fixed_size, sweep_fixed_time, SparkSweepPoint};
pub use stage::StageSpec;
