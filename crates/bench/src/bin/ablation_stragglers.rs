//! Ablation: straggler severity under barrier synchronization.
//!
//! The paper's statistic model (Eq. 8) carries `E[max_i Tp,i(n)]` in the
//! denominator precisely because stragglers plus a barrier make the
//! slowest task decisive. This ablation sweeps task-time distributions of
//! increasing tail weight through the stochastic model and reports the
//! speedup loss versus the deterministic Eq. 10 — including the
//! heavy-tailed Pareto regime of [Zaharia et al., OSDI '08].

use ipso::stochastic::{StochasticIpso, TaskTimeDistribution};
use ipso::ScalingFactor;
use ipso_bench::{SweepRunner, Table};

fn main() {
    let runner = SweepRunner::from_env();
    let dists: Vec<(&str, TaskTimeDistribution)> = vec![
        (
            "deterministic",
            TaskTimeDistribution::Deterministic { value: 10.0 },
        ),
        (
            "uniform_5pct",
            TaskTimeDistribution::Uniform { lo: 9.5, hi: 10.5 },
        ),
        (
            "uniform_30pct",
            TaskTimeDistribution::Uniform { lo: 7.0, hi: 13.0 },
        ),
        (
            "exponential",
            TaskTimeDistribution::Exponential { mean: 10.0 },
        ),
        (
            "shifted_exp",
            TaskTimeDistribution::ShiftedExponential {
                shift: 8.0,
                mean: 2.0,
            },
        ),
        (
            "pareto_2_5",
            TaskTimeDistribution::Pareto {
                scale: 6.0,
                shape: 2.5,
            },
        ),
    ];

    let mut columns = vec!["n".to_string()];
    columns.extend(dists.iter().map(|(name, _)| name.to_string()));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("ablation_stragglers", &col_refs);

    let models: Vec<StochasticIpso> = dists
        .iter()
        .map(|(_, dist)| {
            StochasticIpso::new(
                *dist,
                1.0, // 10:1 parallel-to-serial workload at n = 1
                ScalingFactor::linear(),
                ScalingFactor::one(),
                ScalingFactor::zero(),
            )
            .expect("valid model")
        })
        .collect();

    // One grid point per n-row; every distribution is evaluated at it.
    let rows = runner.map(vec![1u32, 4, 16, 64, 128, 256], |_ctx, n| {
        let mut row = vec![f64::from(n)];
        for m in &models {
            row.push(m.speedup(n).expect("evaluable"));
        }
        row
    });
    for row in rows {
        table.push(row);
    }
    table.emit();

    // Loss relative to the deterministic model at n = 256.
    let last = table.rows.last().expect("rows present");
    println!("speedup retained versus the deterministic model at n = 256:");
    for (i, (name, _)) in dists.iter().enumerate() {
        let retained = last[i + 1] / last[1];
        println!("  {name:15} {:5.1}%", retained * 100.0);
    }
    println!(
        "\nheavier tails cost more under barrier synchronization: E[max] grows like the\n\
         tail's order statistics (log n for exponential, n^(1/a) for Pareto) while the\n\
         mean workload stays fixed — the effective serial workload of [9]."
    );
    // Sanity: ordering by tail weight at n = 256 (columns: n,
    // deterministic, uniform_5pct, uniform_30pct, exponential,
    // shifted_exp, pareto_2_5).
    assert!(last[1] > last[2], "noise must cost something");
    assert!(last[2] > last[3], "wider uniform jitter costs more");
    assert!(
        last[3] > last[4],
        "exponential tails cost more than bounded jitter"
    );
}
