//! Collaborative Filtering (paper Section V-A "Fixed-size Workload",
//! Table I and Fig. 8).
//!
//! The paper analyzes the iterative Spark collaborative-filtering
//! application of Chowdhury et al. (Orchestra, SIGCOMM '11): each
//! iteration alternately updates two feature vectors, requiring two
//! driver broadcasts and two barrier-synchronized map rounds, with *no*
//! reduce phase (`Ws(n) = 0`). The broadcast is serialized at the master,
//! so the measured overhead `Wo(n)` grows linearly in `n` and the induced
//! factor `q(n) = Wo(n)·n/Wp(1)` grows *quadratically* — the pathological
//! IVs type whose speedup peaks near `n = 60` at a dismal ≈ 21 and then
//! decays.
//!
//! This module provides three layers:
//!
//! * [`TABLE_I`] — the paper's measured data, used directly by the
//!   Fig. 8 reproduction;
//! * [`als_factorize`] — a real miniature ALS kernel (rank-1 alternating
//!   least squares over generated ratings), demonstrating the actual
//!   computation whose scaling the model describes;
//! * [`job`] — a calibrated Spark job whose simulated execution exhibits
//!   the same `E[max Tp,i(n)] ≈ a/n`, `Wo(n) ≈ 0.55·n` behaviour.

use ipso::predict::FixedSizeSample;
use ipso_cluster::StragglerModel;
use ipso_spark::{SparkJobSpec, StageSpec};

use crate::datagen::Rating;

/// The paper's Table I: `(n, E[max Tp,i(n)], Wo(n))` in seconds.
pub const TABLE_I: [(u32, f64, f64); 4] = [
    (10, 209.0, 5.5),
    (30, 79.3, 17.7),
    (60, 43.7, 36.0),
    (90, 31.1, 54.3),
];

/// Table I as [`FixedSizeSample`]s for the prediction pipeline.
pub fn table1_samples() -> Vec<FixedSizeSample> {
    TABLE_I
        .iter()
        .map(|&(n, max_task_time, overhead)| FixedSizeSample {
            n,
            max_task_time,
            overhead,
        })
        .collect()
}

/// Rank-1 ALS: alternately solves for user and item factors minimizing
/// squared rating error. Returns `(user_factors, item_factors)`.
///
/// # Panics
///
/// Panics if `ratings` is empty or an index exceeds the given dimensions.
pub fn als_factorize(
    ratings: &[Rating],
    users: u32,
    items: u32,
    iterations: u32,
) -> (Vec<f64>, Vec<f64>) {
    assert!(!ratings.is_empty(), "ALS needs at least one rating");
    let mut x = vec![1.0f64; users as usize];
    let mut y = vec![1.0f64; items as usize];
    for r in ratings {
        assert!(
            r.user < users && r.item < items,
            "rating index out of bounds"
        );
    }
    // Small ridge term keeps unobserved rows finite.
    let lambda = 1e-6;
    for _ in 0..iterations {
        // Solve x given y: x_u = Σ r·y_i / (Σ y_i² + λ).
        let mut num = vec![0.0f64; users as usize];
        let mut den = vec![lambda; users as usize];
        for r in ratings {
            num[r.user as usize] += r.value * y[r.item as usize];
            den[r.user as usize] += y[r.item as usize] * y[r.item as usize];
        }
        for u in 0..users as usize {
            if den[u] > lambda {
                x[u] = num[u] / den[u];
            }
        }
        // Solve y given x.
        let mut num = vec![0.0f64; items as usize];
        let mut den = vec![lambda; items as usize];
        for r in ratings {
            num[r.item as usize] += r.value * x[r.user as usize];
            den[r.item as usize] += x[r.user as usize] * x[r.user as usize];
        }
        for i in 0..items as usize {
            if den[i] > lambda {
                y[i] = num[i] / den[i];
            }
        }
    }
    (x, y)
}

/// Root-mean-square rating-prediction error of a factorization.
pub fn rmse(ratings: &[Rating], x: &[f64], y: &[f64]) -> f64 {
    let se: f64 = ratings
        .iter()
        .map(|r| {
            let p = x[r.user as usize] * y[r.item as usize];
            (p - r.value).powi(2)
        })
        .sum();
    (se / ratings.len() as f64).sqrt()
}

/// Number of tasks of the fixed-size job (divisible by every `m` the
/// paper uses).
pub const CF_TASKS: u32 = 360;
/// ALS iterations per job (each with two broadcast + map rounds).
pub const CF_ITERATIONS: u32 = 3;
/// Per-task compute seconds, calibrated so `m = 10` executors take
/// ≈ 209 s of split-phase time as in Table I (360/10 waves × 5.8 s).
const TASK_COMPUTE: f64 = 5.8;
/// Broadcast payload per round, calibrated so `Wo(n) ≈ 0.55·n`
/// (6 serialized rounds × bytes / 250 MB/s master NIC = 0.55 s per node).
const BROADCAST_BYTES: u64 = 22_900_000;

/// The calibrated fixed-size Collaborative Filtering job at parallel
/// degree `m` (the problem size is fixed at [`CF_TASKS`]).
pub fn job(_problem_size: u32, parallelism: u32) -> SparkJobSpec {
    let mut spec = SparkJobSpec::emr("collab-filter", CF_TASKS, parallelism);
    spec.straggler = StragglerModel::Uniform { spread: 0.03 };
    spec.first_wave_cost = 0.1;
    for iter in 0..CF_ITERATIONS {
        // Two alternating feature-vector updates per iteration, each
        // preceded by a driver broadcast; no reduce phase (Ws = 0).
        for half in ["users", "items"] {
            spec = spec.stage(
                StageSpec::new(&format!("iter{iter}-{half}"), CF_TASKS)
                    .with_task_compute(TASK_COMPUTE * f64::from(CF_ITERATIONS).recip() / 2.0)
                    .with_broadcast(BROADCAST_BYTES),
            );
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::random_ratings;
    use ipso::predict::FixedSizePredictor;
    use ipso_sim::SimRng;
    use ipso_spark::{run_job, sweep_fixed_size};

    #[test]
    fn als_reduces_rmse() {
        let mut rng = SimRng::seed_from(77);
        let ratings = random_ratings(60, 80, 3000, &mut rng);
        let (x0, y0) = (vec![1.0; 60], vec![1.0; 80]);
        let before = rmse(&ratings, &x0, &y0);
        let (x, y) = als_factorize(&ratings, 60, 80, 8);
        let after = rmse(&ratings, &x, &y);
        assert!(after < 0.6 * before, "rmse {before} -> {after}");
        assert!(after < 1.0, "absolute rmse {after}");
    }

    #[test]
    fn als_recovers_exact_rank1_matrix() {
        // Ratings generated exactly from u·v have a perfect rank-1 fit.
        let mut ratings = Vec::new();
        let u_true = [1.0, 2.0, 3.0];
        let v_true = [0.5, 1.5];
        for (ui, &uv) in u_true.iter().enumerate() {
            for (vi, &vv) in v_true.iter().enumerate() {
                ratings.push(Rating {
                    user: ui as u32,
                    item: vi as u32,
                    value: uv * vv,
                });
            }
        }
        let (x, y) = als_factorize(&ratings, 3, 2, 20);
        assert!(rmse(&ratings, &x, &y) < 1e-6);
    }

    #[test]
    fn table1_matches_paper() {
        let s = table1_samples();
        assert_eq!(s.len(), 4);
        assert_eq!(s[2].n, 60);
        assert!((s[2].max_task_time - 43.7).abs() < 1e-12);
        assert!((s[3].overhead - 54.3).abs() < 1e-12);
    }

    #[test]
    fn table1_pipeline_finds_the_paper_peak() {
        let p = FixedSizePredictor::fit(&table1_samples()).unwrap();
        let (n_peak, s_peak) = p.peak(200).unwrap();
        assert!((40..=80).contains(&n_peak), "peak at n = {n_peak}");
        assert!((15.0..=30.0).contains(&s_peak), "peak S = {s_peak}");
    }

    #[test]
    fn simulated_job_reproduces_table1_shape() {
        // E[max Tp,i(n)] ≈ a/n: split-phase time at m = 10 near 209 s.
        let run10 = run_job(&job(CF_TASKS, 10));
        let compute10 = run10.total_time - run10.overhead_time;
        assert!(
            (160.0..260.0).contains(&compute10),
            "split time at m = 10: {compute10}"
        );
        // Wo ≈ 0.55·n: overhead at m = 60 near 36 s.
        let run60 = run_job(&job(CF_TASKS, 60));
        assert!(
            (25.0..50.0).contains(&run60.overhead_time),
            "Wo(60) = {}",
            run60.overhead_time
        );
    }

    #[test]
    fn simulated_sweep_peaks_near_60() {
        let pts = sweep_fixed_size(job, CF_TASKS, &[10, 20, 30, 45, 60, 90, 120, 180]);
        let peak = pts
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        assert!(
            (30..=90).contains(&peak.m),
            "simulated CF peak at m = {} (S = {})",
            peak.m,
            peak.speedup
        );
        let last = pts.last().unwrap();
        assert!(last.speedup < peak.speedup, "no decay after the peak");
    }
}
