//! The statistic (stochastic) IPSO model (paper Eqs. 7–8 and 18).
//!
//! The deterministic model assumes every parallel task takes exactly the
//! same time. In practice task times are random — stragglers, queueing —
//! and barrier synchronization makes the split phase as slow as the
//! *slowest* task, so the speedup denominator carries `E[max_i Tp,i(n)]`
//! rather than the mean task time (paper Eq. 8):
//!
//! ```text
//!                    η·EX(n) + (1−η)·IN(n)
//! S(n) = ─────────────────────────────────────────────────────────────
//!        E[max Tp,i(n)]/(E[Tp,1(1)]+E[Ts(1)]) + (1−η)·IN(n) + η·EX(n)·q(n)/n
//! ```
//!
//! [`TaskTimeDistribution`] provides the task-time models (including
//! heavy-tailed stragglers) with analytic `E[max]` where available and
//! seeded Monte-Carlo otherwise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::check_scale_out;
use crate::factors::ScalingFactor;
use crate::ModelError;

/// Distribution of a single parallel task's processing time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskTimeDistribution {
    /// Every task takes exactly `value` seconds — reduces the statistic
    /// model to the deterministic one.
    Deterministic {
        /// The fixed task time (s).
        value: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (s).
        lo: f64,
        /// Upper bound (s).
        hi: f64,
    },
    /// Exponential with the given mean — a classic model for task times
    /// with occasional stragglers.
    Exponential {
        /// Mean task time (s).
        mean: f64,
    },
    /// `shift + Exponential(mean)`: a minimum service time plus an
    /// exponential tail.
    ShiftedExponential {
        /// Minimum task time (s).
        shift: f64,
        /// Mean of the exponential tail (s).
        mean: f64,
    },
    /// Pareto with scale `x_m` and shape `a > 1` — a heavy-tailed
    /// straggler model ([Zaharia et al., OSDI '08]).
    Pareto {
        /// Scale (minimum value, s).
        scale: f64,
        /// Tail index; must exceed 1 for a finite mean.
        shape: f64,
    },
}

impl TaskTimeDistribution {
    /// Mean of the distribution. A Pareto tail with `shape <= 1` has no
    /// finite mean: this returns `+inf` rather than the negative garbage
    /// the naive formula produces (such distributions are rejected by
    /// [`TaskTimeDistribution::validate`] anyway).
    pub fn mean(&self) -> f64 {
        match *self {
            TaskTimeDistribution::Deterministic { value } => value,
            TaskTimeDistribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            TaskTimeDistribution::Exponential { mean } => mean,
            TaskTimeDistribution::ShiftedExponential { shift, mean } => shift + mean,
            TaskTimeDistribution::Pareto { scale, shape } => {
                if shape > 1.0 {
                    scale * shape / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Draws one sample using the provided RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            TaskTimeDistribution::Deterministic { value } => value,
            TaskTimeDistribution::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            TaskTimeDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            TaskTimeDistribution::ShiftedExponential { shift, mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                shift - mean * u.ln()
            }
            TaskTimeDistribution::Pareto { scale, shape } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale / u.powf(1.0 / shape)
            }
        }
    }

    /// Expected maximum of `n` i.i.d. draws, `E[max_{i≤n} X_i]` — fully
    /// analytic: deterministic (value), uniform (`lo + (hi−lo)·n/(n+1)`),
    /// (shifted) exponential (`mean·H_n`) and Pareto
    /// (`scale·n·B(n, 1−1/shape)` via the Lanczos log-gamma in
    /// [`ipso_sim::special`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n = 0` and
    /// [`ModelError::InvalidFactor`] for out-of-range parameters (e.g. a
    /// Pareto tail with `shape <= 1`, whose expectation diverges).
    pub fn expected_max(&self, n: u32) -> Result<f64, ModelError> {
        self.validate()?;
        if n == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let nf = n as f64;
        Ok(match *self {
            TaskTimeDistribution::Deterministic { value } => value,
            TaskTimeDistribution::Uniform { lo, hi } => lo + (hi - lo) * nf / (nf + 1.0),
            TaskTimeDistribution::Exponential { mean } => mean * harmonic(n),
            TaskTimeDistribution::ShiftedExponential { shift, mean } => shift + mean * harmonic(n),
            TaskTimeDistribution::Pareto { scale, shape } => {
                ipso_sim::pareto_expected_max(scale, shape, n)
            }
        })
    }

    /// Maximum of `n` i.i.d. draws using the provided RNG.
    pub fn sample_max<R: Rng + ?Sized>(&self, n: u32, rng: &mut R) -> f64 {
        (0..n)
            .map(|_| self.sample(rng))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Monte-Carlo estimate of `E[max_{i≤n} X_i]` over `replications`
    /// independent maxima.
    ///
    /// Replication `r` draws from its own RNG seeded with
    /// [`ipso_sim::stream_seed`]`(seed, r)`, so the estimate depends only
    /// on `(n, replications, seed)` — never on evaluation order — and
    /// replications can safely be distributed across threads.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n = 0` or zero
    /// replications and propagates validation errors.
    pub fn monte_carlo_expected_max(
        &self,
        n: u32,
        replications: u32,
        seed: u64,
    ) -> Result<f64, ModelError> {
        self.validate()?;
        if n == 0 || replications == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let total: f64 = (0..replications)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(ipso_sim::stream_seed(seed, u64::from(r)));
                self.sample_max(n, &mut rng)
            })
            .sum();
        Ok(total / f64::from(replications))
    }

    /// Validates distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFactor`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        let ok = match *self {
            TaskTimeDistribution::Deterministic { value } => value.is_finite() && value > 0.0,
            TaskTimeDistribution::Uniform { lo, hi } => {
                lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi && hi > 0.0
            }
            TaskTimeDistribution::Exponential { mean } => mean.is_finite() && mean > 0.0,
            TaskTimeDistribution::ShiftedExponential { shift, mean } => {
                shift.is_finite() && mean.is_finite() && shift >= 0.0 && mean > 0.0
            }
            TaskTimeDistribution::Pareto { scale, shape } => {
                scale.is_finite() && shape.is_finite() && scale > 0.0 && shape > 1.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ModelError::InvalidFactor {
                factor: "task-time distribution",
                reason: "parameters out of range",
            })
        }
    }
}

use ipso_sim::harmonic;

/// The statistic IPSO model.
///
/// Task times in the split phase are `Tp,i(n) ~ base_task` scaled so that
/// the *mean per-task* workload matches `Wp(1)·EX(n)/n`; the merge time is
/// deterministic at `Ws(1)·IN(n)`.
///
/// # Example
///
/// ```
/// use ipso::stochastic::{StochasticIpso, TaskTimeDistribution};
/// use ipso::ScalingFactor;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// let model = StochasticIpso::new(
///     TaskTimeDistribution::Exponential { mean: 10.0 }, // Tp,1(1)
///     2.0,                                              // E[Ts(1)]
///     ScalingFactor::linear(),                          // EX(n) = n
///     ScalingFactor::one(),                             // IN(n) = 1
///     ScalingFactor::zero(),                            // q(n) = 0
/// )?;
/// // Stragglers make the stochastic speedup lower than Gustafson's.
/// let s = model.speedup(16)?;
/// let gustafson = ipso::classic::gustafson(10.0 / 12.0, 16.0)?;
/// assert!(s < gustafson);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticIpso {
    base_task: TaskTimeDistribution,
    ws1: f64,
    external: ScalingFactor,
    internal: ScalingFactor,
    induced: ScalingFactor,
}

impl StochasticIpso {
    /// Creates a statistic model.
    ///
    /// * `base_task` — distribution of `Tp,1(1)`, the single-task time at
    ///   `n = 1`;
    /// * `ws1` — mean serial merge time at `n = 1` (`E[Ts(1)]`, may be 0);
    /// * `external`, `internal`, `induced` — the scaling factors
    ///   (normalized internally like the deterministic builder).
    ///
    /// # Errors
    ///
    /// Propagates distribution and factor validation errors.
    pub fn new(
        base_task: TaskTimeDistribution,
        ws1: f64,
        external: ScalingFactor,
        internal: ScalingFactor,
        induced: ScalingFactor,
    ) -> Result<Self, ModelError> {
        base_task.validate()?;
        if !ws1.is_finite() || ws1 < 0.0 {
            return Err(ModelError::NonFinite("serial merge time Ws(1)"));
        }
        let external = external.normalized()?;
        let internal = if ws1 > 0.0 {
            internal.normalized()?
        } else {
            internal
        };
        let q1 = induced.eval(1.0);
        if q1.abs() > 1e-6 {
            return Err(ModelError::BoundaryCondition {
                factor: "q",
                expected: 0.0,
                actual: q1,
            });
        }
        Ok(StochasticIpso {
            base_task,
            ws1,
            external,
            internal,
            induced,
        })
    }

    /// Parallelizable fraction `η` at `n = 1` (paper Eq. 9).
    pub fn eta(&self) -> f64 {
        let wp1 = self.base_task.mean();
        wp1 / (wp1 + self.ws1)
    }

    /// Mean of the slowest of the `n` parallel tasks,
    /// `E[max_i Tp,i(n)]`, where each task's mean equals
    /// `Wp(1)·EX(n)/n`.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskTimeDistribution::expected_max`] errors.
    pub fn expected_max_task_time(&self, n: u32) -> Result<f64, ModelError> {
        check_scale_out(n.max(1) as f64)?;
        // Per-task mean workload scales with EX(n)/n; the distribution's
        // *shape* is preserved, only its scale changes.
        let scale = self.external.eval(n as f64) / n as f64;
        Ok(self.base_task.expected_max(n)? * scale)
    }

    /// The statistic speedup `S(n)` (paper Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n = 0` and propagates
    /// evaluation errors.
    pub fn speedup(&self, n: u32) -> Result<f64, ModelError> {
        if n == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let nf = n as f64;
        let wp1 = self.base_task.mean();
        let w1 = wp1 + self.ws1;
        let eta = self.eta();
        let ex = self.external.eval(nf);
        let inn = self.internal.eval(nf);
        let q = self.induced.eval(nf);

        let numerator = eta * ex + (1.0 - eta) * inn;
        let denominator =
            self.expected_max_task_time(n)? / w1 + (1.0 - eta) * inn + eta * ex * q / nf;
        if denominator <= 0.0 || !denominator.is_finite() {
            return Err(ModelError::NonFinite("stochastic speedup denominator"));
        }
        Ok(numerator / denominator)
    }

    /// Speedup over a range of scale-out degrees.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn speedup_curve(
        &self,
        ns: impl IntoIterator<Item = u32>,
    ) -> Result<Vec<(u32, f64)>, ModelError> {
        ns.into_iter().map(|n| Ok((n, self.speedup(n)?))).collect()
    }
}

/// The fixed-size stochastic speedup of the Collaborative Filtering case
/// (paper Eq. 18): `S(n) = E[Tp,1(1)] / (E[max Tp,i(n)] + Wo(n))`.
///
/// # Errors
///
/// Returns [`ModelError::NonFinite`] when the denominator is non-positive
/// or any argument is non-finite.
pub fn fixed_size_speedup(tp1: f64, e_max: f64, wo: f64) -> Result<f64, ModelError> {
    if !tp1.is_finite() || !e_max.is_finite() || !wo.is_finite() {
        return Err(ModelError::NonFinite("fixed-size speedup input"));
    }
    let den = e_max + wo;
    if den <= 0.0 {
        return Err(ModelError::NonFinite("fixed-size speedup denominator"));
    }
    Ok(tp1 / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_correct() {
        assert_eq!(
            TaskTimeDistribution::Deterministic { value: 3.0 }.mean(),
            3.0
        );
        assert_eq!(
            TaskTimeDistribution::Uniform { lo: 2.0, hi: 4.0 }.mean(),
            3.0
        );
        assert_eq!(TaskTimeDistribution::Exponential { mean: 5.0 }.mean(), 5.0);
        assert_eq!(
            TaskTimeDistribution::ShiftedExponential {
                shift: 1.0,
                mean: 2.0
            }
            .mean(),
            3.0
        );
        let p = TaskTimeDistribution::Pareto {
            scale: 1.0,
            shape: 2.0,
        };
        assert_eq!(p.mean(), 2.0);
    }

    #[test]
    fn expected_max_analytic_forms() {
        let d = TaskTimeDistribution::Deterministic { value: 2.0 };
        assert_eq!(d.expected_max(100).unwrap(), 2.0);
        let u = TaskTimeDistribution::Uniform { lo: 0.0, hi: 1.0 };
        assert!((u.expected_max(3).unwrap() - 0.75).abs() < 1e-12);
        let e = TaskTimeDistribution::Exponential { mean: 1.0 };
        assert!((e.expected_max(2).unwrap() - 1.5).abs() < 1e-12);
        assert!((e.expected_max(4).unwrap() - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_is_the_shared_sim_implementation() {
        // The harmonic helper lives in ipso-sim (special.rs); the model
        // must use it rather than a private re-derivation.
        let e = TaskTimeDistribution::Exponential { mean: 2.0 };
        for n in [1u32, 7, 511, 513, 4096] {
            assert_eq!(e.expected_max(n).unwrap(), 2.0 * ipso_sim::harmonic(n));
        }
    }

    #[test]
    fn expected_max_is_monotone_in_n() {
        for dist in [
            TaskTimeDistribution::Uniform { lo: 1.0, hi: 2.0 },
            TaskTimeDistribution::Exponential { mean: 1.0 },
            TaskTimeDistribution::Pareto {
                scale: 1.0,
                shape: 2.5,
            },
        ] {
            let mut prev = 0.0;
            for n in [1, 2, 4, 8, 16] {
                let m = dist.expected_max(n).unwrap();
                assert!(m >= prev, "{dist:?} at n = {n}");
                prev = m;
            }
        }
    }

    #[test]
    fn pareto_expected_max_is_exact() {
        // E[max of 1] = the mean, now to machine precision (analytic).
        let p = TaskTimeDistribution::Pareto {
            scale: 1.0,
            shape: 3.0,
        };
        let e1 = p.expected_max(1).unwrap();
        assert!((e1 - p.mean()).abs() < 1e-10, "E[max of 1] = {e1}");
        // E[max of 2] for shape 2: 2·B(2, 0.5) = 2·(Γ(2)Γ(0.5)/Γ(2.5)) = 8/3.
        let p2 = TaskTimeDistribution::Pareto {
            scale: 1.0,
            shape: 2.0,
        };
        assert!((p2.expected_max(2).unwrap() - 8.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn deterministic_model_matches_deterministic_ipso() {
        let det = StochasticIpso::new(
            TaskTimeDistribution::Deterministic { value: 9.0 },
            1.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .unwrap();
        let eta = 0.9;
        for n in [1u32, 4, 16, 64] {
            let expected = crate::classic::gustafson(eta, n as f64).unwrap();
            let got = det.speedup(n).unwrap();
            assert!(
                (got - expected).abs() < 1e-9,
                "n = {n}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn stragglers_reduce_speedup() {
        let exp = StochasticIpso::new(
            TaskTimeDistribution::Exponential { mean: 9.0 },
            1.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .unwrap();
        let det = StochasticIpso::new(
            TaskTimeDistribution::Deterministic { value: 9.0 },
            1.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .unwrap();
        for n in [2u32, 8, 32, 128] {
            assert!(exp.speedup(n).unwrap() < det.speedup(n).unwrap());
        }
    }

    #[test]
    fn straggler_speedup_still_unbounded_for_fixed_time() {
        // E[max] for exponential grows like ln n, so the fixed-time
        // speedup remains unbounded but sublinear.
        let exp = StochasticIpso::new(
            TaskTimeDistribution::Exponential { mean: 10.0 },
            0.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .unwrap();
        let s64 = exp.speedup(64).unwrap();
        let s256 = exp.speedup(256).unwrap();
        assert!(s256 > s64);
        assert!(s256 < 256.0);
    }

    #[test]
    fn speedup_at_one_is_unity_without_overhead() {
        let m = StochasticIpso::new(
            TaskTimeDistribution::Uniform { lo: 5.0, hi: 15.0 },
            3.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .unwrap();
        // At n = 1, E[max of 1] = mean, so S(1) = 1 exactly.
        assert!((m.speedup(1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq18_fixed_size_speedup() {
        // The paper's CF numbers: E[Tp,1(1)] = 1602.5, and at n = 10
        // E[max] = 209.0, Wo = 5.5 → S ≈ 7.47.
        let s = fixed_size_speedup(1602.5, 209.0, 5.5).unwrap();
        assert!((s - 1602.5 / 214.5).abs() < 1e-12);
        assert!(fixed_size_speedup(1.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn validation_rejects_bad_distributions() {
        assert!(TaskTimeDistribution::Deterministic { value: 0.0 }
            .validate()
            .is_err());
        assert!(TaskTimeDistribution::Uniform { lo: 2.0, hi: 1.0 }
            .validate()
            .is_err());
        assert!(TaskTimeDistribution::Pareto {
            scale: 1.0,
            shape: 1.0
        }
        .validate()
        .is_err());
        assert!(TaskTimeDistribution::Exponential { mean: 1.0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn unvalidated_heavy_pareto_is_safe() {
        // A Pareto tail with shape <= 1 has no finite mean. The naive
        // closed form used to return a *negative* mean here, which
        // silently corrupted every downstream speedup.
        let p = TaskTimeDistribution::Pareto {
            scale: 6.0,
            shape: 0.8,
        };
        assert_eq!(p.mean(), f64::INFINITY);
        assert!(p.expected_max(4).is_err());
        assert!(p.monte_carlo_expected_max(4, 8, 1).is_err());
        assert!(StochasticIpso::new(
            p,
            1.0,
            ScalingFactor::linear(),
            ScalingFactor::one(),
            ScalingFactor::zero(),
        )
        .is_err());
    }

    #[test]
    fn curve_peak_selection_is_nan_safe() {
        // Regression: peak selection used partial_cmp().unwrap(), which
        // panics the moment a NaN reaches the comparison. total_cmp is a
        // total order, so a poisoned curve degrades instead of aborting.
        let curve = [(1u32, 1.0), (2, f64::NAN), (3, 2.0)];
        let peak = curve
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        // In IEEE total order positive NaN sorts above +inf.
        assert_eq!(peak.0, 2);
    }

    #[test]
    fn monte_carlo_expected_max_agrees_with_analytic() {
        // The seeded Monte-Carlo estimator must land within 3 standard
        // errors of the closed forms — exponential (mean·H_n) and Pareto
        // (scale·n·B(n, 1−1/shape)); shape = 2.5 keeps Var[max] finite.
        let n = 16u32;
        let reps = 4000u32;
        let seed = 7u64;
        for dist in [
            TaskTimeDistribution::Exponential { mean: 10.0 },
            TaskTimeDistribution::Pareto {
                scale: 6.0,
                shape: 2.5,
            },
        ] {
            let analytic = dist.expected_max(n).unwrap();
            let mc = dist.monte_carlo_expected_max(n, reps, seed).unwrap();
            // Rebuild the per-replication maxima to estimate the
            // standard error of the estimator itself.
            let samples: Vec<f64> = (0..reps)
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(ipso_sim::stream_seed(seed, u64::from(r)));
                    dist.sample_max(n, &mut rng)
                })
                .collect();
            let mean = samples.iter().sum::<f64>() / f64::from(reps);
            assert!((mean - mc).abs() < 1e-9, "estimator must match its samples");
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(reps - 1);
            let se = (var / f64::from(reps)).sqrt();
            assert!(
                (mc - analytic).abs() < 3.0 * se,
                "{dist:?}: MC {mc} vs analytic {analytic} (3se = {})",
                3.0 * se
            );
            // And the estimate is a pure function of (n, reps, seed).
            assert_eq!(dist.monte_carlo_expected_max(n, reps, seed).unwrap(), mc);
        }
    }

    #[test]
    fn induced_overhead_creates_peak_in_stochastic_model() {
        let m = StochasticIpso::new(
            TaskTimeDistribution::Deterministic { value: 10.0 },
            0.0,
            ScalingFactor::Constant(1.0), // fixed-size
            ScalingFactor::one(),
            ScalingFactor::induced(0.002, 2.0),
        )
        .unwrap();
        let curve = m.speedup_curve([1, 10, 30, 60, 90, 150]).unwrap();
        let peak = curve
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(peak.0 > 1 && peak.0 < 150, "peak at {:?}", peak);
        assert!(curve.last().unwrap().1 < peak.1);
    }
}
