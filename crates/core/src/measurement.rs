//! Measurement containers.
//!
//! The analysis pipeline consumes two kinds of data:
//!
//! * [`SpeedupCurve`] — plain `(n, speedup)` points, enough for the
//!   diagnostic procedure of Section V;
//! * [`RunMeasurement`] — the per-run decomposition the paper uses to
//!   estimate scaling factors: sequential-execution workloads `Wp(n)`,
//!   `Ws(n)` and scale-out phase times including `E[max Tp,i(n)]` and the
//!   scale-out-only overhead `Wo(n)`.

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A single measured speedup point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Scale-out degree.
    pub n: u32,
    /// Measured speedup `S(n)`.
    pub speedup: f64,
}

/// A measured speedup curve, ordered by `n`.
///
/// # Example
///
/// ```
/// use ipso::measurement::SpeedupCurve;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// let curve = SpeedupCurve::from_pairs([(1, 1.0), (2, 1.8), (4, 3.1)])?;
/// assert_eq!(curve.len(), 3);
/// assert!(curve.is_monotonic_increasing());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeedupCurve {
    points: Vec<SpeedupPoint>,
}

impl SpeedupCurve {
    /// Builds a curve from `(n, speedup)` pairs, sorting by `n`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n = 0`,
    /// [`ModelError::NonFinite`] for non-finite speedups, and
    /// [`ModelError::InvalidFactor`] for duplicate `n` values.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> Result<Self, ModelError> {
        let mut points: Vec<SpeedupPoint> = pairs
            .into_iter()
            .map(|(n, speedup)| SpeedupPoint { n, speedup })
            .collect();
        for p in &points {
            if p.n == 0 {
                return Err(ModelError::InvalidScaleOut(0.0));
            }
            if !p.speedup.is_finite() {
                return Err(ModelError::NonFinite("speedup"));
            }
        }
        points.sort_by_key(|p| p.n);
        if points.windows(2).any(|w| w[0].n == w[1].n) {
            return Err(ModelError::InvalidFactor {
                factor: "scaling",
                reason: "duplicate scale-out degrees in curve",
            });
        }
        Ok(SpeedupCurve { points })
    }

    /// The points, ordered by `n`.
    pub fn points(&self) -> &[SpeedupPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Scale-out degrees as `f64`, in order.
    pub fn ns(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.n as f64).collect()
    }

    /// Speedups, in order of `n`.
    pub fn speedups(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.speedup).collect()
    }

    /// The point with the highest speedup.
    pub fn peak(&self) -> Option<SpeedupPoint> {
        // Curves built by from_pairs are finite by construction, but the
        // FromIterator path is open-ended: total order instead of panic.
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
    }

    /// Whether the speedup never decreases as `n` grows.
    pub fn is_monotonic_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].speedup >= w[0].speedup)
    }

    /// Restricts the curve to points with `n <= n_max` (the paper fits its
    /// scaling factors on `n ≤ 16`).
    pub fn up_to(&self, n_max: u32) -> SpeedupCurve {
        SpeedupCurve {
            points: self
                .points
                .iter()
                .copied()
                .filter(|p| p.n <= n_max)
                .collect(),
        }
    }
}

/// Collects points into a curve, sorting by `n`. Points with a
/// non-finite speedup or `n = 0` are dropped — this is the lenient
/// ingestion path; use [`SpeedupCurve::from_pairs`] to reject them with
/// a [`ModelError`] instead.
impl FromIterator<SpeedupPoint> for SpeedupCurve {
    fn from_iter<T: IntoIterator<Item = SpeedupPoint>>(iter: T) -> Self {
        let mut points: Vec<SpeedupPoint> = iter
            .into_iter()
            .filter(|p| p.n > 0 && p.speedup.is_finite())
            .collect();
        points.sort_by_key(|p| p.n);
        SpeedupCurve { points }
    }
}

/// Per-phase time breakdown of a MapReduce-style job (paper Section V).
///
/// The paper breaks a job into (a) initialization and job scheduling,
/// (b) the map/split phase, (c) map→reduce communication, and (d) the
/// reduce/merge phase (shuffle + merge + reduce stages).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Execution-environment initialization and job-scheduling time (s).
    pub init: f64,
    /// Map (split) phase wall-clock time (s). In a scale-out run this is
    /// the slowest task, `max Tp,i(n)`.
    pub map: f64,
    /// Map→reduce communication time (s).
    pub shuffle: f64,
    /// Merge stage of the reduce phase (s).
    pub merge: f64,
    /// Final reduce stage (s).
    pub reduce: f64,
}

impl PhaseBreakdown {
    /// Total wall-clock time across all phases.
    pub fn total(&self) -> f64 {
        self.init + self.map + self.shuffle + self.merge + self.reduce
    }

    /// The serial (merge-side) portion: everything after the map phase.
    /// The paper attributes the map phase to parallel processing "and the
    /// rest ... to the sequential merging phase".
    pub fn serial_portion(&self) -> f64 {
        self.shuffle + self.merge + self.reduce
    }
}

/// The decomposed measurements for one scale-out degree, combining the
/// sequential-execution reference run with the scale-out run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Scale-out degree `n`.
    pub n: u32,
    /// `Wp(n)`: time to execute all `n` tasks sequentially on one unit (s).
    pub seq_parallel_work: f64,
    /// `Ws(n)`: merge time in the sequential execution (s).
    pub seq_serial_work: f64,
    /// `max_i Tp,i(n)`: the slowest parallel task in the scale-out run (s).
    pub par_map_time: f64,
    /// Serial merge time in the scale-out run (s).
    pub par_serial_time: f64,
    /// `Wo(n)`: overheads present only in the scale-out run (s).
    pub par_overhead: f64,
}

impl RunMeasurement {
    /// Sequential job time `Wp(n) + Ws(n)` — the speedup numerator.
    pub fn sequential_time(&self) -> f64 {
        self.seq_parallel_work + self.seq_serial_work
    }

    /// Parallel job time — the speedup denominator (paper Eq. 7).
    pub fn parallel_time(&self) -> f64 {
        self.par_map_time + self.par_serial_time + self.par_overhead
    }

    /// The measured speedup `S(n)`.
    pub fn speedup(&self) -> f64 {
        self.sequential_time() / self.parallel_time()
    }

    /// The measured scale-out-induced factor `q(n) = Wo(n)·n / Wp(n)`
    /// (inverting paper Eq. 6).
    pub fn q_factor(&self) -> f64 {
        if self.seq_parallel_work <= 0.0 {
            0.0
        } else {
            self.par_overhead * self.n as f64 / self.seq_parallel_work
        }
    }

    /// Validates that all fields are finite and non-negative and `n ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] or [`ModelError::NonFinite`].
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let fields = [
            self.seq_parallel_work,
            self.seq_serial_work,
            self.par_map_time,
            self.par_serial_time,
            self.par_overhead,
        ];
        if fields.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(ModelError::NonFinite("run measurement field"));
        }
        Ok(())
    }
}

/// Decomposition of a measured scale-out overhead `Wo(n)` into the
/// paper's canonical mechanisms.
///
/// Built by [`overhead_breakdown`]; the [`OverheadBreakdown::other`]
/// residual absorbs whatever the named components do not explain, so the
/// five components always sum to `total` *exactly* (no 1e-6 drift from
/// re-deriving the total).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// The measured total `Wo(n)` (s).
    pub total: f64,
    /// Job setup, dispatch serialization and first-wave costs (s).
    pub scheduling: f64,
    /// Serialized driver broadcasts (s).
    pub broadcast: f64,
    /// Time spent waiting on shuffle transfers beyond the barrier (s).
    pub shuffle_wait: f64,
    /// Barrier stretch beyond a no-straggler schedule (s).
    pub straggler_tail: f64,
    /// Residual not attributed to a named mechanism (s). Negative when
    /// the named components over-explain the total.
    pub other: f64,
}

impl OverheadBreakdown {
    /// Sum of all five components; equals `total` by construction.
    pub fn components_sum(&self) -> f64 {
        self.scheduling + self.broadcast + self.shuffle_wait + self.straggler_tail + self.other
    }

    /// `(component name, fraction of total)` pairs, in declaration order.
    /// All fractions are zero when the total is zero.
    pub fn shares(&self) -> [(&'static str, f64); 5] {
        let frac = |v: f64| {
            if self.total > 0.0 {
                v / self.total
            } else {
                0.0
            }
        };
        [
            ("scheduling", frac(self.scheduling)),
            ("broadcast", frac(self.broadcast)),
            ("shuffle_wait", frac(self.shuffle_wait)),
            ("straggler_tail", frac(self.straggler_tail)),
            ("other", frac(self.other)),
        ]
    }
}

impl std::fmt::Display for OverheadBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "scale-out overhead Wo = {:.4}s", self.total)?;
        let values = [
            self.scheduling,
            self.broadcast,
            self.shuffle_wait,
            self.straggler_tail,
            self.other,
        ];
        for ((name, share), value) in self.shares().into_iter().zip(values) {
            writeln!(f, "  {name:<15} {value:>10.4}s  ({:5.1}%)", share * 100.0)?;
        }
        Ok(())
    }
}

/// Decomposes a measured `Wo(n)` into scheduling / broadcast /
/// shuffle-wait / straggler-tail shares, with the unexplained remainder
/// in [`OverheadBreakdown::other`].
pub fn overhead_breakdown(
    total: f64,
    scheduling: f64,
    broadcast: f64,
    shuffle_wait: f64,
    straggler_tail: f64,
) -> OverheadBreakdown {
    OverheadBreakdown {
        total,
        scheduling,
        broadcast,
        shuffle_wait,
        straggler_tail,
        other: total - (scheduling + broadcast + shuffle_wait + straggler_tail),
    }
}

/// Converts a set of run measurements into a speedup curve.
///
/// # Errors
///
/// Propagates validation errors and curve-construction errors.
pub fn speedup_curve_from_runs(runs: &[RunMeasurement]) -> Result<SpeedupCurve, ModelError> {
    for r in runs {
        r.validate()?;
    }
    SpeedupCurve::from_pairs(runs.iter().map(|r| (r.n, r.speedup())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u32, wp: f64, ws: f64, tmax: f64, tser: f64, wo: f64) -> RunMeasurement {
        RunMeasurement {
            n,
            seq_parallel_work: wp,
            seq_serial_work: ws,
            par_map_time: tmax,
            par_serial_time: tser,
            par_overhead: wo,
        }
    }

    #[test]
    fn curve_sorts_and_validates() {
        let c = SpeedupCurve::from_pairs([(4, 3.0), (1, 1.0), (2, 1.9)]).unwrap();
        assert_eq!(c.ns(), vec![1.0, 2.0, 4.0]);
        assert!(c.is_monotonic_increasing());
        assert_eq!(c.peak().unwrap().n, 4);
    }

    #[test]
    fn curve_rejects_zero_n_and_nan() {
        assert!(SpeedupCurve::from_pairs([(0, 1.0)]).is_err());
        assert!(SpeedupCurve::from_pairs([(1, f64::NAN)]).is_err());
        assert!(SpeedupCurve::from_pairs([(1, 1.0), (1, 2.0)]).is_err());
    }

    #[test]
    fn up_to_window_filters() {
        let c = SpeedupCurve::from_pairs([(1, 1.0), (8, 6.0), (16, 10.0), (32, 12.0)]).unwrap();
        let w = c.up_to(16);
        assert_eq!(w.len(), 3);
        assert_eq!(w.points().last().unwrap().n, 16);
    }

    #[test]
    fn peaked_curve_detected() {
        let c = SpeedupCurve::from_pairs([(1, 1.0), (10, 15.0), (60, 21.0), (90, 18.0)]).unwrap();
        assert!(!c.is_monotonic_increasing());
        let p = c.peak().unwrap();
        assert_eq!(p.n, 60);
        assert!((p.speedup - 21.0).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdown_accounting() {
        let b = PhaseBreakdown {
            init: 1.0,
            map: 10.0,
            shuffle: 2.0,
            merge: 3.0,
            reduce: 4.0,
        };
        assert!((b.total() - 20.0).abs() < 1e-12);
        assert!((b.serial_portion() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn run_measurement_speedup_and_q() {
        let r = run(10, 100.0, 20.0, 10.0, 20.0, 5.0);
        assert!((r.sequential_time() - 120.0).abs() < 1e-12);
        assert!((r.parallel_time() - 35.0).abs() < 1e-12);
        assert!((r.speedup() - 120.0 / 35.0).abs() < 1e-12);
        // q = 5 * 10 / 100 = 0.5
        assert!((r.q_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_measurement_validation() {
        assert!(run(1, 1.0, 1.0, 1.0, 1.0, 0.0).validate().is_ok());
        assert!(run(0, 1.0, 1.0, 1.0, 1.0, 0.0).validate().is_err());
        assert!(run(1, -1.0, 1.0, 1.0, 1.0, 0.0).validate().is_err());
        assert!(run(1, f64::INFINITY, 1.0, 1.0, 1.0, 0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn curve_from_runs() {
        let runs = vec![
            run(1, 10.0, 2.0, 10.0, 2.0, 0.0),
            run(4, 40.0, 4.0, 10.0, 4.0, 1.0),
        ];
        let c = speedup_curve_from_runs(&runs).unwrap();
        assert_eq!(c.len(), 2);
        assert!((c.points()[0].speedup - 1.0).abs() < 1e-12);
        assert!((c.points()[1].speedup - 44.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let c: SpeedupCurve = [
            SpeedupPoint { n: 2, speedup: 2.0 },
            SpeedupPoint { n: 1, speedup: 1.0 },
        ]
        .into_iter()
        .collect();
        assert_eq!(c.points()[0].n, 1);
    }

    #[test]
    fn collect_drops_invalid_points_and_peak_stays_nan_safe() {
        // The lenient FromIterator path filters NaN/inf/n = 0 instead of
        // letting them poison peak() (which used to panic on NaN via
        // partial_cmp().unwrap()).
        let c: SpeedupCurve = [
            SpeedupPoint { n: 1, speedup: 1.0 },
            SpeedupPoint {
                n: 2,
                speedup: f64::NAN,
            },
            SpeedupPoint {
                n: 3,
                speedup: f64::INFINITY,
            },
            SpeedupPoint { n: 0, speedup: 5.0 },
            SpeedupPoint { n: 4, speedup: 3.0 },
        ]
        .into_iter()
        .collect();
        assert_eq!(c.len(), 2);
        assert_eq!(c.peak().unwrap().n, 4);
    }

    #[test]
    fn overhead_breakdown_sums_exactly() {
        let b = overhead_breakdown(10.0, 3.0, 2.0, 1.0, 0.5);
        assert!((b.components_sum() - b.total).abs() < 1e-6);
        assert!((b.other - 3.5).abs() < 1e-12);
        // Awkward floating-point inputs still sum exactly by residual.
        let b = overhead_breakdown(0.3, 0.1, 0.1, 0.05, 0.025);
        assert!((b.components_sum() - b.total).abs() < 1e-6);
    }

    #[test]
    fn overhead_breakdown_shares() {
        let b = overhead_breakdown(8.0, 4.0, 2.0, 1.0, 1.0);
        let shares = b.shares();
        assert_eq!(shares[0], ("scheduling", 0.5));
        assert_eq!(shares[1], ("broadcast", 0.25));
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Zero total yields zero shares, not NaN.
        let z = overhead_breakdown(0.0, 0.0, 0.0, 0.0, 0.0);
        assert!(z.shares().iter().all(|&(_, s)| s == 0.0));
    }

    #[test]
    fn overhead_breakdown_display_and_serde() {
        let b = overhead_breakdown(2.0, 1.0, 0.5, 0.25, 0.25);
        let text = b.to_string();
        assert!(text.contains("Wo = 2.0000s"));
        assert!(text.contains("scheduling"));
        assert!(text.contains("50.0%"));
        let json = serde_json::to_string(&b).unwrap();
        let back: OverheadBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
