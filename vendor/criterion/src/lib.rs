//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark closure for a short, bounded number
//! of iterations and prints a mean per-iteration time. There is no
//! statistical analysis, warm-up modelling, or HTML report — just
//! enough to keep `cargo bench` (and `cargo test --benches`) working
//! without crates.io access, with honest wall-clock numbers.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark iteration driver passed to `bench_function` closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a bounded batch of iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it takes a measurable time,
        // capped so one benchmark never runs longer than ~200ms.
        let budget = Duration::from_millis(200);
        let mut batch: u64 = 1;
        let start = Instant::now();
        loop {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let batch_time = batch_start.elapsed();
            self.total += batch_time;
            self.iters += batch;
            if start.elapsed() >= budget {
                return;
            }
            if batch_time < Duration::from_millis(10) && batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_secs_f64() * 1e9 / bencher.iters as f64
        };
        println!(
            "bench {name:<40} {mean_ns:>12.1} ns/iter ({} iters)",
            bencher.iters
        );
        self
    }
}

/// Groups benchmark functions under one runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes bench binaries with
            // libtest-style flags; accept and ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
