//! Criterion benchmarks of the full engines plus a regression harness.
//!
//! Two layers share this binary (`harness = false`):
//!
//! 1. Criterion-style benches of one MapReduce job (map + shuffle +
//!    merge + reduce with real record processing), one Spark job (stage
//!    DAG with broadcast and shuffles) and an end-to-end scaling sweep.
//! 2. A regression harness that times the engines under pinned
//!    configurations — the reference `BTreeGrouping` shuffle on one
//!    thread against the sort-based shuffle, sequential and with the
//!    full host — and writes the wall-clock numbers and speedup ratios
//!    to `BENCH_engines.json` at the repository root so CI can assert
//!    the optimised data path never regresses.

use criterion::{black_box, criterion_group, Criterion};
use ipso_bench::SweepRunner;
use ipso_mapreduce::{Mapper, OutputScaling, Reducer, ShuffleImpl};
use ipso_spark::run_job;
use ipso_workloads::{bayes, sort, wordcount};
use serde::Serialize;
use std::time::{Duration, Instant};

/// The seed's WordCount mapper, kept verbatim as the regression
/// baseline: every token allocates a fresh `String` key (no interning).
/// Paired with `ShuffleImpl::BTreeGrouping` this is exactly the
/// pre-optimization data path.
struct SeedWordCountMapper;

impl Mapper for SeedWordCountMapper {
    type Input = String;
    type Key = String;
    type Value = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }

    fn combine(&self, _key: &String, values: &mut Vec<u64>) {
        let sum = values.iter().sum();
        values.clear();
        values.push(sum);
    }

    fn output_scaling(&self) -> OutputScaling {
        OutputScaling::Saturating
    }
}

struct SeedWordCountReducer;

impl Reducer for SeedWordCountReducer {
    type Key = String;
    type Value = u64;
    type Output = (String, u64);

    fn reduce(&self, key: &String, values: &[u64], emit: &mut dyn FnMut((String, u64))) {
        emit((key.clone(), values.iter().sum()));
    }
}

/// Where the regression record lands: the workspace root, NOT
/// `results/` (CI checks `git diff --exit-code results/`, and bench
/// timings are host-dependent by nature).
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engines.json");

/// The number of map tasks the regression harness pins for the
/// MapReduce workloads (the acceptance point for the speedup targets).
const MAP_TASKS: u32 = 8;

#[derive(Debug, Serialize)]
struct BenchRecord {
    name: String,
    engine: &'static str,
    workload: &'static str,
    config: &'static str,
    threads: usize,
    mean_ns: f64,
    iters: u64,
}

#[derive(Debug, Serialize)]
struct SpeedupRecord {
    engine: &'static str,
    workload: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    ratio: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    map_tasks: u32,
    host_threads: usize,
    benches: Vec<BenchRecord>,
    speedups: Vec<SpeedupRecord>,
}

/// Times `f` with the same calibration loop as the criterion stand-in
/// (grow the batch until measurable, bounded total budget) and returns
/// the mean nanoseconds per iteration.
fn measure<T, F: FnMut() -> T>(mut f: F) -> (f64, u64) {
    let budget = Duration::from_millis(600);
    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    let mut batch: u64 = 1;
    let start = Instant::now();
    loop {
        let batch_start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let batch_time = batch_start.elapsed();
        total += batch_time;
        iters += batch;
        if start.elapsed() >= budget {
            break;
        }
        if batch_time < Duration::from_millis(10) && batch < 1 << 20 {
            batch *= 2;
        }
    }
    (total.as_secs_f64() * 1e9 / iters as f64, iters)
}

/// The regression grid: (config label, shuffle implementation, threads).
/// `threads = 0` means every hardware thread.
const CONFIGS: [(&str, ShuffleImpl, usize); 3] = [
    ("btree_seq", ShuffleImpl::BTreeGrouping, 1),
    ("sortmerge_seq", ShuffleImpl::SortMerge, 1),
    ("sortmerge_par", ShuffleImpl::SortMerge, 0),
];

fn bench_regression_grid(records: &mut Vec<BenchRecord>) {
    // MapReduce: sort and wordcount at MAP_TASKS map tasks, running the
    // real record path through each shuffle/thread configuration.
    for (config, shuffle, threads) in CONFIGS {
        let mut spec = sort::job_spec(MAP_TASKS);
        spec.shuffle = shuffle;
        spec.engine.threads = threads;
        let splits = sort::make_splits(MAP_TASKS, 1);
        let (mean_ns, iters) = measure(|| {
            ipso_mapreduce::run_scale_out(&spec, &sort::SortMapper, &sort::SortReducer, &splits)
        });
        report_line("mapreduce", "sort", config, mean_ns, iters);
        records.push(BenchRecord {
            name: format!("mapreduce_sort_n{MAP_TASKS}_{config}"),
            engine: "mapreduce",
            workload: "sort",
            config,
            threads,
            mean_ns,
            iters,
        });

        let mut wc_spec = wordcount::job_spec(MAP_TASKS);
        wc_spec.shuffle = shuffle;
        wc_spec.engine.threads = threads;
        let wc_splits = wordcount::make_splits(MAP_TASKS, 1);
        // The baseline configuration pairs the reference shuffle with the
        // seed's allocating mapper — the true pre-optimization path; the
        // optimized configurations use the shipping interned mapper.
        let mapper = wordcount::WordCountMapper::new();
        let (mean_ns, iters) = if shuffle == ShuffleImpl::BTreeGrouping {
            measure(|| {
                ipso_mapreduce::run_scale_out(
                    &wc_spec,
                    &SeedWordCountMapper,
                    &SeedWordCountReducer,
                    &wc_splits,
                )
            })
        } else {
            measure(|| {
                ipso_mapreduce::run_scale_out(
                    &wc_spec,
                    &mapper,
                    &wordcount::WordCountReducer,
                    &wc_splits,
                )
            })
        };
        report_line("mapreduce", "wordcount", config, mean_ns, iters);
        records.push(BenchRecord {
            name: format!("mapreduce_wordcount_n{MAP_TASKS}_{config}"),
            engine: "mapreduce",
            workload: "wordcount",
            config,
            threads,
            mean_ns,
            iters,
        });
    }

    // Spark: the Bayes stage DAG with the host-side stage executor
    // sequential and parallel (the shuffle grid does not apply).
    for (config, threads) in [("seq", 1usize), ("par", 0)] {
        let mut job = bayes::job(256, 64);
        job.engine.threads = threads;
        let (mean_ns, iters) = measure(|| run_job(&job));
        report_line("spark", "bayes", config, mean_ns, iters);
        records.push(BenchRecord {
            name: format!("spark_bayes_n256_m64_{config}"),
            engine: "spark",
            workload: "bayes",
            config,
            threads,
            mean_ns,
            iters,
        });
    }
}

fn report_line(engine: &str, workload: &str, config: &str, mean_ns: f64, iters: u64) {
    let name = format!("{engine}_{workload}_{config}");
    println!("bench {name:<40} {mean_ns:>12.1} ns/iter ({iters} iters)");
}

/// Derives the speedup ratios the harness exists to defend: reference
/// shuffle on one thread vs. the optimised path, per workload.
fn speedups(records: &[BenchRecord]) -> Vec<SpeedupRecord> {
    let mean = |workload: &str, config: &str| {
        records
            .iter()
            .find(|r| r.workload == workload && r.config == config)
            .map(|r| r.mean_ns)
    };
    let mut out = Vec::new();
    for workload in ["sort", "wordcount"] {
        for optimized in ["sortmerge_seq", "sortmerge_par"] {
            if let (Some(base), Some(opt)) =
                (mean(workload, "btree_seq"), mean(workload, optimized))
            {
                out.push(SpeedupRecord {
                    engine: "mapreduce",
                    workload,
                    baseline: "btree_seq",
                    optimized,
                    ratio: base / opt,
                });
            }
        }
    }
    if let (Some(base), Some(opt)) = (
        records
            .iter()
            .find(|r| r.workload == "bayes" && r.config == "seq")
            .map(|r| r.mean_ns),
        records
            .iter()
            .find(|r| r.workload == "bayes" && r.config == "par")
            .map(|r| r.mean_ns),
    ) {
        out.push(SpeedupRecord {
            engine: "spark",
            workload: "bayes",
            baseline: "seq",
            optimized: "par",
            ratio: base / opt,
        });
    }
    out
}

fn run_regression_harness() {
    let mut records = Vec::new();
    bench_regression_grid(&mut records);
    let report = BenchReport {
        schema: "ipso-bench-engines/v1",
        map_tasks: MAP_TASKS,
        host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        speedups: speedups(&records),
        benches: records,
    };
    for s in &report.speedups {
        println!(
            "speedup {}/{}: {} -> {}: {:.2}x",
            s.engine, s.workload, s.baseline, s.optimized, s.ratio
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(REPORT_PATH, json + "\n").expect("write BENCH_engines.json");
    println!("wrote {REPORT_PATH}");
}

fn bench_mapreduce_jobs(c: &mut Criterion) {
    let splits = sort::make_splits(16, 1);
    let spec = sort::job_spec(16);
    c.bench_function("mapreduce_sort_n16", |b| {
        b.iter(|| {
            ipso_mapreduce::run_scale_out(
                black_box(&spec),
                &sort::SortMapper,
                &sort::SortReducer,
                black_box(&splits),
            )
        })
    });

    let wc_splits = wordcount::make_splits(8, 1);
    let wc_spec = wordcount::job_spec(8);
    let mapper = wordcount::WordCountMapper::new();
    c.bench_function("mapreduce_wordcount_n8", |b| {
        b.iter(|| {
            ipso_mapreduce::run_scale_out(
                black_box(&wc_spec),
                &mapper,
                &wordcount::WordCountReducer,
                black_box(&wc_splits),
            )
        })
    });
}

fn bench_spark_job(c: &mut Criterion) {
    let job = bayes::job(256, 64);
    c.bench_function("spark_bayes_n256_m64", |b| {
        b.iter(|| run_job(black_box(&job)))
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    c.bench_function("sort_sweep_to_n16", |b| {
        b.iter(|| sort::sweep(black_box(&[1, 2, 4, 8, 16])))
    });

    // The same sweep decomposed into per-n grid points through the
    // deterministic runner: jobs = 1 measures the runner's overhead over
    // the plain loop, jobs = 0 (all hardware threads) its speedup.
    let cases = [
        ("sort_sweep_to_n16_runner_seq", 1usize),
        ("sort_sweep_to_n16_runner_par", 0),
    ];
    for (label, jobs) in cases {
        let runner = SweepRunner::new(jobs);
        c.bench_function(label, |b| {
            b.iter(|| {
                runner
                    .map(black_box(vec![1u32, 2, 4, 8, 16]), |_ctx, n| {
                        sort::sweep(&[n]).points
                    })
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
            })
        });
    }
}

criterion_group!(
    benches,
    bench_mapreduce_jobs,
    bench_spark_job,
    bench_full_sweep
);

fn main() {
    // `cargo test --benches` invokes bench binaries with libtest-style
    // flags; accept and ignore them.
    benches();
    run_regression_harness();
}
