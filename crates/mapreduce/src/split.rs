//! Input splits: the unit of map-task work.

/// The input assigned to one map task.
///
/// To keep 200-node sweeps laptop-fast the engine executes a *sample* of
/// the records a real 128 MB shard would contain, while charging time for
/// the full `nominal_bytes`. `sample_fraction` records how much of the
/// nominal data the sample represents, so proportional mappers can
/// extrapolate their output volume.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSplit<I> {
    /// The records actually executed.
    pub records: Vec<I>,
    /// Serialized size of the executed records, bytes.
    pub sample_bytes: u64,
    /// The shard size this split stands for (e.g. 128 MiB), bytes.
    pub nominal_bytes: u64,
}

impl<I> InputSplit<I> {
    /// Creates a split.
    ///
    /// # Panics
    ///
    /// Panics if `sample_bytes` is zero while records exist, or
    /// `nominal_bytes < sample_bytes`.
    pub fn new(records: Vec<I>, sample_bytes: u64, nominal_bytes: u64) -> Self {
        assert!(
            records.is_empty() || sample_bytes > 0,
            "non-empty splits must report their sample size"
        );
        assert!(
            nominal_bytes >= sample_bytes,
            "nominal size cannot be smaller than the executed sample"
        );
        InputSplit {
            records,
            sample_bytes,
            nominal_bytes,
        }
    }

    /// A split executed in full (sample == nominal).
    pub fn full(records: Vec<I>, bytes: u64) -> Self {
        InputSplit::new(records, bytes, bytes)
    }

    /// Fraction of the nominal data actually executed, in `(0, 1]`.
    pub fn sample_fraction(&self) -> f64 {
        if self.nominal_bytes == 0 {
            1.0
        } else {
            self.sample_bytes as f64 / self.nominal_bytes as f64
        }
    }

    /// Scale factor from sample volume to nominal volume (≥ 1).
    pub fn scale_up(&self) -> f64 {
        if self.sample_bytes == 0 {
            1.0
        } else {
            self.nominal_bytes as f64 / self.sample_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_scale() {
        let s = InputSplit::new(vec![1, 2, 3], 1000, 128_000);
        assert!((s.sample_fraction() - 1000.0 / 128_000.0).abs() < 1e-12);
        assert!((s.scale_up() - 128.0).abs() < 1e-12);
    }

    #[test]
    fn full_split_has_unit_scale() {
        let s = InputSplit::full(vec![1], 8);
        assert_eq!(s.sample_fraction(), 1.0);
        assert_eq!(s.scale_up(), 1.0);
    }

    #[test]
    fn empty_split_is_degenerate_but_safe() {
        let s: InputSplit<u8> = InputSplit::new(Vec::new(), 0, 0);
        assert_eq!(s.sample_fraction(), 1.0);
        assert_eq!(s.scale_up(), 1.0);
    }

    #[test]
    #[should_panic(expected = "nominal size cannot be smaller")]
    fn nominal_below_sample_rejected() {
        let _ = InputSplit::new(vec![1], 100, 50);
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn nonempty_zero_sample_rejected() {
        let _ = InputSplit::new(vec![1], 0, 50);
    }
}
