//! Ablation: serialized driver broadcast versus a binomial broadcast
//! tree, on the Collaborative Filtering workload.
//!
//! The paper attributes CF's pathological IVs scaling to the broadcast
//! overhead growing linearly per node (\[12\]). If that diagnosis is right,
//! replacing the serialized unicasts with a log₂(n)-depth tree (what
//! Spark's later TorrentBroadcast does) should defer the peak and raise
//! it — which is exactly what this ablation shows.

use ipso_bench::{SweepRunner, Table};
use ipso_spark::sweep_fixed_size;
use ipso_workloads::collab_filter::{job, CF_TASKS};

fn main() {
    let runner = SweepRunner::from_env();
    let ms = [10u32, 20, 30, 45, 60, 90, 120, 180, 240];

    // Grid: (tree?, m), variant-major so each variant's points
    // reassemble contiguously.
    let grid: Vec<(bool, u32)> = [false, true]
        .iter()
        .flat_map(|&t| ms.iter().map(move |&m| (t, m)))
        .collect();
    let mut points = runner
        .map(grid, |_ctx, (tree_broadcast, m)| {
            sweep_fixed_size(
                |n, mm| {
                    let mut spec = job(n, mm);
                    spec.network.tree_broadcast = tree_broadcast;
                    spec
                },
                CF_TASKS,
                &[m],
            )
            .into_iter()
            .next()
            .expect("one point per grid cell")
        })
        .into_iter();
    let serial: Vec<ipso_spark::SparkSweepPoint> = points.by_ref().take(ms.len()).collect();
    let tree: Vec<ipso_spark::SparkSweepPoint> = points.by_ref().take(ms.len()).collect();

    let mut table = Table::new(
        "ablation_broadcast",
        &[
            "m",
            "serial_speedup",
            "tree_speedup",
            "serial_overhead",
            "tree_overhead",
        ],
    );
    for (s, t) in serial.iter().zip(&tree) {
        table.push(vec![
            f64::from(s.m),
            s.speedup,
            t.speedup,
            s.overhead_time,
            t.overhead_time,
        ]);
    }
    table.emit();

    let peak = |pts: &[ipso_spark::SparkSweepPoint]| {
        pts.iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .map(|p| (p.m, p.speedup))
            .expect("non-empty")
    };
    let (sm, ss) = peak(&serial);
    let (tm, ts) = peak(&tree);
    println!("serialized broadcast: peak S({sm}) = {ss:.1} — the paper's IVs pathology");
    println!("tree broadcast      : peak S({tm}) = {ts:.1}");
    println!(
        "the tree defers the peak by {:.1}x and lifts it by {:.1}x — confirming the\n\
         broadcast as the root cause of the CF pathology",
        f64::from(tm) / f64::from(sm),
        ts / ss
    );
    assert!(tm >= sm && ts > ss, "tree broadcast should dominate");
}
