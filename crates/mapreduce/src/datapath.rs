//! The real data path: map, combine, shuffle-group and reduce over the
//! sample records.
//!
//! This is the framework-specific half of the engine after the unified
//! runtime refactor — everything that touches *records* lives here;
//! everything that touches *time* lives in [`crate::plan`] (lowering to
//! the task-graph IR) and [`ipso_cluster::runtime`] (execution). The data
//! path consumes no randomness and is independent of the timing model,
//! which is what makes outputs identical across thread counts, scheduler
//! policies and fault settings.
//!
//! Built for throughput:
//!
//! * map tasks run as a parallel wave over `spec.engine.threads` host
//!   threads ([`ipso_sim::par::ordered_map_indexed`]), with results
//!   collected in task order so outputs and traces are byte-identical
//!   to the sequential path for any thread count;
//! * the map-side sort is a single flat pair buffer pre-sized from the
//!   split, stably sorted by key, with the combiner streamed over the
//!   sorted runs through one reused scratch buffer;
//! * the reduce side k-way-merges the already-sorted per-task runs
//!   through a binary heap; a key that lives in a single run is reduced
//!   straight off that run's value buffer, copy-free.
//!
//! The original double `BTreeMap` grouping survives, faithfully, as
//! [`ShuffleImpl::BTreeGrouping`] so the benchmark regression harness
//! can measure the before/after and tests can assert equivalence.

use std::collections::{BTreeMap, BinaryHeap};

use crate::api::{Mapper, OutputScaling, Reducer};
use crate::config::{JobSpec, ShuffleImpl};
use crate::split::InputSplit;

/// The per-task result of the (real) map-side computation: a run sorted
/// by key, stored flat. Group `i` holds `keys[i]` with the values
/// `values[ends[i - 1]..ends[i]]` — three allocations per task instead
/// of one `Vec` per key group.
pub(crate) struct MappedTask<K, V> {
    /// Group keys in ascending order.
    pub(crate) keys: Vec<K>,
    /// Cumulative group end offsets into `values`, parallel to `keys`.
    pub(crate) ends: Vec<u32>,
    /// All groups' values, concatenated in key order.
    pub(crate) values: Vec<V>,
    /// Nominal post-combine output bytes.
    pub(crate) nominal_out_bytes: u64,
}

/// Runs the map + combine side of one task for real.
pub(crate) fn execute_map_task<M>(
    mapper: &M,
    split: &InputSplit<M::Input>,
    shuffle: ShuffleImpl,
) -> MappedTask<M::Key, M::Value>
where
    M: Mapper,
{
    use crate::api::Sizeable;

    // The reference path keeps the seed's unsized buffer so the
    // regression benchmarks measure the original allocation behaviour.
    let mut pairs: Vec<(M::Key, M::Value)> = match shuffle {
        ShuffleImpl::SortMerge => Vec::with_capacity(split.records.len()),
        ShuffleImpl::BTreeGrouping => Vec::new(),
    };
    for record in &split.records {
        mapper.map(record, &mut |k, v| pairs.push((k, v)));
    }

    let mut keys: Vec<M::Key> = Vec::new();
    let mut ends: Vec<u32> = Vec::new();
    let mut values: Vec<M::Value> = Vec::new();
    let mut sample_out_bytes: u64 = 0;

    match shuffle {
        ShuffleImpl::SortMerge => {
            // The map-side sort: one stable sort of the flat buffer (so
            // order-sensitive reducers see values in emission order, as
            // the grouping path produced them), then combine streamed
            // over the sorted runs in a single pass through one reused
            // scratch group.
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            values.reserve(pairs.len());
            let mut flush = |key: M::Key, group: &mut Vec<M::Value>| {
                mapper.combine(&key, group);
                for v in group.iter() {
                    sample_out_bytes += key.size_bytes() + v.size_bytes();
                }
                keys.push(key);
                values.append(group);
                ends.push(values.len() as u32);
            };
            let mut pairs = pairs.into_iter();
            if let Some((first_k, first_v)) = pairs.next() {
                let mut key = first_k;
                let mut group = vec![first_v];
                for (k, v) in pairs {
                    if k == key {
                        group.push(v);
                    } else {
                        flush(std::mem::replace(&mut key, k), &mut group);
                        group.push(v);
                    }
                }
                flush(key, &mut group);
            }
        }
        ShuffleImpl::BTreeGrouping => {
            // Reference path, kept faithful to the seed: group through a
            // per-key tree, combine into a second rebuilt tree, then
            // marshal into the run container.
            let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
            for (k, v) in pairs {
                groups.entry(k).or_default().push(v);
            }
            let mut combined: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
            for (k, mut vs) in groups {
                mapper.combine(&k, &mut vs);
                for v in &vs {
                    sample_out_bytes += k.size_bytes() + v.size_bytes();
                }
                combined.insert(k, vs);
            }
            for (k, vs) in combined {
                keys.push(k);
                values.extend(vs);
                ends.push(values.len() as u32);
            }
        }
    }

    let nominal_out_bytes = match mapper.output_scaling() {
        OutputScaling::Proportional => (sample_out_bytes as f64 * split.scale_up()).round() as u64,
        OutputScaling::Saturating => sample_out_bytes,
    };
    MappedTask {
        keys,
        ends,
        values,
        nominal_out_bytes,
    }
}

/// Runs the map + combine side of every task, as a parallel wave over
/// the host threads configured in `spec.engine`. Results come back in
/// task order, so downstream accounting is independent of thread count.
pub(crate) fn execute_map_tasks<M>(
    mapper: &M,
    splits: &[InputSplit<M::Input>],
    spec: &JobSpec,
) -> Vec<MappedTask<M::Key, M::Value>>
where
    M: Mapper + Sync,
    M::Input: Sync,
    M::Key: Send,
    M::Value: Send,
{
    ipso_sim::par::ordered_map_indexed(spec.engine.threads, splits.len(), |i| {
        execute_map_task(mapper, &splits[i], spec.shuffle)
    })
}

/// A consumable view of one task's flat run for the k-way merge.
struct RunSource<K, V> {
    keys: std::vec::IntoIter<K>,
    ends: std::vec::IntoIter<u32>,
    values: Vec<V>,
    /// Start offset of the next unconsumed group in `values`.
    pos: usize,
}

/// The head of one task's run, ordered for min-heap extraction: smallest
/// key first, ties broken by task index so values merge in task order
/// exactly as the sequential grouping path appended them.
struct RunHead<K> {
    key: K,
    task: usize,
}

impl<K: Ord> PartialEq for RunHead<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.task == other.task
    }
}
impl<K: Ord> Eq for RunHead<K> {}
impl<K: Ord> PartialOrd for RunHead<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord> Ord for RunHead<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so `BinaryHeap` (a max-heap) pops the smallest
        // (key, task) pair first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Merges all tasks' sorted runs and runs the reducer for real.
pub(crate) fn execute_reduce<R>(
    reducer: &R,
    tasks: Vec<MappedTask<R::Key, R::Value>>,
    shuffle: ShuffleImpl,
) -> (Vec<R::Output>, u64)
where
    R: Reducer,
{
    let mut reduce_input_bytes: u64 = 0;
    let mut output = Vec::new();

    match shuffle {
        ShuffleImpl::SortMerge => {
            // K-way merge over the per-task runs: a binary heap holds one
            // head key per task. A key that lives in a single run is
            // reduced directly from that run's value buffer; equal keys
            // across tasks are coalesced into one reused scratch group in
            // task order.
            let mut sources: Vec<RunSource<R::Key, R::Value>> = tasks
                .into_iter()
                .map(|t| {
                    reduce_input_bytes += t.nominal_out_bytes;
                    RunSource {
                        keys: t.keys.into_iter(),
                        ends: t.ends.into_iter(),
                        values: t.values,
                        pos: 0,
                    }
                })
                .collect();
            let mut heap: BinaryHeap<RunHead<R::Key>> = BinaryHeap::with_capacity(sources.len());
            for (task, source) in sources.iter_mut().enumerate() {
                if let Some(key) = source.keys.next() {
                    heap.push(RunHead { key, task });
                }
            }
            let mut scratch: Vec<R::Value> = Vec::new();
            while let Some(RunHead { key, task }) = heap.pop() {
                let src = &mut sources[task];
                let start = src.pos;
                let end = src.ends.next().expect("ends parallel to keys") as usize;
                src.pos = end;
                if let Some(next_key) = src.keys.next() {
                    heap.push(RunHead {
                        key: next_key,
                        task,
                    });
                }
                let key_continues = heap.peek().is_some_and(|head| head.key == key);
                if !key_continues && scratch.is_empty() {
                    // Sole-run key: reduce straight off the run, no copy.
                    reducer.reduce(&key, &sources[task].values[start..end], &mut |o| {
                        output.push(o);
                    });
                } else {
                    scratch.extend_from_slice(&sources[task].values[start..end]);
                    if !key_continues {
                        reducer.reduce(&key, &scratch, &mut |o| output.push(o));
                        scratch.clear();
                    }
                }
            }
        }
        ShuffleImpl::BTreeGrouping => {
            // Reference path, faithful to the seed: rebuild one merged
            // map, then reduce.
            let mut merged: BTreeMap<R::Key, Vec<R::Value>> = BTreeMap::new();
            for t in tasks {
                reduce_input_bytes += t.nominal_out_bytes;
                let mut vals = t.values.into_iter();
                let mut pos: usize = 0;
                for (k, end) in t.keys.into_iter().zip(t.ends) {
                    let end = end as usize;
                    merged
                        .entry(k)
                        .or_default()
                        .extend(vals.by_ref().take(end - pos));
                    pos = end;
                }
            }
            for (k, vs) in &merged {
                reducer.reduce(k, vs, &mut |o| output.push(o));
            }
        }
    }

    (output, reduce_input_bytes)
}
