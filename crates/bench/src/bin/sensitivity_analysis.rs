//! Sensitivity of the speedup to the five asymptotic parameters, for the
//! paper's representative workload classes.
//!
//! Answers the question behind the paper's future work ("how to quickly
//! estimate the two scaling parameters, δ and γ"): which parameter is
//! worth measuring precisely depends on the workload class and the
//! operating point.

use ipso::sensitivity::sensitivity_profile;
use ipso::AsymptoticParams;
use ipso_bench::{SweepRunner, Table};

fn main() {
    let runner = SweepRunner::from_env();
    let cases: Vec<(&str, AsymptoticParams)> = vec![
        (
            "gustafson_like",
            AsymptoticParams::new(0.93, 1.0, 1.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "sort_like",
            AsymptoticParams::new(0.61, 2.3, 0.0, 0.0, 0.0).expect("valid"),
        ),
        (
            "cf_like",
            AsymptoticParams::new(1.0, 1.0, 0.0, 0.0003, 2.0).expect("valid"),
        ),
        (
            "mixed_overheads",
            AsymptoticParams::new(0.85, 1.5, 0.5, 0.01, 1.5).expect("valid"),
        ),
    ];

    // One grid point per workload class.
    let profiles = runner.map((0..cases.len()).collect(), |_ctx, i| {
        sensitivity_profile(&cases[i].1, [2u32, 8, 32, 64, 128, 256]).expect("evaluable")
    });

    for ((name, _), profile) in cases.iter().zip(&profiles) {
        let mut table = Table::new(
            &format!("sensitivity_{name}"),
            &[
                "n", "speedup", "d_eta", "d_alpha", "d_delta", "d_beta", "d_gamma",
            ],
        );
        for s in profile {
            table.push(vec![
                s.n, s.speedup, s.eta, s.alpha, s.delta, s.beta, s.gamma,
            ]);
        }
        table.emit();
        let last = profile.last().expect("non-empty");
        println!(
            "  {name}: dominant parameter at n = 256 is {}\n",
            last.dominant()
        );
    }

    println!(
        "takeaway: benign workloads are η-dominated (measure the serial fraction),\n\
         in-proportion workloads are α/δ-dominated (measure the merge growth), and\n\
         pathological ones are γ-dominated (find the superlinear overhead) — measure\n\
         what the class makes decisive."
    );
}
