//! Fig. 6 — measured and fitted `EX(n)` and `IN(n)` for the four
//! MapReduce cases.
//!
//! Paper findings to reproduce: `EX(n) ≈ n` for all four cases (the
//! memory-bounded workload is indistinguishable from fixed-time);
//! `IN(n) ≈ 1` for WordCount and QMC; linear `IN(n)` with substantial
//! slope for Sort (0.36·n − 0.11) and TeraSort (0.23·n + 2.72 past the
//! spill).

use ipso::estimate::estimate_factors;
use ipso_bench::{SweepRunner, Table};
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::{qmc, sort, terasort, wordcount};

/// A named MapReduce sweep constructor.
type Case = (&'static str, fn(&[u32]) -> ScalingSweep);

fn main() {
    let runner = SweepRunner::from_env();
    let ns: Vec<u32> = vec![1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128, 160];
    let case_fns: Vec<Case> = vec![
        ("qmc", qmc::sweep),
        ("wordcount", wordcount::sweep),
        ("sort", sort::sweep),
        ("terasort", terasort::sweep),
    ];

    // One grid point per (case, n), run in parallel and reassembled in
    // case-major order.
    let grid: Vec<(usize, u32)> = (0..case_fns.len())
        .flat_map(|c| ns.iter().map(move |&n| (c, n)))
        .collect();
    let mut points = runner
        .map(grid, |_ctx, (c, n)| case_fns[c].1(&[n]).points)
        .into_iter();
    let cases: Vec<(&str, ScalingSweep)> = case_fns
        .iter()
        .map(|(name, _)| {
            let points = points.by_ref().take(ns.len()).flatten().collect();
            (*name, ScalingSweep { points })
        })
        .collect();

    let mut table = Table::new("fig6_scaling_factors", &["n", "ex", "in", "case"]);
    println!("fitted factors (fit window: n <= 16, as in the paper):\n");
    for (idx, (name, sweep)) in cases.iter().enumerate() {
        let all = sweep.measurements();
        for m in &all {
            let base = &all[0];
            table.push(vec![
                f64::from(m.n),
                m.seq_parallel_work / base.seq_parallel_work,
                if base.seq_serial_work > 0.0 {
                    m.seq_serial_work / base.seq_serial_work
                } else {
                    1.0
                },
                idx as f64,
            ]);
        }
        let window: Vec<_> = all.iter().copied().filter(|m| m.n <= 16).collect();
        let est = estimate_factors(&window).expect("estimable");
        let ex16 = est.external.factor.eval(16.0) / est.external.factor.eval(1.0);
        println!(
            "  {name:9}: EX(16)/EX(1) = {ex16:.2} (fixed-time expects 16.00), IN shape = {:?}, IN fit = {:?}",
            est.internal.shape, est.internal.factor
        );
        println!(
            "             eta = {:.3}, epsilon(160) = {:.2}",
            est.eta,
            est.epsilon(160.0)
        );
    }
    println!();
    table.emit();
}
