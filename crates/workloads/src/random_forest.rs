//! Random Forest (HiBench Spark ML benchmark; paper Figs. 9–10).
//!
//! The real kernel builds decision stumps on bootstrap resamples with
//! random feature subsets and classifies by majority vote — the
//! per-tree independence that makes the benchmark compute-heavy and
//! shuffle-light, which [`job`] mirrors.

use ipso_sim::SimRng;
use ipso_spark::{SparkJobSpec, StageSpec};

use crate::datagen::LabeledPoint;

/// A depth-1 decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stump {
    /// Feature index tested.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// Label predicted when `x[feature] <= threshold`.
    pub left_label: u32,
    /// Label predicted otherwise.
    pub right_label: u32,
}

impl Stump {
    /// Predicts a label.
    pub fn predict(&self, features: &[f64]) -> u32 {
        if features[self.feature] <= self.threshold {
            self.left_label
        } else {
            self.right_label
        }
    }
}

/// Gini impurity of a two-class split.
fn gini(counts: [u64; 2]) -> f64 {
    let total = (counts[0] + counts[1]) as f64;
    if total == 0.0 {
        return 0.0;
    }
    let p0 = counts[0] as f64 / total;
    let p1 = counts[1] as f64 / total;
    1.0 - p0 * p0 - p1 * p1
}

/// Fits the best stump on `points` considering only `features`.
///
/// # Panics
///
/// Panics if `points` or `features` is empty.
pub fn fit_stump(points: &[LabeledPoint], features: &[usize]) -> Stump {
    assert!(
        !points.is_empty() && !features.is_empty(),
        "need data and features"
    );
    let mut best = Stump {
        feature: features[0],
        threshold: 0.0,
        left_label: 0,
        right_label: 1,
    };
    let mut best_score = f64::INFINITY;
    for &f in features {
        // Candidate thresholds: feature quartiles over a coarse grid.
        for t in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            let mut left = [0u64; 2];
            let mut right = [0u64; 2];
            for p in points {
                if p.features[f] <= t {
                    left[p.label as usize] += 1;
                } else {
                    right[p.label as usize] += 1;
                }
            }
            let total = points.len() as f64;
            let score = (left[0] + left[1]) as f64 / total * gini(left)
                + (right[0] + right[1]) as f64 / total * gini(right);
            if score < best_score {
                best_score = score;
                best = Stump {
                    feature: f,
                    threshold: t,
                    left_label: u32::from(left[1] > left[0]),
                    right_label: u32::from(right[1] > right[0]),
                };
            }
        }
    }
    best
}

/// Trains `trees` stumps on bootstrap resamples with √d random features
/// each.
///
/// # Panics
///
/// Panics if `points` is empty or `trees` is zero.
pub fn train_forest(points: &[LabeledPoint], trees: u32, rng: &mut SimRng) -> Vec<Stump> {
    assert!(
        !points.is_empty() && trees > 0,
        "need data and at least one tree"
    );
    let dims = points[0].features.len();
    let subset = ((dims as f64).sqrt().ceil() as usize).max(1);
    (0..trees)
        .map(|_| {
            let sample: Vec<LabeledPoint> = (0..points.len())
                .map(|_| points[rng.index(points.len())].clone())
                .collect();
            let mut features: Vec<usize> = Vec::with_capacity(subset);
            while features.len() < subset {
                let f = rng.index(dims);
                if !features.contains(&f) {
                    features.push(f);
                }
            }
            fit_stump(&sample, &features)
        })
        .collect()
}

/// Majority-vote prediction.
pub fn predict_forest(forest: &[Stump], features: &[f64]) -> u32 {
    let votes: u32 = forest.iter().map(|s| s.predict(features)).sum();
    u32::from(votes * 2 > forest.len() as u32)
}

/// Forest accuracy on a labeled set.
pub fn accuracy(forest: &[Stump], points: &[LabeledPoint]) -> f64 {
    let correct = points
        .iter()
        .filter(|p| predict_forest(forest, &p.features) == p.label)
        .count();
    correct as f64 / points.len() as f64
}

/// Cached partition per task.
pub const PARTITION_BYTES: u64 = 640 * 1024 * 1024;

/// The calibrated Random Forest job: a heavy tree-building stage (trees
/// are independent — high compute, tiny shuffle) plus a forest-assembly
/// stage.
pub fn job(problem_size: u32, parallelism: u32) -> SparkJobSpec {
    SparkJobSpec::emr("random-forest", problem_size, parallelism)
        .stage(
            StageSpec::new("build-trees", problem_size)
                .with_task_compute(4.5)
                .with_input_bytes(PARTITION_BYTES)
                .with_cached_input(true)
                .with_broadcast(1024 * 1024)
                .with_shuffle_output(128 * 1024),
        )
        .stage(StageSpec::new("assemble-forest", parallelism.max(1)).with_task_compute(0.15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::random_points;

    #[test]
    fn forest_separates_the_blobs() {
        let mut rng = SimRng::seed_from(70);
        let points = random_points(1200, 9, &mut rng);
        let forest = train_forest(&points, 25, &mut rng);
        let acc = accuracy(&forest, &points);
        assert!(acc > 0.85, "accuracy = {acc}");
    }

    #[test]
    fn single_stump_is_weaker_than_forest() {
        let mut rng = SimRng::seed_from(71);
        let points = random_points(1500, 9, &mut rng);
        let stump_acc = accuracy(&train_forest(&points, 1, &mut rng), &points);
        let forest_acc = accuracy(&train_forest(&points, 31, &mut rng), &points);
        assert!(
            forest_acc + 0.02 >= stump_acc,
            "forest {forest_acc} vs stump {stump_acc}"
        );
    }

    #[test]
    fn stump_picks_a_separating_threshold() {
        let mut rng = SimRng::seed_from(72);
        let points = random_points(1000, 4, &mut rng);
        let stump = fit_stump(&points, &[0, 1, 2, 3]);
        // Blobs centred at ±1: any separating threshold lies near 0 and
        // assigns the positive side label 1.
        assert!(
            (-0.6..=0.6).contains(&stump.threshold),
            "threshold {}",
            stump.threshold
        );
        assert_eq!(stump.right_label, 1);
        assert_eq!(stump.left_label, 0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini([10, 0]), 0.0);
        assert!((gini([5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini([0, 0]), 0.0);
    }

    #[test]
    fn job_is_compute_heavy() {
        let j = job(32, 8);
        assert!(j.validate().is_ok());
        // Heavier per-task compute than the other ML jobs, light shuffle.
        assert!(j.stages[0].task_compute > 3.0);
        assert!(j.stages[0].shuffle_output_per_task < 1024 * 1024);
    }
}
