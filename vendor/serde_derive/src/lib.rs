//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` crate's `Content` data model, without
//! `syn`/`quote`: the input item is parsed by walking raw token trees
//! and the generated impl is assembled as a string and re-parsed.
//!
//! Supported shapes (everything this workspace uses):
//!
//! * structs with named fields;
//! * enums with unit and struct variants, externally tagged by default
//!   or internally tagged via `#[serde(tag = "...")]`;
//! * `#[serde(rename = "...")]` on fields and variants;
//! * `#[serde(default)]` on fields (missing key → `Default::default()`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// serde attributes gathered from one `#[serde(...)]`-bearing position.
#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    /// `rename = "..."` value, as a Rust string literal (quotes included).
    rename: Option<String>,
    /// Container-level `tag = "..."` value, as a Rust string literal.
    tag: Option<String>,
    /// Field-level `default` flag.
    default: bool,
}

struct Field {
    ident: String,
    attrs: SerdeAttrs,
}

impl Field {
    /// The JSON key for this field, as a Rust string literal.
    fn key(&self) -> String {
        self.attrs
            .rename
            .clone()
            .unwrap_or_else(|| format!("{:?}", self.ident))
    }
}

struct Variant {
    ident: String,
    attrs: SerdeAttrs,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

impl Variant {
    /// The JSON tag for this variant, as a Rust string literal.
    fn key(&self) -> String {
        self.attrs
            .rename
            .clone()
            .unwrap_or_else(|| format!("{:?}", self.ident))
    }
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        tag: Option<String>,
        variants: Vec<Variant>,
    },
}

/// Cursor over a token-tree list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Consumes leading attributes, returning merged serde attrs.
    fn take_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.at_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("expected [...] after #");
            };
            merge_serde_attrs(&mut attrs, g.stream());
        }
        attrs
    }

    /// Consumes `pub`, `pub(...)` etc.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consumes type tokens up to a top-level comma (tracking `<`/`>`).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

/// Parses the contents of one `[...]` attribute group into `attrs` if it
/// is a `serde(...)` attribute; other attributes (docs, derives) are
/// ignored.
fn merge_serde_attrs(attrs: &mut SerdeAttrs, stream: TokenStream) {
    let mut cur = Cursor::new(stream);
    if !cur.at_ident("serde") {
        return;
    }
    cur.next();
    let Some(TokenTree::Group(args)) = cur.next() else {
        return;
    };
    let mut inner = Cursor::new(args.stream());
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(name) = tok else {
            continue;
        };
        let name = name.to_string();
        let value = if inner.at_punct('=') {
            inner.next();
            match inner.next() {
                Some(TokenTree::Literal(lit)) => Some(lit.to_string()),
                other => panic!("expected string literal after {name} =, got {other:?}"),
            }
        } else {
            None
        };
        match (name.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("default", None) => attrs.default = true,
            ("deny_unknown_fields", None) => {}
            (other, _) => panic!("unsupported serde attribute: {other}"),
        }
        if inner.at_punct(',') {
            inner.next();
        }
    }
}

/// Parses the fields of a `{ ... }` group into named fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.take_attrs();
        cur.skip_visibility();
        let Some(TokenTree::Ident(ident)) = cur.next() else {
            panic!("expected field identifier");
        };
        assert!(cur.at_punct(':'), "expected : after field {ident}");
        cur.next();
        cur.skip_type();
        if cur.at_punct(',') {
            cur.next();
        }
        fields.push(Field {
            ident: ident.to_string(),
            attrs,
        });
    }
    fields
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.take_attrs();
        let Some(TokenTree::Ident(ident)) = cur.next() else {
            panic!("expected variant identifier");
        };
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cur.next();
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple enum variants are not supported by the vendored serde_derive");
            }
            _ => None,
        };
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant {
            ident: ident.to_string(),
            attrs,
            fields,
        });
    }
    variants
}

/// Parses the derive input item.
fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let container_attrs = cur.take_attrs();
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct or enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = cur.next() else {
        panic!("expected item name");
    };
    if cur.at_punct('<') {
        panic!("generic types are not supported by the vendored serde_derive");
    }
    let Some(TokenTree::Group(body)) = cur.next() else {
        panic!("expected item body (unit/tuple structs are not supported)");
    };
    match kind.as_str() {
        "struct" => {
            assert!(
                body.delimiter() == Delimiter::Brace,
                "tuple structs are not supported by the vendored serde_derive"
            );
            Item::Struct {
                name: name.to_string(),
                fields: parse_named_fields(body.stream()),
            }
        }
        "enum" => Item::Enum {
            name: name.to_string(),
            tag: container_attrs.tag,
            variants: parse_variants(body.stream()),
        },
        other => panic!("cannot derive for {other}"),
    }
}

/// Derives `serde::Serialize` (vendored data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__m.push(({}.to_string(), ::serde::Serialize::to_content(&self.{})));\n",
                    f.key(),
                    f.ident
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Content::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            tag,
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                match (&v.fields, tag) {
                    (None, None) => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::Content::Str({vk}.to_string()),\n",
                        vi = v.ident,
                        vk = v.key()
                    )),
                    (None, Some(tag)) => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::Content::Map(vec![({tag}.to_string(), \
                         ::serde::Content::Str({vk}.to_string()))]),\n",
                        vi = v.ident,
                        vk = v.key()
                    )),
                    (Some(fields), _) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
                        let mut pushes = String::new();
                        if let Some(tag) = tag {
                            pushes.push_str(&format!(
                                "__m.push(({tag}.to_string(), \
                                 ::serde::Content::Str({vk}.to_string())));\n",
                                vk = v.key()
                            ));
                        }
                        for f in fields {
                            pushes.push_str(&format!(
                                "__m.push(({}.to_string(), \
                                 ::serde::Serialize::to_content({})));\n",
                                f.key(),
                                f.ident
                            ));
                        }
                        let inner = if tag.is_some() {
                            "::serde::Content::Map(__m)".to_string()
                        } else {
                            format!(
                                "::serde::Content::Map(vec![({vk}.to_string(), \
                                 ::serde::Content::Map(__m))])",
                                vk = v.key()
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vi} {{ {binds} }} => {{\n\
                                 let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n\
                                 {pushes}\
                                 {inner}\n\
                             }}\n",
                            vi = v.ident,
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Emits the deserialization expression for one set of named fields read
/// from a map binding named `__map`.
fn named_fields_body(context: &str, constructor: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(\
                 ::serde::ContentError::missing_field({}, \"{context}\"))",
                f.key()
            )
        };
        inits.push_str(&format!(
            "{fi}: match ::serde::__find(__map, {fk}) {{\n\
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            fi = f.ident,
            fk = f.key()
        ));
    }
    format!("::std::result::Result::Ok({constructor} {{\n{inits}}})")
}

/// Derives `serde::Deserialize` (vendored data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = named_fields_body(name, name, fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::ContentError> {{\n\
                         let __map = __c.as_map().ok_or_else(|| \
                             ::serde::ContentError::expected(\"map\", \"{name}\"))?;\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            tag: Some(tag),
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                let construct = match &v.fields {
                    None => format!("::std::result::Result::Ok({name}::{})", v.ident),
                    Some(fields) => {
                        named_fields_body(name, &format!("{name}::{}", v.ident), fields)
                    }
                };
                arms.push_str(&format!("{vk} => {{ {construct} }}\n", vk = v.key()));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::ContentError> {{\n\
                         let __map = __c.as_map().ok_or_else(|| \
                             ::serde::ContentError::expected(\"map\", \"{name}\"))?;\n\
                         let __tag = ::serde::__find(__map, {tag}).ok_or_else(|| \
                             ::serde::ContentError::missing_field({tag}, \"{name}\"))?;\n\
                         let __tag = __tag.as_str().ok_or_else(|| \
                             ::serde::ContentError::expected(\"string tag\", \"{name}\"))?;\n\
                         match __tag {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(\
                                 ::serde::ContentError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            tag: None,
            variants,
        } => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "{vk} => ::std::result::Result::Ok({name}::{vi}),\n",
                        vk = v.key(),
                        vi = v.ident
                    )),
                    Some(fields) => {
                        let construct =
                            named_fields_body(name, &format!("{name}::{}", v.ident), fields);
                        struct_arms.push_str(&format!(
                            "{vk} => {{\n\
                                 let __map = __v.as_map().ok_or_else(|| \
                                     ::serde::ContentError::expected(\
                                         \"map\", \"{name}::{vi}\"))?;\n\
                                 {construct}\n\
                             }}\n",
                            vk = v.key(),
                            vi = v.ident
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::ContentError> {{\n\
                         match __c {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::ContentError::unknown_variant(\
                                         __other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __v) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {struct_arms}\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::ContentError::unknown_variant(\
                                             __other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::ContentError::expected(\
                                 \"string or single-key map\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}
