//! Scaling a Spark-style ML job along both of the paper's dimensions,
//! reading stage latencies from the JSON event log exactly as the paper
//! does.
//!
//! ```text
//! cargo run --release --example spark_scaling
//! ```

use ipso::measurement::SpeedupCurve;
use ipso::taxonomy::WorkloadType;
use ipso::Diagnostician;
use ipso_spark::{parse_event_log, run_job, sweep_fixed_size, sweep_fixed_time};
use ipso_workloads::bayes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Inspect one run through its event log ───────────────────────────
    let job = bayes::job(64, 16);
    let run = run_job(&job);
    let (stages, duration) = parse_event_log(&run.log)?;
    println!("bayes N = 64, m = 16 — stage latencies from the JSON event log:");
    for s in &stages {
        println!(
            "  stage {:2} {:<18} {:4} tasks  {:7.2}s",
            s.stage_id, s.stage_name, s.num_tasks, s.latency
        );
    }
    println!(
        "  total {:.2}s (overhead {:.2}s = {:.0}%)\n",
        duration.unwrap_or(run.total_time),
        run.overhead_time,
        100.0 * run.overhead_fraction()
    );

    // ── Fixed-time dimension (N/m constant) ─────────────────────────────
    let ms = [1u32, 2, 4, 8, 16, 32, 64];
    println!("fixed-time dimension (paper Fig. 9): speedup at load levels N/m:");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8}",
        "m", "N/m=1", "N/m=2", "N/m=4", "N/m=8"
    );
    let by_load: Vec<_> = [1, 2, 4, 8]
        .iter()
        .map(|&l| sweep_fixed_time(bayes::job, l, &ms))
        .collect();
    for (i, &m) in ms.iter().enumerate() {
        println!(
            "{:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            m,
            by_load[0][i].speedup,
            by_load[1][i].speedup,
            by_load[2][i].speedup,
            by_load[3][i].speedup
        );
    }
    println!("  -> N/m = 4 wins; N/m = 8 spills executor memory, as in the paper.\n");

    // ── Fixed-size dimension (N constant) ───────────────────────────────
    let ms_wide = [1u32, 2, 4, 8, 16, 32, 64, 128, 192, 256];
    let pts = sweep_fixed_size(bayes::job, 64, &ms_wide);
    println!("fixed-size dimension (paper Fig. 10), N = 64:");
    for p in &pts {
        println!("  m = {:4}  S = {:6.2}", p.m, p.speedup);
    }

    // Diagnose the curve with the paper's procedure.
    let curve = SpeedupCurve::from_pairs(pts.iter().map(|p| (p.m, p.speedup)))?;
    let report = Diagnostician::new().diagnose(&curve, WorkloadType::FixedSize)?;
    println!("\ndiagnosis:\n{report}");
    Ok(())
}
