//! Property-based tests of the unified cluster runtime: both engines'
//! lowerings produce well-formed task graphs, and [`ipso_cluster::execute`]
//! is bit-deterministic for any host thread count, under every scheduler
//! policy, with faults on and off.

use ipso_cluster::runtime::{RunOutcome, RuntimeConfig};
use ipso_cluster::{
    execute, CentralScheduler, FaultModel, RecoveryPolicy, SchedulerPolicy, StragglerModel,
    TaskGraph,
};
use ipso_mapreduce::{plan_scale_out, InputSplit, JobSpec};
use ipso_sim::SimRng;
use ipso_spark::{lower_chain, lower_levels, SparkJobSpec, StageSpec};
use proptest::prelude::*;

fn mr_splits(sizes: &[u8]) -> Vec<InputSplit<u64>> {
    sizes
        .iter()
        .map(|&s| {
            let bytes = u64::from(s).max(1) * 1024;
            InputSplit::new(vec![u64::from(s)], bytes, bytes * 64)
        })
        .collect()
}

fn spark_job(stage_tasks: &[u8], m: u8) -> SparkJobSpec {
    let mut job = SparkJobSpec::emr("prop", 64, u32::from(m).max(1));
    for (i, &tasks) in stage_tasks.iter().enumerate() {
        job = job.stage(
            StageSpec::new(&format!("s{i}"), u32::from(tasks).max(1))
                .with_task_compute(0.25 + f64::from(tasks) / 64.0),
        );
    }
    job
}

/// Chain edges `(k-1, k)` interleaved with a few diamonds, always acyclic
/// because every edge points forward.
fn forward_edges(n_stages: usize, extra: &[(u8, u8)]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (1..n_stages).map(|k| (k - 1, k)).collect();
    for &(a, b) in extra {
        let a = a as usize % n_stages;
        let b = b as usize % n_stages;
        if a < b {
            edges.push((a, b));
        }
    }
    edges
}

fn policy_from(idx: u8) -> SchedulerPolicy {
    match idx % 3 {
        0 => SchedulerPolicy::Fifo,
        1 => SchedulerPolicy::Fair,
        _ => SchedulerPolicy::Locality,
    }
}

fn config(
    executors: usize,
    policy: SchedulerPolicy,
    faulty: bool,
    threads: usize,
) -> RuntimeConfig {
    RuntimeConfig {
        executors,
        scheduler: CentralScheduler::spark_like(),
        policy,
        straggler: StragglerModel::mild(),
        faults: if faulty {
            let mut f = FaultModel::flaky(0.2);
            f.node_crash_prob = 0.05;
            f
        } else {
            FaultModel::none()
        },
        recovery: {
            let mut r = RecoveryPolicy::hadoop_like().with_speculation();
            r.max_attempts = 16;
            r
        },
        threads,
    }
}

/// Everything observable about a run, with times as bit patterns so the
/// comparison is exact, not approximate.
fn fingerprint(outcome: &RunOutcome) -> Vec<(Vec<u64>, u64, u64, u64, u64, u64)> {
    outcome
        .stages
        .iter()
        .map(|s| {
            (
                s.effective.iter().map(|d| d.to_bits()).collect(),
                s.schedule.makespan.to_bits(),
                s.ideal_makespan.to_bits(),
                s.schedule_overhead().to_bits(),
                s.wasted().to_bits(),
                s.lineage.as_ref().map_or(0, |l| l.work.to_bits()),
            )
        })
        .collect()
}

fn assert_graph_well_formed(graph: &TaskGraph) {
    graph.validate().expect("lowered graph must validate");
    assert!(
        graph.is_topologically_ordered(),
        "lowered graph must list stages in dependency order"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MapReduce lowering is a well-formed single-stage graph for any
    /// split shapes.
    #[test]
    fn mapreduce_lowering_is_well_formed(
        sizes in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let spec = JobSpec::emr("prop", sizes.len() as u32);
        let graph = plan_scale_out(&spec, &mr_splits(&sizes));
        assert_graph_well_formed(&graph);
        prop_assert_eq!(graph.total_tasks(), sizes.len());
    }

    /// Both Spark lowerings are acyclic and topologically consistent for
    /// any stage shapes and any forward edge set.
    #[test]
    fn spark_lowerings_are_well_formed(
        stage_tasks in prop::collection::vec(1u8..32, 1..5),
        m in 1u8..16,
        extra in prop::collection::vec((any::<u8>(), any::<u8>()), 0..4),
    ) {
        let job = spark_job(&stage_tasks, m);
        let chain = lower_chain(&job);
        assert_graph_well_formed(&chain);
        prop_assert_eq!(chain.stages.len(), stage_tasks.len());
        prop_assert_eq!(
            chain.total_tasks() as u32,
            stage_tasks.iter().map(|&t| u32::from(t).max(1)).sum::<u32>()
        );

        let edges = forward_edges(stage_tasks.len(), &extra);
        let (levels, members) = lower_levels(&job, &edges).unwrap();
        assert_graph_well_formed(&levels);
        prop_assert_eq!(levels.total_tasks(), chain.total_tasks());
        prop_assert_eq!(levels.stages.len(), members.len());
        // Every spec stage appears in exactly one level.
        let mut seen: Vec<usize> = members.into_iter().flatten().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..stage_tasks.len()).collect::<Vec<_>>());
    }

    /// `execute` is bit-identical for any thread count, under every
    /// scheduler policy, with faults on and off.
    #[test]
    fn execute_is_bit_identical_across_thread_counts(
        stage_tasks in prop::collection::vec(1u8..24, 1..4),
        m in 1u8..12,
        policy_idx in any::<u8>(),
        faulty in any::<bool>(),
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let graph = lower_chain(&spark_job(&stage_tasks, m));
        let policy = policy_from(policy_idx);
        let executors = usize::from(m).max(1);

        let sequential = config(executors, policy, faulty, 1);
        let parallel = RuntimeConfig { threads, ..config(executors, policy, faulty, 1) };
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_b = SimRng::seed_from(seed);
        let a = execute(&graph, &sequential, &mut rng_a).unwrap();
        let b = execute(&graph, &parallel, &mut rng_b).unwrap();

        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(a.setup_overhead.to_bits(), b.setup_overhead.to_bits());
        prop_assert_eq!(a.overhead_total().to_bits(), b.overhead_total().to_bits());
        // The RNG streams advanced in lockstep: both runs drew the same
        // number of samples in the same order.
        prop_assert_eq!(
            rng_a.uniform(0.0, 1.0).to_bits(),
            rng_b.uniform(0.0, 1.0).to_bits()
        );
    }

    /// Replaying `execute` with the same seed reproduces the run exactly
    /// under every policy — the policies permute dispatch order without
    /// perturbing the straggler or fault sample streams.
    #[test]
    fn execute_is_replayable_under_every_policy(
        stage_tasks in prop::collection::vec(1u8..24, 1..4),
        m in 1u8..12,
        faulty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let graph = lower_chain(&spark_job(&stage_tasks, m));
        let executors = usize::from(m).max(1);
        let mut baseline: Option<Vec<u64>> = None;
        for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::Fair, SchedulerPolicy::Locality] {
            let cfg = config(executors, policy, faulty, 1);
            let mut rng_a = SimRng::seed_from(seed);
            let mut rng_b = SimRng::seed_from(seed);
            let a = execute(&graph, &cfg, &mut rng_a).unwrap();
            let b = execute(&graph, &cfg, &mut rng_b).unwrap();
            prop_assert_eq!(fingerprint(&a), fingerprint(&b));
            // Dispatch order never changes what work is sampled: the
            // effective task durations are policy-independent even
            // though their placement (and thus the makespan) may move.
            let effective: Vec<u64> = a
                .stages
                .iter()
                .flat_map(|s| s.effective.iter().map(|d| d.to_bits()))
                .collect();
            match &baseline {
                None => baseline = Some(effective),
                Some(expected) => prop_assert_eq!(expected, &effective),
            }
        }
    }
}
