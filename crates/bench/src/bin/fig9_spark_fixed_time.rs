//! Fig. 9 — the Spark benchmarks along the fixed-time dimension
//! (`N/m` constant while scaling `m`).
//!
//! Paper findings to reproduce, for all four applications:
//! the speedup curve at `N/m = 4` lies above `N/m = 2`, which lies above
//! `N/m = 1` (first-wave scheduling/deserialization amortizes over more
//! tasks per executor) — but `N/m = 8` drops below `N/m = 4` because the
//! cached partitions overflow executor memory and spill.

use ipso_bench::{SweepRunner, Table};
use ipso_spark::sweep_fixed_time;
use ipso_workloads::{bayes, nweight, random_forest, svm};

/// A named Spark application constructor `(name, job(load, m))`.
type App = (&'static str, fn(u32, u32) -> ipso_spark::SparkJobSpec);

fn main() {
    let trace_out = ipso_bench::trace_out_from_env();
    let runner = SweepRunner::from_env();
    let ms: Vec<u32> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64];
    let loads: Vec<u32> = vec![1, 2, 4, 8];
    let apps: Vec<App> = vec![
        ("bayes", bayes::job),
        ("random_forest", random_forest::job),
        ("svm", svm::job),
        ("nweight", nweight::job),
    ];

    // One grid point per (app, load, m), app-major then load-major so
    // each app's per-load series reassembles contiguously.
    let mut grid: Vec<(usize, u32, u32)> = Vec::new();
    for a in 0..apps.len() {
        for &l in &loads {
            for &m in &ms {
                grid.push((a, l, m));
            }
        }
    }
    let mut points = runner
        .map(grid, |_ctx, (a, load, m)| {
            sweep_fixed_time(apps[a].1, load, &[m])
                .into_iter()
                .next()
                .expect("one point per grid cell")
        })
        .into_iter();

    for (name, _) in &apps {
        let sweeps: Vec<Vec<ipso_spark::SparkSweepPoint>> = loads
            .iter()
            .map(|_| points.by_ref().take(ms.len()).collect())
            .collect();
        let mut table = Table::new(
            &format!("fig9_{name}"),
            &["m", "load1", "load2", "load4", "load8"],
        );
        for (i, &m) in ms.iter().enumerate() {
            table.push(vec![
                f64::from(m),
                sweeps[0][i].speedup,
                sweeps[1][i].speedup,
                sweeps[2][i].speedup,
                sweeps[3][i].speedup,
            ]);
        }
        table.emit();

        // The paper's ordering at the largest m.
        let last = ms.len() - 1;
        println!(
            "  {name}: at m = {}: S[N/m=1] = {:.1}, S[N/m=2] = {:.1}, S[N/m=4] = {:.1}, S[N/m=8] = {:.1}",
            ms[last],
            sweeps[0][last].speedup,
            sweeps[1][last].speedup,
            sweeps[2][last].speedup,
            sweeps[3][last].speedup,
        );
        println!(
            "  expected ordering 4 > 2 > 1 and 8 < 4 (memory spill): {}\n",
            if sweeps[2][last].speedup > sweeps[1][last].speedup
                && sweeps[1][last].speedup > sweeps[0][last].speedup
                && sweeps[3][last].speedup < sweeps[2][last].speedup
            {
                "reproduced"
            } else {
                "NOT reproduced"
            }
        );
    }
    trace_out.finish();
}
