#![warn(missing_docs)]

//! Simulated cluster substrate for the IPSO reproduction.
//!
//! The paper runs its case studies on Amazon EC2 with EMR: one m4.4xlarge
//! master and up to ~200 m4.large workers. This crate replaces that
//! testbed with a first-principles performance model:
//!
//! * [`spec`] — machine and cluster specifications (cores, memory, disk
//!   and NIC bandwidth), with presets mirroring the paper's instances;
//! * [`network`] — transfer-time models: point-to-point, serialized
//!   master-side broadcast (the Orchestra/Collaborative-Filtering
//!   bottleneck), and many-to-one shuffle with a TCP-incast penalty;
//! * [`scheduler`] — a centralized scheduler whose per-task dispatch cost
//!   grows with cluster size (the Hadoop/Spark scheduling bottleneck);
//! * [`memory`] — working-set versus capacity with spill-to-disk slowdown
//!   (the TeraSort `IN(n)` burst of paper Fig. 5);
//! * [`straggler`] — task-time noise models (barrier synchronization makes
//!   the slowest task the one that matters);
//! * [`fault`] — fault injection (task failures, correlated node crashes)
//!   and recovery (retry with backoff, speculation, lineage recompute
//!   accounting) — re-executed work is charged into `Wo(n)`;
//! * [`exec`] — wave scheduling of task sets over executor pools;
//! * [`graph`] — the framework-agnostic task-graph IR both engines lower
//!   their jobs into;
//! * [`runtime`] — the single executor that runs a [`TaskGraph`]:
//!   straggler sampling, policy-driven wave scheduling, fault resolution,
//!   lineage recompute and Ws/Wp/Wo attribution in one place;
//! * [`metrics`] — phase breakdowns and task traces shared by the engines;
//! * [`error`] — the typed [`ClusterError`] these models reject with.
//!
//! All randomness flows through [`ipso_sim::SimRng`] seeds, so every
//! simulated experiment is reproducible.

pub mod error;
pub mod exec;
pub mod fault;
pub mod graph;
pub mod memory;
pub mod metrics;
pub mod network;
pub mod runtime;
pub mod scheduler;
pub mod spec;
pub mod straggler;

pub use error::ClusterError;
pub use exec::{
    run_wave_schedule, run_wave_schedule_policy, uniform_wave_makespan, EngineOptions, TaskSchedule,
};
pub use fault::{
    resolve_faults, FaultModel, FaultOutcome, FaultSummary, RecoveryEvent, RecoveryEventKind,
    RecoveryPolicy, TimeToFailure,
};
pub use graph::{IdealReference, LineageMode, StageNode, TaskGraph};
pub use memory::MemoryModel;
pub use metrics::{JobTrace, PhaseTimes, RunConfig, TaskRecord};
pub use network::NetworkModel;
pub use runtime::{execute, LineageRecompute, RunOutcome, RuntimeConfig, StageOutcome};
pub use scheduler::{CentralScheduler, SchedulerPolicy};
pub use spec::{ClusterSpec, NodeSpec};
pub use straggler::StragglerModel;
