//! Model selection across candidate curve families.
//!
//! The diagnostic procedure repeatedly asks "is this constant, linear,
//! power-law, saturating or step-wise?". This module fits every candidate
//! family and ranks them by the corrected Akaike information criterion
//! (AICc), which balances fit quality against parameter count — the
//! principled version of the ad-hoc R² comparisons scattered through
//! measurement folklore.

use crate::diagnostics::GoodnessOfFit;
use crate::error::validate_xy;
use crate::nonlinear::{levenberg_marquardt, NonlinearOptions};
use crate::{fit_line, fit_power_law, fit_two_segment, FitError};

/// A candidate curve family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// `y = c`.
    Constant,
    /// `y = a + b·x`.
    Linear,
    /// `y = a·x^b`.
    PowerLaw,
    /// `y = L·x / (x + k)` — saturating growth towards `L`.
    Saturating,
    /// Two linear segments with a changepoint.
    TwoSegment,
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ModelFamily::Constant => "constant",
            ModelFamily::Linear => "linear",
            ModelFamily::PowerLaw => "power-law",
            ModelFamily::Saturating => "saturating",
            ModelFamily::TwoSegment => "two-segment",
        };
        write!(f, "{name}")
    }
}

/// One fitted candidate with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The family.
    pub family: ModelFamily,
    /// Fitted parameters, family-specific order:
    /// Constant `[c]`; Linear `[intercept, slope]`; PowerLaw `[a, b]`;
    /// Saturating `[L, k]`; TwoSegment `[breakpoint, slope_l, icept_l,
    /// slope_r, icept_r]`.
    pub params: Vec<f64>,
    /// Goodness of fit.
    pub gof: GoodnessOfFit,
    /// Corrected Akaike information criterion — lower is better.
    pub aicc: f64,
}

impl Candidate {
    /// Evaluates the fitted candidate at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        match self.family {
            ModelFamily::Constant => self.params[0],
            ModelFamily::Linear => self.params[0] + self.params[1] * x,
            ModelFamily::PowerLaw => self.params[0] * x.powf(self.params[1]),
            ModelFamily::Saturating => self.params[0] * x / (x + self.params[1]),
            ModelFamily::TwoSegment => {
                if x <= self.params[0] {
                    self.params[2] + self.params[1] * x
                } else {
                    self.params[4] + self.params[3] * x
                }
            }
        }
    }
}

/// AICc for a least-squares fit with `k` parameters on `n` points.
///
/// `scale` is the mean squared magnitude of the observations; residuals
/// are floored at a relative epsilon of it so that numerically perfect
/// fits tie on the likelihood term and the parameter-count penalty
/// decides (otherwise float noise at the 1e-30 level would pick the most
/// flexible family).
fn aicc(ss_res: f64, n: usize, k: usize, scale: f64) -> f64 {
    let nf = n as f64;
    let kf = k as f64;
    let floor = (scale * nf * 1e-18).max(1e-300);
    let base = nf * (ss_res.max(floor) / nf).ln() + 2.0 * kf;
    let denom = nf - kf - 1.0;
    if denom > 0.0 {
        base + 2.0 * kf * (kf + 1.0) / denom
    } else {
        f64::INFINITY
    }
}

/// Fits all applicable candidate families and returns them sorted by
/// AICc (best first).
///
/// Families whose domain requirements fail (e.g. power law with
/// non-positive data) or whose solvers do not converge are skipped.
///
/// # Errors
///
/// Returns validation errors for unusable input, or
/// [`FitError::NoConvergence`] if *no* family could be fitted.
///
/// # Example
///
/// ```
/// use ipso_fit::select::{select_model, ModelFamily};
///
/// # fn main() -> Result<(), ipso_fit::FitError> {
/// let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
/// let y: Vec<f64> = x.iter().map(|v| 8.0 * v / (v + 3.0)).collect();
/// let ranked = select_model(&x, &y)?;
/// assert_eq!(ranked[0].family, ModelFamily::Saturating);
/// assert!((ranked[0].params[0] - 8.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn select_model(x: &[f64], y: &[f64]) -> Result<Vec<Candidate>, FitError> {
    validate_xy(x, y, 3)?;
    let n = x.len();
    let scale = y.iter().map(|v| v * v).sum::<f64>() / n as f64;
    let mut out: Vec<Candidate> = Vec::new();

    // Constant.
    {
        let mean = y.iter().sum::<f64>() / n as f64;
        let predicted = vec![mean; n];
        let gof = GoodnessOfFit::from_predictions(y, &predicted, 1);
        out.push(Candidate {
            family: ModelFamily::Constant,
            params: vec![mean],
            aicc: aicc(gof.ss_res, n, 1, scale),
            gof,
        });
    }

    // Linear.
    if let Ok(line) = fit_line(x, y) {
        out.push(Candidate {
            family: ModelFamily::Linear,
            params: vec![line.intercept, line.slope],
            aicc: aicc(line.gof.ss_res, n, 2, scale),
            gof: line.gof,
        });
    }

    // Power law (positive data only).
    if let Ok(pl) = fit_power_law(x, y) {
        out.push(Candidate {
            family: ModelFamily::PowerLaw,
            params: vec![pl.coefficient, pl.exponent],
            aicc: aicc(pl.gof.ss_res, n, 2, scale),
            gof: pl.gof,
        });
    }

    // Saturating hyperbola.
    if let Some(&last) = y.last() {
        if let Ok(fit) = levenberg_marquardt(
            |p, xv| p[0] * xv / (xv + p[1].abs()),
            x,
            y,
            &[last * 1.5, 1.0],
            &NonlinearOptions::default(),
        ) {
            let params = vec![fit.params[0], fit.params[1].abs()];
            out.push(Candidate {
                family: ModelFamily::Saturating,
                aicc: aicc(fit.gof.ss_res, n, 2, scale),
                gof: fit.gof,
                params,
            });
        }
    }

    // Two-segment (needs enough points).
    if n >= 8 {
        if let Ok(seg) = fit_two_segment(x, y, 3) {
            out.push(Candidate {
                family: ModelFamily::TwoSegment,
                params: vec![
                    seg.breakpoint,
                    seg.left.slope,
                    seg.left.intercept,
                    seg.right.slope,
                    seg.right.intercept,
                ],
                aicc: aicc(seg.gof.ss_res, n, 5, scale),
                gof: seg.gof,
            });
        }
    }

    if out.is_empty() {
        return Err(FitError::NoConvergence { iterations: 0 });
    }
    // AICc can go NaN when a candidate's ss_res underflows to a
    // degenerate value; total_cmp ranks such candidates last-or-first
    // deterministically instead of panicking mid-selection.
    out.sort_by(|a, b| a.aicc.total_cmp(&b.aicc));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs(n: usize) -> Vec<f64> {
        (1..=n).map(|v| v as f64).collect()
    }

    #[test]
    fn picks_constant_for_flat_data() {
        let x = xs(12);
        let y = vec![3.0; 12];
        let ranked = select_model(&x, &y).unwrap();
        assert_eq!(ranked[0].family, ModelFamily::Constant);
        assert!((ranked[0].params[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn picks_linear_for_lines() {
        let x = xs(12);
        let y: Vec<f64> = x.iter().map(|v| 0.36 * v - 0.11).collect();
        let ranked = select_model(&x, &y).unwrap();
        assert_eq!(ranked[0].family, ModelFamily::Linear);
        assert!((ranked[0].params[1] - 0.36).abs() < 1e-9);
    }

    #[test]
    fn picks_power_law_for_power_laws() {
        let x = xs(15);
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v.powf(1.7)).collect();
        let ranked = select_model(&x, &y).unwrap();
        assert_eq!(ranked[0].family, ModelFamily::PowerLaw);
        assert!((ranked[0].params[1] - 1.7).abs() < 1e-6);
    }

    #[test]
    fn picks_saturating_for_amdahl_curves() {
        let x = xs(16);
        let y: Vec<f64> = x.iter().map(|v| 1.0 / (0.9 / v + 0.1)).collect();
        // Amdahl's curve IS L·x/(x+k) with L = 10, k = 9.
        let ranked = select_model(&x, &y).unwrap();
        assert_eq!(ranked[0].family, ModelFamily::Saturating);
        assert!(
            (ranked[0].params[0] - 10.0).abs() < 1e-6,
            "L = {}",
            ranked[0].params[0]
        );
        assert!(
            (ranked[0].params[1] - 9.0).abs() < 1e-6,
            "k = {}",
            ranked[0].params[1]
        );
    }

    #[test]
    fn picks_two_segment_for_stepwise_data() {
        let x = xs(30);
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                if v <= 15.0 {
                    0.15 * v + 0.85
                } else {
                    0.25 * v + 1.6
                }
            })
            .collect();
        let ranked = select_model(&x, &y).unwrap();
        assert_eq!(ranked[0].family, ModelFamily::TwoSegment);
        assert!((ranked[0].params[0] - 15.0).abs() < 1.01);
    }

    #[test]
    fn prediction_matches_family_formula() {
        let c = Candidate {
            family: ModelFamily::Saturating,
            params: vec![10.0, 9.0],
            gof: GoodnessOfFit::from_predictions(&[1.0], &[1.0], 1),
            aicc: 0.0,
        };
        assert!((c.predict(9.0) - 5.0).abs() < 1e-12);
        let t = Candidate {
            family: ModelFamily::TwoSegment,
            params: vec![5.0, 1.0, 0.0, 2.0, -5.0],
            gof: GoodnessOfFit::from_predictions(&[1.0], &[1.0], 1),
            aicc: 0.0,
        };
        assert_eq!(t.predict(4.0), 4.0);
        assert_eq!(t.predict(10.0), 15.0);
    }

    #[test]
    fn negative_data_skips_power_law_but_still_selects() {
        let x = xs(10);
        let y: Vec<f64> = x.iter().map(|v| v - 5.0).collect();
        let ranked = select_model(&x, &y).unwrap();
        assert!(ranked.iter().all(|c| c.family != ModelFamily::PowerLaw));
        assert_eq!(ranked[0].family, ModelFamily::Linear);
    }

    #[test]
    fn all_candidates_are_ranked_by_aicc() {
        let x = xs(20);
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let ranked = select_model(&x, &y).unwrap();
        assert!(ranked.windows(2).all(|w| w[0].aicc <= w[1].aicc));
        assert!(ranked.len() >= 4);
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(select_model(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    }
}
