//! Labeled feature vectors for the ML benchmarks.

use ipso_sim::SimRng;

/// A labeled point, as produced by the HiBench ML data generators.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    /// Class label (`0` or `1` for the binary benchmarks).
    pub label: u32,
    /// Dense feature vector.
    pub features: Vec<f64>,
}

impl LabeledPoint {
    /// Serialized size: 4-byte label plus 8 bytes per feature.
    pub fn byte_size(&self) -> u64 {
        4 + 8 * self.features.len() as u64
    }
}

/// Generates `count` points of `dims` features from two linearly
/// separable-ish Gaussian-like blobs (label 0 centred at −1, label 1 at
/// +1, uniform noise of width 2), matching what the HiBench generators
/// feed the classifiers.
pub fn random_points(count: usize, dims: usize, rng: &mut SimRng) -> Vec<LabeledPoint> {
    (0..count)
        .map(|i| {
            let label = (i % 2) as u32;
            let centre = if label == 0 { -1.0 } else { 1.0 };
            let features = (0..dims).map(|_| centre + rng.uniform(-1.0, 1.0)).collect();
            LabeledPoint { label, features }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_have_requested_shape() {
        let mut rng = SimRng::seed_from(7);
        let pts = random_points(40, 8, &mut rng);
        assert_eq!(pts.len(), 40);
        assert!(pts.iter().all(|p| p.features.len() == 8));
        assert_eq!(pts.iter().filter(|p| p.label == 0).count(), 20);
    }

    #[test]
    fn blobs_are_separated_on_average() {
        let mut rng = SimRng::seed_from(8);
        let pts = random_points(2000, 4, &mut rng);
        let mean = |label: u32| -> f64 {
            let sel: Vec<&LabeledPoint> = pts.iter().filter(|p| p.label == label).collect();
            sel.iter().map(|p| p.features[0]).sum::<f64>() / sel.len() as f64
        };
        assert!(mean(0) < -0.8);
        assert!(mean(1) > 0.8);
    }

    #[test]
    fn byte_size_counts_features() {
        let p = LabeledPoint {
            label: 1,
            features: vec![0.0; 10],
        };
        assert_eq!(p.byte_size(), 84);
    }

    #[test]
    fn generation_is_seeded() {
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        assert_eq!(random_points(5, 3, &mut a), random_points(5, 3, &mut b));
    }
}
