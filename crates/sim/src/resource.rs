//! FIFO server resources.
//!
//! Many scale-out-induced overheads in the paper stem from *serialization
//! points*: a centralized scheduler dispatches tasks one at a time, a
//! master NIC broadcasts a shard to one worker at a time, a single reducer
//! merges results in arrival order. [`FifoServer`] models one such server
//! and [`ServerPool`] a fixed pool (e.g. `m` executor slots), both with
//! deterministic O(log k) bookkeeping rather than per-event simulation,
//! which keeps 200-node sweeps instant.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A single FIFO server: requests are serviced in submission order, each
/// occupying the server for its service time.
///
/// # Example
///
/// ```
/// use ipso_sim::{FifoServer, SimTime};
///
/// let mut nic = FifoServer::new();
/// // Two broadcasts submitted at t = 0, each taking 2 s of NIC time.
/// let a = nic.submit(SimTime::ZERO, 2.0);
/// let b = nic.submit(SimTime::ZERO, 2.0);
/// assert_eq!(a.finish.as_secs(), 2.0);
/// assert_eq!(b.start.as_secs(), 2.0); // queued behind the first
/// assert_eq!(b.finish.as_secs(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    next_free: SimTime,
    busy_secs: f64,
    served: u64,
}

/// The grant returned by a server: when service started and finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (submission time or later if queued).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
}

impl Grant {
    /// Queueing delay experienced before service began.
    pub fn queueing_delay(&self, submitted: SimTime) -> f64 {
        self.start - submitted
    }
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Submits a request at `now` needing `service_secs` of server time.
    ///
    /// # Panics
    ///
    /// Panics if `service_secs` is negative or non-finite.
    pub fn submit(&mut self, now: SimTime, service_secs: f64) -> Grant {
        assert!(
            service_secs.is_finite() && service_secs >= 0.0,
            "service time must be finite and >= 0"
        );
        let start = self.next_free.max(now);
        let finish = start + service_secs;
        self.next_free = finish;
        self.busy_secs += service_secs;
        self.served += 1;
        if ipso_obs::enabled() {
            ipso_obs::counter_add("sim.fifo_submits", 1);
            ipso_obs::histogram_record("sim.fifo_queue_delay_us", ((start - now) * 1e6) as u64);
        }
        Grant { start, finish }
    }

    /// When the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total service time delivered.
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A pool of `k` identical FIFO servers; each request goes to the earliest
/// available server (e.g. `m` Spark executors serving task waves).
///
/// # Example
///
/// ```
/// use ipso_sim::{ServerPool, SimTime};
///
/// // 2 executors, 3 equal tasks: the third task waits for a free slot.
/// let mut pool = ServerPool::new(2);
/// let grants: Vec<_> = (0..3).map(|_| pool.submit(SimTime::ZERO, 10.0)).collect();
/// assert_eq!(grants[2].start.as_secs(), 10.0);
/// assert_eq!(pool.makespan().as_secs(), 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct ServerPool {
    // Min-heap of next-free times via Reverse ordering on SimTime.
    free_at: BinaryHeap<std::cmp::Reverse<SimTime>>,
    makespan: SimTime,
    served: u64,
}

impl ServerPool {
    /// Creates a pool with `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(SimTime::ZERO));
        }
        ServerPool {
            free_at,
            makespan: SimTime::ZERO,
            served: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a request at `now` needing `service_secs`; it is assigned
    /// to the earliest-available server.
    ///
    /// # Panics
    ///
    /// Panics if `service_secs` is negative or non-finite.
    pub fn submit(&mut self, now: SimTime, service_secs: f64) -> Grant {
        assert!(
            service_secs.is_finite() && service_secs >= 0.0,
            "service time must be finite and >= 0"
        );
        let std::cmp::Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = free.max(now);
        let finish = start + service_secs;
        self.free_at.push(std::cmp::Reverse(finish));
        self.makespan = self.makespan.max(finish);
        self.served += 1;
        if ipso_obs::enabled() {
            ipso_obs::counter_add("sim.pool_submits", 1);
            ipso_obs::histogram_record("sim.pool_queue_delay_us", ((start - now) * 1e6) as u64);
        }
        Grant { start, finish }
    }

    /// The latest finish time across all requests so far.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_serializes() {
        let mut s = FifoServer::new();
        let g1 = s.submit(SimTime::ZERO, 1.0);
        let g2 = s.submit(SimTime::ZERO, 1.0);
        let g3 = s.submit(SimTime::from_secs(5.0), 1.0);
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start.as_secs(), 1.0);
        assert_eq!(g2.queueing_delay(SimTime::ZERO), 1.0);
        // Idle gap: server free at 2, request arrives at 5.
        assert_eq!(g3.start.as_secs(), 5.0);
        assert_eq!(s.busy_secs(), 3.0);
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn pool_balances_load() {
        let mut pool = ServerPool::new(3);
        // Nine unit tasks on three servers: perfect 3-wave schedule.
        for _ in 0..9 {
            pool.submit(SimTime::ZERO, 1.0);
        }
        assert_eq!(pool.makespan().as_secs(), 3.0);
        assert_eq!(pool.served(), 9);
        assert_eq!(pool.servers(), 3);
    }

    #[test]
    fn pool_with_uneven_tasks() {
        let mut pool = ServerPool::new(2);
        pool.submit(SimTime::ZERO, 10.0);
        pool.submit(SimTime::ZERO, 1.0);
        // The short server picks up the next task.
        let g = pool.submit(SimTime::ZERO, 1.0);
        assert_eq!(g.start.as_secs(), 1.0);
        assert_eq!(pool.makespan().as_secs(), 10.0);
    }

    #[test]
    fn single_server_pool_equals_fifo_server() {
        let mut pool = ServerPool::new(1);
        let mut fifo = FifoServer::new();
        for i in 0..5 {
            let t = SimTime::from_secs(i as f64 * 0.3);
            let a = pool.submit(t, 0.7);
            let b = fifo.submit(t, 0.7);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ServerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_service_rejected() {
        let mut s = FifoServer::new();
        s.submit(SimTime::ZERO, -1.0);
    }
}
