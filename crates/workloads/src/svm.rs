//! Support Vector Machine (HiBench Spark ML benchmark; paper Figs. 9–10).
//!
//! The real kernel ([`train_svm`]) runs hinge-loss subgradient descent —
//! the same computation Spark's `SVMWithSGD` distributes: each iteration
//! broadcasts the weight vector, computes partial gradients over cached
//! partitions, and aggregates them. [`job`] mirrors that structure.

use ipso_spark::{SparkJobSpec, StageSpec};

use crate::datagen::LabeledPoint;

/// A linear model `sign(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Weight vector.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LinearModel {
    /// Decision value for a point.
    pub fn decision(&self, features: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label (0 or 1).
    pub fn predict(&self, features: &[f64]) -> u32 {
        u32::from(self.decision(features) > 0.0)
    }
}

/// Trains a linear SVM by hinge-loss subgradient descent with L2
/// regularization.
///
/// # Panics
///
/// Panics if `points` is empty or `epochs` is zero.
pub fn train_svm(points: &[LabeledPoint], epochs: u32, lr: f64, reg: f64) -> LinearModel {
    assert!(!points.is_empty(), "training set must be non-empty");
    assert!(epochs > 0, "need at least one epoch");
    let dims = points[0].features.len();
    let mut w = vec![0.0f64; dims];
    let mut b = 0.0f64;
    for epoch in 0..epochs {
        let step = lr / (1.0 + epoch as f64);
        // Full-batch subgradient, as the distributed version aggregates.
        let mut grad_w = vec![0.0f64; dims];
        let mut grad_b = 0.0f64;
        for p in points {
            let y = if p.label == 1 { 1.0 } else { -1.0 };
            let margin = y
                * (w.iter()
                    .zip(&p.features)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + b);
            if margin < 1.0 {
                for (g, x) in grad_w.iter_mut().zip(&p.features) {
                    *g -= y * x;
                }
                grad_b -= y;
            }
        }
        let scale = 1.0 / points.len() as f64;
        for (wi, g) in w.iter_mut().zip(&grad_w) {
            *wi -= step * (g * scale + reg * *wi);
        }
        b -= step * grad_b * scale;
    }
    LinearModel {
        weights: w,
        bias: b,
    }
}

/// Training-set accuracy.
pub fn accuracy(model: &LinearModel, points: &[LabeledPoint]) -> f64 {
    let correct = points
        .iter()
        .filter(|p| model.predict(&p.features) == p.label)
        .count();
    correct as f64 / points.len() as f64
}

/// Gradient-descent iterations reflected as stage triples in the job.
pub const SVM_ITERATIONS: u32 = 3;
/// Cached partition per task (as in [`crate::bayes::PARTITION_BYTES`]).
pub const PARTITION_BYTES: u64 = 640 * 1024 * 1024;

/// The calibrated SVM job: per iteration, a broadcast of the weight
/// vector, a gradient stage over cached partitions, and a small
/// aggregation stage.
pub fn job(problem_size: u32, parallelism: u32) -> SparkJobSpec {
    let mut spec = SparkJobSpec::emr("svm", problem_size, parallelism);
    for iter in 0..SVM_ITERATIONS {
        spec = spec
            .stage(
                StageSpec::new(&format!("gradient-{iter}"), problem_size)
                    .with_task_compute(1.1)
                    .with_input_bytes(PARTITION_BYTES)
                    .with_cached_input(true)
                    .with_broadcast(4 * 1024 * 1024)
                    .with_shuffle_output(256 * 1024),
            )
            .stage(
                StageSpec::new(&format!("aggregate-{iter}"), parallelism.max(1))
                    .with_task_compute(0.1),
            );
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::random_points;
    use ipso_sim::SimRng;

    #[test]
    fn svm_separates_the_blobs() {
        let mut rng = SimRng::seed_from(60);
        let points = random_points(1500, 8, &mut rng);
        let model = train_svm(&points, 40, 0.5, 1e-3);
        let acc = accuracy(&model, &points);
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn weights_point_towards_the_positive_blob() {
        let mut rng = SimRng::seed_from(61);
        let points = random_points(1000, 5, &mut rng);
        let model = train_svm(&points, 30, 0.5, 1e-3);
        // Positive blob is centred at +1 in every coordinate.
        assert!(
            model.weights.iter().all(|&w| w > 0.0),
            "{:?}",
            model.weights
        );
    }

    #[test]
    fn more_epochs_do_not_hurt() {
        let mut rng = SimRng::seed_from(62);
        let points = random_points(800, 6, &mut rng);
        let short = accuracy(&train_svm(&points, 3, 0.5, 1e-3), &points);
        let long = accuracy(&train_svm(&points, 50, 0.5, 1e-3), &points);
        assert!(long >= short - 0.02, "short = {short}, long = {long}");
    }

    #[test]
    fn job_has_iteration_structure() {
        let j = job(32, 8);
        assert_eq!(j.stages.len(), (SVM_ITERATIONS * 2) as usize);
        assert!(j.validate().is_ok());
        // Broadcast on every gradient stage.
        assert!(j.stages[0].broadcast_bytes > 0);
        assert_eq!(j.stages[1].broadcast_bytes, 0);
    }

    #[test]
    fn fixed_size_sweep_eventually_degrades() {
        use ipso_spark::sweep_fixed_size;
        let pts = sweep_fixed_size(job, 64, &[2, 8, 32, 64, 128, 256]);
        let peak = pts
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        let last = pts.last().unwrap();
        assert!(peak.m < 256, "peak at the edge");
        assert!(last.speedup < peak.speedup);
    }
}
