//! Bayes Classifier (HiBench Spark ML benchmark; paper Figs. 9–10).
//!
//! A real miniature naive-Bayes kernel ([`train_naive_bayes`],
//! [`classify`]) establishes what each task computes; [`job`] is the
//! calibrated two-stage Spark job (feature counting over cached
//! partitions plus a model-aggregation stage) the sweeps execute.

use ipso_spark::{SparkJobSpec, StageSpec};

use crate::datagen::LabeledPoint;

/// A trained Gaussian-free naive-Bayes model over binarized features
/// (feature present when > 0), with Laplace smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    /// Log prior per class.
    pub log_prior: [f64; 2],
    /// `log_likelihood[class][feature]` of the feature being positive.
    pub log_likelihood: Vec<[f64; 2]>,
    /// Complement log likelihood (feature non-positive).
    pub log_complement: Vec<[f64; 2]>,
}

/// Trains the model by counting positive features per class — the same
/// count-and-aggregate structure as the distributed benchmark.
///
/// # Panics
///
/// Panics if `points` is empty or labels are not in `{0, 1}`.
pub fn train_naive_bayes(points: &[LabeledPoint]) -> NaiveBayesModel {
    assert!(!points.is_empty(), "training set must be non-empty");
    let dims = points[0].features.len();
    let mut class_counts = [0u64; 2];
    let mut feature_counts = vec![[0u64; 2]; dims];
    for p in points {
        assert!(p.label < 2, "binary labels required");
        class_counts[p.label as usize] += 1;
        for (f, &v) in p.features.iter().enumerate() {
            if v > 0.0 {
                feature_counts[f][p.label as usize] += 1;
            }
        }
    }
    let total = points.len() as f64;
    let log_prior = [
        ((class_counts[0] as f64 + 1.0) / (total + 2.0)).ln(),
        ((class_counts[1] as f64 + 1.0) / (total + 2.0)).ln(),
    ];
    let mut log_likelihood = Vec::with_capacity(dims);
    let mut log_complement = Vec::with_capacity(dims);
    for counts in feature_counts.iter().take(dims) {
        let mut ll = [0.0f64; 2];
        let mut lc = [0.0f64; 2];
        for c in 0..2 {
            let p = (counts[c] as f64 + 1.0) / (class_counts[c] as f64 + 2.0);
            ll[c] = p.ln();
            lc[c] = (1.0 - p).ln();
        }
        log_likelihood.push(ll);
        log_complement.push(lc);
    }
    NaiveBayesModel {
        log_prior,
        log_likelihood,
        log_complement,
    }
}

/// Classifies one point.
pub fn classify(model: &NaiveBayesModel, point: &LabeledPoint) -> u32 {
    let mut scores = model.log_prior;
    for (f, &v) in point.features.iter().enumerate() {
        for (c, score) in scores.iter_mut().enumerate() {
            *score += if v > 0.0 {
                model.log_likelihood[f][c]
            } else {
                model.log_complement[f][c]
            };
        }
    }
    u32::from(scores[1] > scores[0])
}

/// Training-set accuracy of a model.
pub fn accuracy(model: &NaiveBayesModel, points: &[LabeledPoint]) -> f64 {
    let correct = points
        .iter()
        .filter(|p| classify(model, p) == p.label)
        .count();
    correct as f64 / points.len() as f64
}

/// Partition size cached per task: 640 MB, so a per-executor load of
/// `N/m = 8` (5 GB) overflows the 4 GB executor memory while `N/m ≤ 4`
/// fits — the paper's Fig. 9 inversion.
pub const PARTITION_BYTES: u64 = 640 * 1024 * 1024;

/// The calibrated Bayes job: a counting stage over `N` cached partitions
/// with a small model broadcast and count shuffle, then an aggregation
/// stage sized to the parallel degree.
pub fn job(problem_size: u32, parallelism: u32) -> SparkJobSpec {
    SparkJobSpec::emr("bayes", problem_size, parallelism)
        .stage(
            StageSpec::new("count-features", problem_size)
                .with_task_compute(2.2)
                .with_input_bytes(PARTITION_BYTES)
                .with_cached_input(true)
                .with_broadcast(2 * 1024 * 1024)
                .with_shuffle_output(512 * 1024),
        )
        .stage(StageSpec::new("aggregate-model", parallelism.max(1)).with_task_compute(0.25))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::random_points;
    use ipso_sim::SimRng;

    #[test]
    fn model_separates_the_blobs() {
        let mut rng = SimRng::seed_from(50);
        let points = random_points(2000, 10, &mut rng);
        let model = train_naive_bayes(&points);
        let acc = accuracy(&model, &points);
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn priors_reflect_class_balance() {
        let mut rng = SimRng::seed_from(51);
        let points = random_points(1000, 4, &mut rng);
        let model = train_naive_bayes(&points);
        assert!((model.log_prior[0] - model.log_prior[1]).abs() < 0.01);
    }

    #[test]
    fn classify_prefers_matching_blob() {
        let mut rng = SimRng::seed_from(52);
        let points = random_points(1000, 6, &mut rng);
        let model = train_naive_bayes(&points);
        let strongly_negative = LabeledPoint {
            label: 0,
            features: vec![-1.5; 6],
        };
        let strongly_positive = LabeledPoint {
            label: 1,
            features: vec![1.5; 6],
        };
        assert_eq!(classify(&model, &strongly_negative), 0);
        assert_eq!(classify(&model, &strongly_positive), 1);
    }

    #[test]
    fn job_has_two_stages_and_validates() {
        let j = job(64, 16);
        assert_eq!(j.stages.len(), 2);
        assert!(j.validate().is_ok());
        assert_eq!(j.stages[0].tasks, 64);
        assert_eq!(j.stages[1].tasks, 16);
    }

    #[test]
    fn load_level_four_beats_one_and_eight() {
        use ipso_spark::sweep_fixed_time;
        let ms = [8u32, 16, 32];
        let l1 = sweep_fixed_time(job, 1, &ms);
        let l4 = sweep_fixed_time(job, 4, &ms);
        let l8 = sweep_fixed_time(job, 8, &ms);
        for i in 0..ms.len() {
            assert!(
                l4[i].speedup > l1[i].speedup,
                "m = {}: N/m=4 {} <= N/m=1 {}",
                ms[i],
                l4[i].speedup,
                l1[i].speedup
            );
            assert!(
                l4[i].speedup > l8[i].speedup,
                "m = {}: N/m=4 {} <= N/m=8 {} (spill should hurt)",
                ms[i],
                l4[i].speedup,
                l8[i].speedup
            );
        }
    }
}
