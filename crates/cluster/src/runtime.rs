//! The unified cluster runtime: one executor for every engine.
//!
//! [`execute`] runs a [`TaskGraph`] in the same three phases the Spark
//! engine pioneered, now shared by all frameworks:
//!
//! 1. **Sample** (sequential): per-stage straggler draws and fault
//!    resolution, in stage order, so the RNG stream — and therefore
//!    every output byte — is independent of host threading;
//! 2. **Schedule** (parallel wave over stages via
//!    [`ipso_sim::par::ordered_map_indexed`]): the actual wave schedule
//!    under the configured [`SchedulerPolicy`], the idealized reference
//!    ([`IdealReference`]) and, when requested and observability is on,
//!    the no-straggler reference — all instrumentation captured
//!    thread-locally ([`ipso_obs::capture`]);
//! 3. **Attribute**: the per-stage [`StageOutcome`]s carry the Ws/Wp/Wo
//!    components — schedule overhead beyond the ideal, wasted recovery
//!    work, lineage recomputation — which the engines accumulate during
//!    their sequential clock walk, merging each stage's captured records
//!    at the walk point so the global observability stream is
//!    byte-identical to a sequential run for any thread count.
//!
//! Placement is implicit and deterministic: task `t` of a stage lives on
//! node `t % executors`, which is both the wave-schedule executor label
//! and the lineage partition mapping.

use crate::error::ClusterError;
use crate::exec::{run_wave_schedule_policy, uniform_wave_makespan, TaskSchedule};
use crate::fault::{resolve_faults, FaultModel, FaultOutcome, RecoveryPolicy};
use crate::graph::{IdealReference, LineageMode, StageNode, TaskGraph};
use crate::metrics::TaskRecord;
use crate::scheduler::{CentralScheduler, SchedulerPolicy};
use crate::straggler::StragglerModel;
use ipso_sim::SimRng;

/// Everything the executor needs besides the graph itself: cluster
/// shape, scheduling, noise and fault models, host threading.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Executor slots available to every stage's wave.
    pub executors: usize,
    /// Dispatch-cost model of the central scheduler.
    pub scheduler: CentralScheduler,
    /// Dispatch-order policy.
    pub policy: SchedulerPolicy,
    /// Straggler noise applied to each task's `noisy_base`.
    pub straggler: StragglerModel,
    /// Fault injection model (disabled consumes zero RNG draws).
    pub faults: FaultModel,
    /// Recovery policy for injected faults.
    pub recovery: RecoveryPolicy,
    /// Host threads for the schedule phase (`1` sequential, `0` all
    /// hardware threads). Never affects results.
    pub threads: usize,
}

/// Lineage recomputation triggered by node crashes in one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageRecompute {
    /// Total parent work replayed (s) — charged into `Wo`.
    pub work: f64,
    /// Slowest crashed node's replay (s) — what the clock pays (crashed
    /// nodes recompute in parallel).
    pub makespan: f64,
    /// Number of crashed nodes that replayed.
    pub nodes: u64,
}

/// One stage's execution result: effective durations, schedules,
/// fault/lineage outcomes and the captured instrumentation.
#[derive(Debug)]
pub struct StageOutcome {
    /// Post-noise, post-fault task durations (what the wave ran).
    pub effective: Vec<f64>,
    /// The actual wave schedule under the configured policy.
    pub schedule: TaskSchedule,
    /// Makespan of the stage's [`IdealReference`].
    pub ideal_makespan: f64,
    /// No-straggler durations and their makespan under the *real*
    /// scheduler — present only when the graph requests the reference
    /// and observability is on.
    pub no_straggler: Option<(Vec<f64>, f64)>,
    /// Fault resolution, when the model is enabled.
    pub fault: Option<FaultOutcome>,
    /// Lineage recomputation caused by this stage's node crashes.
    pub lineage: Option<LineageRecompute>,
    /// Instrumentation captured while scheduling; engines merge it at
    /// the stage's position in their clock walk.
    pub records: ipso_obs::LocalRecords,
}

impl StageOutcome {
    /// Schedule overhead beyond the idealized reference:
    /// `(makespan − ideal).max(0)` — dispatch serialization, first-wave
    /// costs, straggler tail and recovery latency, i.e. the stage's
    /// contribution to `Wo` on the critical path.
    pub fn schedule_overhead(&self) -> f64 {
        (self.schedule.makespan - self.ideal_makespan).max(0.0)
    }

    /// Work burned by fault recovery (failed attempts, lost outputs,
    /// speculative losers) — scale-out-induced workload, since the
    /// sequential reference never re-executes.
    pub fn wasted(&self) -> f64 {
        self.fault
            .as_ref()
            .map_or(0.0, |o| o.summary.wasted_total())
    }

    /// The straggler-tail share of [`StageOutcome::schedule_overhead`]:
    /// how much of the makespan the no-straggler reference would have
    /// avoided, clamped into the overhead. Zero without the reference.
    pub fn straggler_tail(&self) -> f64 {
        self.no_straggler.as_ref().map_or(0.0, |(_, ns_makespan)| {
            (self.schedule.makespan - ns_makespan).clamp(0.0, self.schedule_overhead())
        })
    }

    /// Emits the per-task spans and severe-straggler instants for this
    /// stage onto the executor tracks, with the stage's wave starting at
    /// virtual time `t0`. A task is a severe straggler when its
    /// effective duration reached [`StragglerModel::SEVERE_MULTIPLIER`]×
    /// its nominal (`noisy_base + fixed`) duration.
    pub fn record_task_spans(&self, stage: &StageNode, category: &str, t0: f64) {
        for record in &self.schedule.records {
            let track = format!("executor-{}", record.executor);
            ipso_obs::record_span(
                &track,
                &format!("task-{}", record.task_id),
                category,
                t0 + record.start,
                t0 + record.end,
            );
            let id = record.task_id as usize;
            let nominal = stage.nominal(id);
            if nominal > 0.0 && self.effective[id] / nominal >= StragglerModel::SEVERE_MULTIPLIER {
                ipso_obs::record_instant(&track, "straggler", category, t0 + record.end);
            }
        }
    }

    /// Emits one instant per recovery event (retry, lost output,
    /// speculative copy) at the affected task's finish time, offset by
    /// `t0`. No-op when faults are disabled or observability is off.
    pub fn record_fault_instants(&self, category: &str, t0: f64) {
        if !ipso_obs::enabled() {
            return;
        }
        if let Some(outcome) = &self.fault {
            for event in &outcome.summary.events {
                let record: &TaskRecord = &self.schedule.records[event.task as usize];
                let track = format!("executor-{}", record.executor);
                let name = match event.kind {
                    crate::fault::RecoveryEventKind::AttemptFailed { .. } => "task-retry",
                    crate::fault::RecoveryEventKind::OutputLost { .. } => "output-lost",
                    crate::fault::RecoveryEventKind::Speculated { .. } => "speculative-copy",
                };
                ipso_obs::record_instant(&track, name, category, t0 + record.end);
            }
        }
    }
}

/// The whole graph's execution result, stages in graph order.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-stage outcomes, parallel to `graph.stages`.
    pub stages: Vec<StageOutcome>,
    /// The graph's one-time scale-out setup cost, passed through for
    /// accounting symmetry.
    pub setup_overhead: f64,
}

impl RunOutcome {
    /// Total scale-out-induced workload `Wo` across the run: setup, then
    /// per stage the schedule overhead, wasted recovery work and lineage
    /// replay. Engines that interleave the accumulation with a clock walk
    /// (adding the stage's `pre_overhead` where it lands on the timeline)
    /// reproduce this sum term by term.
    pub fn overhead_total(&self) -> f64 {
        let mut total = self.setup_overhead;
        for outcome in &self.stages {
            total += outcome.schedule_overhead();
            total += outcome.wasted();
            if let Some(l) = &outcome.lineage {
                total += l.work;
            }
        }
        total
    }
}

/// The per-stage sampling result of phase 1.
struct StageSample {
    effective: Vec<f64>,
    fault: Option<FaultOutcome>,
    lineage: Option<LineageRecompute>,
}

/// Executes `graph` under `config`, drawing straggler and fault
/// randomness from `rng`.
///
/// Phase 1 consumes the RNG sequentially in stage order — first the
/// per-task straggler multipliers (in task order), then, when the fault
/// model is enabled, [`resolve_faults`] — exactly the draw order the
/// engines used before the runtime existed, so seeded streams are
/// preserved byte for byte. Phase 2 computes every stage's schedules as
/// a parallel wave with instrumentation captured per stage.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidParameter`] for an invalid graph or
/// config, and propagates [`ClusterError::RetriesExhausted`] /
/// [`ClusterError::WastedWorkExceeded`] from fault resolution.
pub fn execute(
    graph: &TaskGraph,
    config: &RuntimeConfig,
    rng: &mut SimRng,
) -> Result<RunOutcome, ClusterError> {
    graph.validate()?;
    if config.executors == 0 {
        return Err(ClusterError::InvalidParameter {
            what: "runtime config",
            message: "need at least one executor".into(),
        });
    }

    // Phase 1 — sample. All RNG consumption happens here, sequentially
    // in stage order.
    let mut samples: Vec<StageSample> = Vec::with_capacity(graph.stages.len());
    for stage in &graph.stages {
        let mut effective: Vec<f64> = (0..stage.tasks())
            .map(|i| stage.noisy_base[i] * config.straggler.multiplier(rng) + stage.fixed(i))
            .collect();
        let fault: Option<FaultOutcome> = if config.faults.enabled() {
            Some(resolve_faults(
                &effective,
                config.executors,
                &config.faults,
                &config.recovery,
                rng,
            )?)
        } else {
            None
        };
        if let Some(outcome) = &fault {
            effective = outcome.durations.clone();
        }

        // Lineage: a crash during this stage replays the crashed node's
        // resident parent partitions (task t of a parent lives on node
        // t % executors). Expressed as a graph property, not engine code.
        let lineage = match (&fault, stage.lineage) {
            (Some(outcome), LineageMode::RecomputeParents)
                if !outcome.crashed_nodes.is_empty() && !stage.deps.is_empty() =>
            {
                let mut work = 0.0f64;
                let mut makespan = 0.0f64;
                for &node in &outcome.crashed_nodes {
                    let mut node_work = 0.0f64;
                    for &dep in &stage.deps {
                        node_work += samples[dep]
                            .effective
                            .iter()
                            .skip(node as usize)
                            .step_by(config.executors)
                            .sum::<f64>();
                    }
                    work += node_work;
                    makespan = makespan.max(node_work);
                }
                Some(LineageRecompute {
                    work,
                    makespan,
                    nodes: outcome.crashed_nodes.len() as u64,
                })
            }
            _ => None,
        };

        samples.push(StageSample {
            effective,
            fault,
            lineage,
        });
    }

    // Phase 2 — schedule, as a parallel wave over stages. Instrumentation
    // is captured per stage and handed to the caller for in-order merge.
    let mut outcomes: Vec<StageOutcome> =
        ipso_sim::par::ordered_map_indexed(config.threads, graph.stages.len(), |k| {
            let stage = &graph.stages[k];
            let sample = &samples[k];
            let ((schedule, ideal_makespan, no_straggler), records) = ipso_obs::capture(|| {
                let schedule = run_wave_schedule_policy(
                    &sample.effective,
                    config.executors,
                    &config.scheduler,
                    config.policy,
                );
                let ideal_makespan = match &stage.ideal {
                    IdealReference::SlowestTask => schedule.max_task_duration(),
                    IdealReference::Uniform { duration } => uniform_wave_makespan(
                        *duration,
                        sample.effective.len(),
                        config.executors,
                        &CentralScheduler::idealized(),
                    ),
                    IdealReference::Tasks(ideal) => {
                        run_wave_schedule_policy(
                            ideal,
                            config.executors,
                            &CentralScheduler::idealized(),
                            SchedulerPolicy::Fifo,
                        )
                        .makespan
                    }
                };
                // No-straggler schedule under the *same* scheduler, used
                // to split overhead into tail and scheduling shares.
                let no_straggler = if graph.no_straggler_reference && ipso_obs::enabled() {
                    let ns: Vec<f64> = (0..stage.tasks()).map(|t| stage.nominal(t)).collect();
                    let ns_makespan = run_wave_schedule_policy(
                        &ns,
                        config.executors,
                        &config.scheduler,
                        config.policy,
                    )
                    .makespan;
                    Some((ns, ns_makespan))
                } else {
                    None
                };
                (schedule, ideal_makespan, no_straggler)
            });
            StageOutcome {
                effective: Vec::new(), // filled below, once per stage
                schedule,
                ideal_makespan,
                no_straggler,
                fault: None,
                lineage: None,
                records,
            }
        });

    // Attach the phase-1 results (moved, not cloned) to the outcomes.
    for (outcome, sample) in outcomes.iter_mut().zip(samples) {
        outcome.effective = sample.effective;
        outcome.fault = sample.fault;
        outcome.lineage = sample.lineage;
    }

    Ok(RunOutcome {
        stages: outcomes,
        setup_overhead: graph.setup_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{IdealReference, LineageMode, StageNode, TaskGraph};

    fn config(executors: usize) -> RuntimeConfig {
        RuntimeConfig {
            executors,
            scheduler: CentralScheduler::idealized(),
            policy: SchedulerPolicy::Fifo,
            straggler: StragglerModel::None,
            faults: FaultModel::none(),
            recovery: RecoveryPolicy::hadoop_like(),
            threads: 1,
        }
    }

    fn single_stage(tasks: usize) -> TaskGraph {
        TaskGraph {
            job: "t".into(),
            stages: vec![StageNode {
                name: "map".into(),
                noisy_base: vec![1.0; tasks],
                fixed_extra: Vec::new(),
                deps: Vec::new(),
                pre_overhead: 0.0,
                ideal: IdealReference::SlowestTask,
                lineage: LineageMode::None,
            }],
            setup_overhead: 0.0,
            no_straggler_reference: false,
        }
    }

    #[test]
    fn noise_free_single_stage_has_no_slowest_task_overhead() {
        let g = single_stage(8);
        let mut rng = SimRng::seed_from(1);
        let out = execute(&g, &config(8), &mut rng).unwrap();
        let s = &out.stages[0];
        assert_eq!(s.effective, vec![1.0; 8]);
        // Ideal = slowest task; overhead is only the dispatch stretch.
        assert!(s.schedule_overhead() < 0.01);
        assert_eq!(s.wasted(), 0.0);
        assert!(s.lineage.is_none());
    }

    #[test]
    fn execute_rejects_bad_inputs() {
        let mut g = single_stage(2);
        let mut rng = SimRng::seed_from(1);
        assert!(matches!(
            execute(&g, &config(0), &mut rng),
            Err(ClusterError::InvalidParameter { .. })
        ));
        g.stages[0].noisy_base[0] = -1.0;
        assert!(execute(&g, &config(2), &mut rng).is_err());
    }

    #[test]
    fn straggler_draws_are_in_task_order() {
        // Same seed, two paths: manual draws vs execute. Streams match.
        let g = single_stage(5);
        let cfg = RuntimeConfig {
            straggler: StragglerModel::mild(),
            ..config(5)
        };
        let mut rng = SimRng::seed_from(42);
        let out = execute(&g, &cfg, &mut rng).unwrap();
        let mut rng2 = SimRng::seed_from(42);
        let manual: Vec<f64> = (0..5)
            .map(|_| 1.0 * cfg.straggler.multiplier(&mut rng2) + 0.0)
            .collect();
        assert_eq!(out.stages[0].effective, manual);
    }

    #[test]
    fn thread_count_never_changes_outcomes() {
        let mut g = single_stage(6);
        g.stages.push(StageNode {
            name: "reduce".into(),
            noisy_base: vec![0.5; 12],
            fixed_extra: Vec::new(),
            deps: vec![0],
            pre_overhead: 0.1,
            ideal: IdealReference::Uniform { duration: 0.5 },
            lineage: LineageMode::RecomputeParents,
        });
        let cfg = RuntimeConfig {
            straggler: StragglerModel::mild(),
            faults: FaultModel::flaky(0.2),
            recovery: RecoveryPolicy::hadoop_like().with_speculation(),
            ..config(4)
        };
        let mut rng = SimRng::seed_from(9);
        let base = execute(&g, &cfg, &mut rng).unwrap();
        for threads in [0, 2, 3] {
            let cfg_t = RuntimeConfig {
                threads,
                ..cfg.clone()
            };
            let mut rng = SimRng::seed_from(9);
            let out = execute(&g, &cfg_t, &mut rng).unwrap();
            for (a, b) in base.stages.iter().zip(&out.stages) {
                assert_eq!(a.effective, b.effective, "threads = {threads}");
                assert_eq!(a.schedule, b.schedule, "threads = {threads}");
                assert_eq!(a.ideal_makespan, b.ideal_makespan);
                assert_eq!(a.lineage, b.lineage);
            }
        }
    }

    #[test]
    fn lineage_replays_crashed_nodes_parent_partitions() {
        let mut g = single_stage(4);
        g.stages.push(StageNode {
            name: "s1".into(),
            noisy_base: vec![1.0; 4],
            fixed_extra: Vec::new(),
            deps: vec![0],
            pre_overhead: 0.0,
            ideal: IdealReference::Uniform { duration: 1.0 },
            lineage: LineageMode::RecomputeParents,
        });
        let cfg = RuntimeConfig {
            faults: FaultModel {
                node_crash_prob: 1.0,
                ..FaultModel::none()
            },
            ..config(2)
        };
        let mut rng = SimRng::seed_from(3);
        let out = execute(&g, &cfg, &mut rng).unwrap();
        // Stage 0 has lineage None: crashes there never replay anything.
        assert!(out.stages[0].lineage.is_none());
        let l = out.stages[1].lineage.as_ref().expect("both nodes crash");
        // Both nodes replay stage 0's partitions: total work = all of
        // stage 0's effective time, makespan = the slower node.
        let stage0_total: f64 = out.stages[0].effective.iter().sum();
        assert!((l.work - stage0_total).abs() < 1e-12);
        assert!(l.makespan <= l.work);
        assert_eq!(l.nodes, 2);
        assert!(out.overhead_total() >= l.work);
    }

    #[test]
    fn policies_are_deterministic_and_fifo_matches_legacy() {
        let durations = [3.0, 1.0, 2.0, 5.0, 0.5];
        let sched = CentralScheduler::spark_like();
        let legacy = crate::exec::run_wave_schedule(&durations, 2, &sched);
        let fifo = run_wave_schedule_policy(&durations, 2, &sched, SchedulerPolicy::Fifo);
        assert_eq!(legacy, fifo);
        for policy in [SchedulerPolicy::Fair, SchedulerPolicy::Locality] {
            let a = run_wave_schedule_policy(&durations, 2, &sched, policy);
            let b = run_wave_schedule_policy(&durations, 2, &sched, policy);
            assert_eq!(a, b, "{policy}");
            // Records always come back in task order.
            assert!(a.records.windows(2).all(|w| w[0].task_id < w[1].task_id));
        }
    }
}
