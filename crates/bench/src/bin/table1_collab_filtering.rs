//! Table I — the Collaborative Filtering workload measurements
//! (`E[max Tp,i(n)]` and `Wo(n)` at n = 10, 30, 60, 90).
//!
//! Two columns of provenance: the paper's values (extracted from \[12\])
//! and our simulated broadcast-heavy CF job measured the same way, to
//! show the simulator reproduces the measured workload shape.

use ipso_bench::{SweepRunner, Table};
use ipso_spark::run_job;
use ipso_workloads::collab_filter::{job, CF_TASKS, TABLE_I};

fn main() {
    let runner = SweepRunner::from_env();
    let mut table = Table::new(
        "table1_collab_filtering",
        &[
            "n",
            "paper_max_task",
            "paper_overhead",
            "sim_split_time",
            "sim_overhead",
        ],
    );
    // One grid point per Table I row: each runs its own simulated job.
    let rows = runner.map(TABLE_I.to_vec(), |_ctx, (n, paper_tmax, paper_wo)| {
        let run = run_job(&job(CF_TASKS, n));
        let sim_split = run.total_time - run.overhead_time;
        vec![
            f64::from(n),
            paper_tmax,
            paper_wo,
            sim_split,
            run.overhead_time,
        ]
    });
    for row in rows {
        table.push(row);
    }
    table.emit();

    println!("shape checks (paper Section V-A, fixed-size):");
    let rows = &table.rows;
    let tmax_ratio = rows[0][3] / rows[3][3];
    println!(
        "  split time scales ~1/n: T(10)/T(90) = {tmax_ratio:.1} (ideal 9.0, paper {:.1})",
        209.0 / 31.1
    );
    let wo_ratio = rows[3][4] / rows[0][4];
    println!(
        "  overhead scales ~n: Wo(90)/Wo(10) = {wo_ratio:.1} (ideal 9.0, paper {:.1})",
        54.3 / 5.5
    );
}
