//! Speedup-versus-cost provisioning (paper Sections I and VI).
//!
//! The paper motivates IPSO with the need to make "informed datacenter
//! resource provisioning decisions … to achieve the best
//! speedup-versus-cost tradeoffs", and closes by proposing
//! measurement-based provisioning as future work. This module implements
//! the optimization layer: given a fitted [`IpsoModel`], a baseline job
//! time and a price model, find the scale-out degree that maximizes raw
//! speedup, cost-efficiency, or meets a deadline at minimum cost.

use crate::model::IpsoModel;
use crate::ModelError;

/// A simple cloud price model: one master plus `n` workers, billed per
/// hour of job wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Hourly cost of one worker node (the paper's m4.large units).
    pub worker_hourly: f64,
    /// Hourly cost of the master node (the paper's m4.4xlarge).
    pub master_hourly: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Approximate 2019 EC2 on-demand pricing: m4.large $0.10/h,
        // m4.4xlarge $0.80/h.
        CostModel {
            worker_hourly: 0.10,
            master_hourly: 0.80,
        }
    }
}

impl CostModel {
    /// Creates a cost model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonFinite`] for non-finite or negative rates.
    pub fn new(worker_hourly: f64, master_hourly: f64) -> Result<Self, ModelError> {
        if !worker_hourly.is_finite()
            || !master_hourly.is_finite()
            || worker_hourly < 0.0
            || master_hourly < 0.0
        {
            return Err(ModelError::NonFinite("cost rate"));
        }
        Ok(CostModel {
            worker_hourly,
            master_hourly,
        })
    }

    /// Hourly cluster cost at scale-out degree `n`.
    pub fn cluster_hourly(&self, n: u32) -> f64 {
        self.master_hourly + self.worker_hourly * n as f64
    }
}

/// One provisioning candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisioningPoint {
    /// Scale-out degree.
    pub n: u32,
    /// Predicted speedup `S(n)`.
    pub speedup: f64,
    /// Predicted job wall-clock time (s).
    pub job_time: f64,
    /// Predicted job cost ($).
    pub job_cost: f64,
    /// Speedup per dollar — the efficiency objective.
    pub speedup_per_dollar: f64,
}

/// The provisioning analyzer.
///
/// # Example
///
/// ```
/// use ipso::provision::{CostModel, Provisioner};
/// use ipso::{IpsoModel, ScalingFactor};
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// // A fixed-size job with a 10% serial fraction and mild induced
/// // overhead: speedup saturates, so buying more nodes stops paying off.
/// let model = IpsoModel::builder(0.9)
///     .induced(ScalingFactor::induced(0.002, 1.0))
///     .build()?;
/// let p = Provisioner::new(model, 3600.0, CostModel::default())?;
/// let best = p.most_efficient(200)?;
/// assert!(best.n < 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Provisioner {
    model: IpsoModel,
    /// Sequential job time at `n = 1` (s).
    t1: f64,
    cost: CostModel,
}

impl Provisioner {
    /// Creates a provisioner for a job whose sequential execution at
    /// `n = 1` takes `t1_seconds`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonFinite`] for a non-positive baseline time.
    pub fn new(model: IpsoModel, t1_seconds: f64, cost: CostModel) -> Result<Self, ModelError> {
        if !t1_seconds.is_finite() || t1_seconds <= 0.0 {
            return Err(ModelError::NonFinite("baseline job time"));
        }
        Ok(Provisioner {
            model,
            t1: t1_seconds,
            cost,
        })
    }

    /// The underlying model.
    pub fn model(&self) -> &IpsoModel {
        &self.model
    }

    /// Evaluates one provisioning candidate.
    ///
    /// The job's wall-clock time at degree `n` is
    /// `t1 · parallel_time(n)` (where `parallel_time` is normalized to the
    /// `n = 1` sequential workload), and its cost is the cluster-hour rate
    /// times that duration.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors.
    pub fn evaluate(&self, n: u32) -> Result<ProvisioningPoint, ModelError> {
        let nf = n as f64;
        let speedup = self.model.speedup(nf)?;
        let job_time = self.t1 * self.model.parallel_time(nf);
        let job_cost = self.cost.cluster_hourly(n) * job_time / 3600.0;
        let speedup_per_dollar = if job_cost > 0.0 {
            speedup / job_cost
        } else {
            f64::INFINITY
        };
        Ok(ProvisioningPoint {
            n,
            speedup,
            job_time,
            job_cost,
            speedup_per_dollar,
        })
    }

    /// Evaluates all degrees in `[1, n_max]`.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn sweep(&self, n_max: u32) -> Result<Vec<ProvisioningPoint>, ModelError> {
        (1..=n_max).map(|n| self.evaluate(n)).collect()
    }

    /// The degree maximizing the raw speedup.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; rejects `n_max = 0`.
    pub fn fastest(&self, n_max: u32) -> Result<ProvisioningPoint, ModelError> {
        self.arg_best(n_max, |p| p.speedup)
    }

    /// The degree maximizing speedup per dollar.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; rejects `n_max = 0`.
    pub fn most_efficient(&self, n_max: u32) -> Result<ProvisioningPoint, ModelError> {
        self.arg_best(n_max, |p| p.speedup_per_dollar)
    }

    /// The cheapest degree whose predicted job time meets `deadline`
    /// seconds, or `None` when no degree in `[1, n_max]` does.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn cheapest_meeting_deadline(
        &self,
        deadline: f64,
        n_max: u32,
    ) -> Result<Option<ProvisioningPoint>, ModelError> {
        let mut best: Option<ProvisioningPoint> = None;
        for n in 1..=n_max {
            let p = self.evaluate(n)?;
            if p.job_time <= deadline {
                let better = best.as_ref().is_none_or(|b| p.job_cost < b.job_cost);
                if better {
                    best = Some(p);
                }
            }
        }
        Ok(best)
    }

    /// The "knee": the smallest degree achieving at least `fraction`
    /// (e.g. 0.9) of the best speedup reachable within `[1, n_max]`.
    /// Scaling past the knee buys little speedup for linearly growing
    /// cluster cost.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; `fraction` must be in `(0, 1]`.
    pub fn knee(&self, fraction: f64, n_max: u32) -> Result<ProvisioningPoint, ModelError> {
        if !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
            return Err(ModelError::NonFinite("knee fraction"));
        }
        let peak = self.fastest(n_max)?;
        for n in 1..=n_max {
            let p = self.evaluate(n)?;
            if p.speedup >= fraction * peak.speedup {
                return Ok(p);
            }
        }
        Ok(peak)
    }

    fn arg_best<F>(&self, n_max: u32, key: F) -> Result<ProvisioningPoint, ModelError>
    where
        F: Fn(&ProvisioningPoint) -> f64,
    {
        if n_max == 0 {
            return Err(ModelError::InvalidScaleOut(0.0));
        }
        let mut best = self.evaluate(1)?;
        for n in 2..=n_max {
            let p = self.evaluate(n)?;
            if key(&p) > key(&best) {
                best = p;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::ScalingFactor;

    fn amdahl_provisioner(eta: f64) -> Provisioner {
        let model = IpsoModel::builder(eta).build().unwrap();
        Provisioner::new(model, 3600.0, CostModel::default()).unwrap()
    }

    #[test]
    fn cluster_cost_is_linear_in_n() {
        let c = CostModel::default();
        assert!((c.cluster_hourly(0) - 0.80).abs() < 1e-12);
        assert!((c.cluster_hourly(10) - 1.80).abs() < 1e-12);
    }

    #[test]
    fn amdahl_job_time_shrinks_with_n() {
        let p = amdahl_provisioner(0.95);
        let a = p.evaluate(1).unwrap();
        let b = p.evaluate(32).unwrap();
        assert!(b.job_time < a.job_time);
        assert!((a.job_time - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn efficiency_peaks_before_speedup_for_bounded_workloads() {
        let p = amdahl_provisioner(0.9);
        let fastest = p.fastest(500).unwrap();
        let efficient = p.most_efficient(500).unwrap();
        assert!(
            efficient.n < fastest.n,
            "efficient {} vs fastest {}",
            efficient.n,
            fastest.n
        );
    }

    #[test]
    fn pathological_workload_has_interior_speedup_peak() {
        let model = IpsoModel::builder(1.0)
            .induced(ScalingFactor::induced(0.001, 2.0))
            .build()
            .unwrap();
        let p = Provisioner::new(model, 1000.0, CostModel::default()).unwrap();
        let fastest = p.fastest(300).unwrap();
        assert!(fastest.n > 1 && fastest.n < 300);
    }

    #[test]
    fn deadline_selects_cheapest_feasible() {
        let p = amdahl_provisioner(0.95);
        // With η = 0.95 the speedup at n = 19 is 10×, job time 360 s.
        let pick = p.cheapest_meeting_deadline(360.0, 200).unwrap().unwrap();
        assert!(pick.job_time <= 360.0);
        // All cheaper configurations must miss the deadline.
        for n in 1..pick.n {
            let q = p.evaluate(n).unwrap();
            assert!(q.job_time > 360.0 || q.job_cost >= pick.job_cost);
        }
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let p = amdahl_provisioner(0.5); // bound 2× — 1s deadline unreachable
        assert!(p.cheapest_meeting_deadline(1.0, 100).unwrap().is_none());
    }

    #[test]
    fn knee_is_modest_for_amdahl() {
        let p = amdahl_provisioner(0.9);
        let knee = p.knee(0.9, 1000).unwrap();
        let fastest = p.fastest(1000).unwrap();
        assert!(knee.n < fastest.n);
        assert!(knee.speedup >= 0.9 * fastest.speedup);
    }

    #[test]
    fn validation_errors() {
        let model = IpsoModel::builder(0.9).build().unwrap();
        assert!(Provisioner::new(model.clone(), 0.0, CostModel::default()).is_err());
        assert!(CostModel::new(-1.0, 0.0).is_err());
        let p = Provisioner::new(model, 10.0, CostModel::default()).unwrap();
        assert!(p.fastest(0).is_err());
        assert!(p.knee(0.0, 10).is_err());
    }

    #[test]
    fn sweep_has_full_range() {
        let p = amdahl_provisioner(0.8);
        let sweep = p.sweep(16).unwrap();
        assert_eq!(sweep.len(), 16);
        assert_eq!(sweep[0].n, 1);
        assert_eq!(sweep[15].n, 16);
    }
}
