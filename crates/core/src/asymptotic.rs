//! The asymptotic (highest-order-term) form of IPSO (paper Eqs. 14–17).
//!
//! For scaling analysis the paper keeps only the leading terms of the
//! factor ratios: `ε(n) = EX(n)/IN(n) ≈ α·n^δ` and `q(n) ≈ β·n^γ`. Together
//! with the parallelizable fraction `η`, five numbers span the entire IPSO
//! solution space, and the taxonomy of Figs. 2–3 is a partition of that
//! five-dimensional space.

use crate::error::{check_eta, check_scale_out};
use crate::ModelError;

/// The five asymptotic parameters `(η, α, δ, β, γ)` of Eqs. 14–16.
///
/// * `η` — parallelizable fraction at `n = 1`; `η = 1` means no serial
///   portion (in which case α and δ are irrelevant, Eq. 17).
/// * `α ≥ 0`, `δ` — in-proportion ratio `ε(n) ≈ α·n^δ`.
/// * `β ≥ 0`, `γ ≥ 0` — scale-out-induced factor `q(n) ≈ β·n^γ`;
///   `β = 0` (or `γ = 0` in the paper's convention) means no induced
///   workload.
///
/// # Example
///
/// ```
/// use ipso::AsymptoticParams;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// // Gustafson's law: η < 1, α = 1, δ = 1, no induced workload.
/// let p = AsymptoticParams::new(0.75, 1.0, 1.0, 0.0, 0.0)?;
/// let s = p.speedup(100.0)?;
/// assert!((s - (0.75 * 100.0 + 0.25)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymptoticParams {
    /// Parallelizable fraction at `n = 1`.
    pub eta: f64,
    /// Coefficient of the in-proportion ratio `ε(n) ≈ α·n^δ`.
    pub alpha: f64,
    /// Exponent of the in-proportion ratio.
    pub delta: f64,
    /// Coefficient of the induced factor `q(n) ≈ β·n^γ`.
    pub beta: f64,
    /// Exponent of the induced factor.
    pub gamma: f64,
}

impl AsymptoticParams {
    /// Creates a parameter set, validating ranges.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidEta`] unless `η ∈ (0, 1]`;
    /// * [`ModelError::InvalidFactor`] if `α < 0` (with `η < 1`), `β < 0`,
    ///   `γ < 0`, or any value is non-finite.
    pub fn new(
        eta: f64,
        alpha: f64,
        delta: f64,
        beta: f64,
        gamma: f64,
    ) -> Result<Self, ModelError> {
        check_eta(eta)?;
        if !alpha.is_finite() || (eta < 1.0 && alpha < 0.0) {
            return Err(ModelError::InvalidFactor {
                factor: "EX",
                reason: "alpha must be finite and non-negative",
            });
        }
        if !delta.is_finite() {
            return Err(ModelError::InvalidFactor {
                factor: "EX",
                reason: "delta must be finite",
            });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(ModelError::InvalidFactor {
                factor: "q",
                reason: "beta must be finite and non-negative",
            });
        }
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(ModelError::InvalidFactor {
                factor: "q",
                reason: "gamma must be finite and non-negative",
            });
        }
        Ok(AsymptoticParams {
            eta,
            alpha,
            delta,
            beta,
            gamma,
        })
    }

    /// Parameters for a workload with no serial portion (`η = 1`), where
    /// only `q(n) ≈ β·n^γ` matters (paper Eq. 17).
    ///
    /// # Errors
    ///
    /// Same validation as [`AsymptoticParams::new`].
    pub fn serial_free(beta: f64, gamma: f64) -> Result<Self, ModelError> {
        AsymptoticParams::new(1.0, 1.0, 0.0, beta, gamma)
    }

    /// Returns `true` when the workload has no serial portion.
    pub fn is_serial_free(&self) -> bool {
        self.eta >= 1.0
    }

    /// Returns `true` when there is no scale-out-induced workload
    /// (`q(n) ≡ 0`, i.e. `β = 0`; the paper writes this as `γ = 0`).
    pub fn no_induced_workload(&self) -> bool {
        self.beta == 0.0 || self.gamma == 0.0
    }

    /// The in-proportion ratio `ε(n) ≈ α·n^δ` (Eq. 14).
    pub fn epsilon(&self, n: f64) -> f64 {
        self.alpha * n.powf(self.delta)
    }

    /// The induced factor `q(n) ≈ β·n^γ` (Eq. 15).
    pub fn q(&self, n: f64) -> f64 {
        if self.no_induced_workload() {
            0.0
        } else {
            self.beta * n.powf(self.gamma)
        }
    }

    /// The asymptotic speedup (Eq. 16, or Eq. 17 when `η = 1`):
    ///
    /// ```text
    ///          η·α·n^δ + (1 − η)
    /// S(n) = ─────────────────────────────────  (η < 1)
    ///        η·α·n^{δ−1}·(1 + β·n^γ) + (1 − η)
    ///
    /// S(n) = n / (1 + β·n^γ)                    (η = 1)
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for invalid `n` and
    /// [`ModelError::NonFinite`] for degenerate parameter combinations.
    pub fn speedup(&self, n: f64) -> Result<f64, ModelError> {
        check_scale_out(n)?;
        let s = if self.is_serial_free() {
            n / (1.0 + self.q(n))
        } else {
            let num = self.eta * self.epsilon(n) + (1.0 - self.eta);
            let den = self.eta * self.alpha * n.powf(self.delta - 1.0) * (1.0 + self.q(n))
                + (1.0 - self.eta);
            num / den
        };
        if !s.is_finite() {
            return Err(ModelError::NonFinite("asymptotic speedup"));
        }
        Ok(s)
    }

    /// The limiting speedup as `n → ∞`, when it exists.
    ///
    /// Returns `None` for unbounded growth (types I/II) and `Some(limit)`
    /// for bounded or decaying behaviours (the limit is `0` for the
    /// pathological type IV, whose speedup peaks and then falls towards
    /// zero).
    pub fn limit(&self) -> Option<f64> {
        if self.is_serial_free() {
            // S = n / (1 + βn^γ)
            return if self.no_induced_workload() || self.gamma < 1.0 {
                None // S = n, or unbounded sublinear
            } else if self.gamma == 1.0 {
                Some(1.0 / self.beta)
            } else {
                Some(0.0)
            };
        }
        let eta = self.eta;
        let one_minus = 1.0 - eta;
        // Effective denominator exponent: δ − 1 + γ (with γ = 0 if no q).
        let gamma = if self.no_induced_workload() {
            0.0
        } else {
            self.gamma
        };
        let den_exp = self.delta - 1.0 + gamma;
        if den_exp > 0.0 {
            // The numerator grows like n^δ; compare orders. Equality is
            // checked first — δ and δ − 1 + γ may differ by an ulp.
            if (self.delta - den_exp).abs() < 1e-9 {
                // Same order: limit is the ratio of leading coefficients.
                Some((eta * self.alpha) / (eta * self.alpha * self.beta))
            } else if self.delta > den_exp {
                None // cannot happen for γ ≥ 0, kept for completeness
            } else {
                Some(0.0)
            }
        } else if den_exp.abs() < 1e-12 {
            // Denominator tends to η·α·[β if γ contributes else 1]·… + (1−η).
            let den_coeff = if gamma > 0.0 {
                // δ − 1 + γ = 0 with γ > 0: the q-term dominates the n^{δ−1}
                // factor: coefficient η·α·β plus the constant (1−η).
                eta * self.alpha * self.beta + one_minus
            } else {
                // γ = 0 and δ = 1: denominator → η·α + (1−η).
                eta * self.alpha + one_minus
            };
            if self.delta > 0.0 {
                None // numerator still diverges
            } else {
                Some((eta * self.alpha + one_minus) / den_coeff)
            }
        } else {
            // Denominator → (1 − η).
            if self.delta > 0.0 {
                None
            } else {
                Some((eta * self.alpha + one_minus) / one_minus)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gustafson_case_matches_closed_form() {
        let p = AsymptoticParams::new(0.6, 1.0, 1.0, 0.0, 0.0).unwrap();
        for n in [1.0, 10.0, 200.0] {
            assert!((p.speedup(n).unwrap() - (0.6 * n + 0.4)).abs() < 1e-9);
        }
        assert_eq!(p.limit(), None);
    }

    #[test]
    fn amdahl_case_has_classic_bound() {
        // Fixed-size: δ = 0, α = 1, no q. Bound = 1/(1−η).
        let p = AsymptoticParams::new(0.9, 1.0, 0.0, 0.0, 0.0).unwrap();
        let lim = p.limit().unwrap();
        assert!((lim - 10.0).abs() < 1e-9);
        assert!(p.speedup(1e9).unwrap() < lim);
    }

    #[test]
    fn type_iii_t1_bound() {
        // Fixed-time with full in-proportion scaling: δ = 0 (IN grows as
        // fast as EX), γ < 1. Bound = (ηα + 1 − η)/(1 − η).
        let (eta, alpha) = (0.8, 4.3);
        let p = AsymptoticParams::new(eta, alpha, 0.0, 0.0, 0.0).unwrap();
        let expected = (eta * alpha + (1.0 - eta)) / (1.0 - eta);
        assert!((p.limit().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn type_iii_t2_bound_serial_free() {
        // γ = 1 with η = 1: S → 1/β.
        let p = AsymptoticParams::serial_free(0.05, 1.0).unwrap();
        assert!((p.limit().unwrap() - 20.0).abs() < 1e-9);
        assert!((p.speedup(1e8).unwrap() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn type_iii_t2_bound_with_serial() {
        // γ = 1, δ = 0: S → (ηα + 1 − η)/(ηαβ + 1 − η).
        let (eta, alpha, beta) = (0.7, 2.0, 0.1);
        let p = AsymptoticParams::new(eta, alpha, 0.0, beta, 1.0).unwrap();
        let expected = (eta * alpha + 0.3) / (eta * alpha * beta + 0.3);
        assert!((p.limit().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn type_iv_decays_to_zero() {
        let p = AsymptoticParams::new(0.9, 1.0, 1.0, 0.01, 2.0).unwrap();
        assert_eq!(p.limit(), Some(0.0));
        // Peak then fall.
        let s10 = p.speedup(10.0).unwrap();
        let s1000 = p.speedup(1000.0).unwrap();
        assert!(s10 > s1000);
    }

    #[test]
    fn serial_free_without_overhead_is_linear() {
        let p = AsymptoticParams::serial_free(0.0, 0.0).unwrap();
        assert_eq!(p.speedup(64.0).unwrap(), 64.0);
        assert_eq!(p.limit(), None);
    }

    #[test]
    fn sublinear_unbounded_type_ii() {
        // γ = 0.5 < 1 with η = 1: unbounded sublinear.
        let p = AsymptoticParams::serial_free(0.1, 0.5).unwrap();
        assert_eq!(p.limit(), None);
        assert!(p.speedup(10_000.0).unwrap() > p.speedup(1000.0).unwrap());
        // But below perfect linear.
        assert!(p.speedup(10_000.0).unwrap() < 10_000.0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(AsymptoticParams::new(0.5, -1.0, 0.0, 0.0, 0.0).is_err());
        assert!(AsymptoticParams::new(0.5, 1.0, f64::NAN, 0.0, 0.0).is_err());
        assert!(AsymptoticParams::new(0.5, 1.0, 0.0, -0.1, 0.0).is_err());
        assert!(AsymptoticParams::new(0.5, 1.0, 0.0, 0.1, -1.0).is_err());
        assert!(AsymptoticParams::new(0.0, 1.0, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn speedup_at_one_without_overhead_is_one() {
        let p = AsymptoticParams::new(0.8, 1.0, 1.0, 0.0, 0.0).unwrap();
        assert!((p.speedup(1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_and_q_shapes() {
        let p = AsymptoticParams::new(0.5, 2.0, 0.5, 0.3, 2.0).unwrap();
        assert!((p.epsilon(4.0) - 4.0).abs() < 1e-12);
        assert!((p.q(10.0) - 30.0).abs() < 1e-12);
    }
}
