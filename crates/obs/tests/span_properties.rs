//! Property tests of the span recorder: recorded spans always have
//! non-negative durations, and recording a nested structure keeps it
//! well-nested (any two spans on a track are disjoint or contained).
//!
//! The recorder is global state, so every property takes the same lock;
//! keep any future obs-touching tests in this binary behind it too.

use std::sync::Mutex;

use ipso_obs::{record_span, snapshot_events, SpanKind};
use proptest::prelude::*;

static OBS: Mutex<()> = Mutex::new(());

fn complete_bounds(events: &[ipso_obs::TraceEvent]) -> Vec<(f64, f64)> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            SpanKind::Complete { start, end } => Some((start, end)),
            SpanKind::Instant { .. } => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever (start, delta) pairs are thrown at it — including
    /// negative deltas and reversed endpoints — every recorded span
    /// comes back with a non-negative duration.
    #[test]
    fn recorded_spans_never_have_negative_durations(
        pairs in prop::collection::vec((0.0f64..1e6, -1e3f64..1e3), 1..40),
    ) {
        let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
        ipso_obs::set_enabled(true);
        ipso_obs::reset();
        for (start, delta) in &pairs {
            record_span("track", "span", "prop", *start, start + delta);
        }
        let events = snapshot_events();
        ipso_obs::set_enabled(false);
        ipso_obs::reset();
        prop_assert_eq!(events.len(), pairs.len());
        for e in &events {
            prop_assert!(e.duration() >= 0.0, "negative duration {}", e.duration());
        }
    }

    /// Recording a chain of nested spans (each child strictly inside its
    /// parent) preserves well-nestedness: every pair of recorded spans is
    /// either disjoint or one contains the other.
    #[test]
    fn nested_recording_stays_well_nested(
        insets in prop::collection::vec((0.01f64..0.4, 0.01f64..0.4), 1..8),
        siblings in prop::collection::vec(0.1f64..0.9, 0..6),
    ) {
        let _guard = OBS.lock().unwrap_or_else(|e| e.into_inner());
        ipso_obs::set_enabled(true);
        ipso_obs::reset();
        // A chain of strictly nested spans under a [0, 100] root…
        let (mut s, mut e) = (0.0f64, 100.0f64);
        record_span("track", "root", "prop", s, e);
        for (a, b) in &insets {
            let w = e - s;
            s += w * a;
            e -= w * b;
            record_span("track", "child", "prop", s, e);
        }
        // …plus sibling leaves inside the innermost span.
        let w = e - s;
        for f in &siblings {
            let mid = s + w * f;
            record_span("track", "leaf", "prop", mid, mid);
        }
        let bounds = complete_bounds(&snapshot_events());
        ipso_obs::set_enabled(false);
        ipso_obs::reset();
        for (i, &(s1, e1)) in bounds.iter().enumerate() {
            prop_assert!(e1 >= s1);
            for &(s2, e2) in &bounds[i + 1..] {
                let disjoint = e1 <= s2 || e2 <= s1;
                let contains = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                prop_assert!(
                    disjoint || contains,
                    "spans [{s1}, {e1}] and [{s2}, {e2}] partially overlap"
                );
            }
        }
    }
}
