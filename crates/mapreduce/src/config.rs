//! Job configuration.

use ipso_cluster::{
    CentralScheduler, ClusterSpec, EngineOptions, FaultModel, MemoryModel, NetworkModel,
    RecoveryPolicy, SchedulerPolicy, StragglerModel,
};

use crate::cost::JobCostModel;

/// Which shuffle/grouping implementation the engine's data path uses.
///
/// Both implementations produce byte-identical outputs, traces, and
/// intermediate-volume accounting; they differ only in host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleImpl {
    /// Sort-based shuffle: flat pair buffer, one stable sort per task,
    /// combine streamed over sorted runs, binary-heap k-way merge on the
    /// reduce side. The default and the fast path.
    #[default]
    SortMerge,
    /// The original `BTreeMap`-per-key grouping with a rebuilt merged
    /// map on the reduce side. Kept as the reference implementation for
    /// the benchmark regression harness and equivalence tests.
    BTreeGrouping,
}

/// Full configuration of one MapReduce job execution.
///
/// # Example
///
/// ```
/// use ipso_mapreduce::JobSpec;
///
/// let spec = JobSpec::emr("sort", 16);
/// assert_eq!(spec.cluster.workers, 16);
/// spec.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job label, used in traces.
    pub name: String,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Centralized scheduler cost model.
    pub scheduler: CentralScheduler,
    /// Dispatch-order policy of the central scheduler. [`SchedulerPolicy::Fifo`]
    /// (the default) reproduces the classic Hadoop order and every
    /// committed artifact.
    pub policy: SchedulerPolicy,
    /// Network transfer model.
    pub network: NetworkModel,
    /// Reducer-side memory model (drives the TeraSort spill burst).
    pub reducer_memory: MemoryModel,
    /// Task-time noise.
    pub straggler: StragglerModel,
    /// Processing-rate calibration.
    pub cost: JobCostModel,
    /// When `true`, the reducer pulls each map task's output as soon as
    /// that task finishes (Hadoop's slow-start shuffle), so shuffle work
    /// overlaps the map phase and only the post-barrier remainder counts.
    /// The queueing of transfers at the single reducer — the paper's
    /// "queuing effect for result merging" — is simulated with a FIFO
    /// server. `false` (the default) charges the shuffle strictly after
    /// the barrier, as the paper's phase decomposition assumes.
    pub pipelined_shuffle: bool,
    /// Host-side execution knobs (map-wave thread count). Never affects
    /// outputs or traces, only how fast the host executes them.
    pub engine: EngineOptions,
    /// Shuffle/grouping implementation of the data path.
    pub shuffle: ShuffleImpl,
    /// Fault injection model. Disabled by default; when disabled the run
    /// consumes zero extra RNG draws, so traces match fault-free builds
    /// byte for byte.
    pub faults: FaultModel,
    /// Recovery policy applied when faults fire: retry with capped
    /// exponential backoff, optional speculation, fail-fast budget.
    pub recovery: RecoveryPolicy,
    /// RNG seed: identical specs produce identical traces.
    pub seed: u64,
}

impl JobSpec {
    /// The paper's EMR setup with `n` workers and sensible defaults:
    /// Hadoop-like scheduler, 2 GB reducer memory, mild stragglers.
    pub fn emr(name: &str, n: u32) -> JobSpec {
        let cluster = ClusterSpec::emr(n);
        JobSpec {
            name: name.to_string(),
            network: NetworkModel::from_cluster(&cluster),
            cluster,
            scheduler: CentralScheduler::hadoop_like(),
            policy: SchedulerPolicy::Fifo,
            reducer_memory: MemoryModel::reducer_2gb(),
            straggler: StragglerModel::mild(),
            cost: JobCostModel::io_bound(),
            pipelined_shuffle: false,
            engine: EngineOptions::default(),
            shuffle: ShuffleImpl::default(),
            faults: FaultModel::none(),
            recovery: RecoveryPolicy::hadoop_like(),
            seed: 42,
        }
    }

    /// Validates all constituent models.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        self.scheduler.validate()?;
        self.reducer_memory.validate()?;
        self.straggler.validate()?;
        self.faults.validate().map_err(|e| e.to_string())?;
        self.recovery.validate().map_err(|e| e.to_string())?;
        self.cost.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_defaults_validate() {
        assert!(JobSpec::emr("wordcount", 8).validate().is_ok());
    }

    #[test]
    fn invalid_cluster_fails_validation() {
        let mut spec = JobSpec::emr("x", 1);
        spec.cluster.workers = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_is_deterministic_by_construction() {
        assert_eq!(JobSpec::emr("a", 4), JobSpec::emr("a", 4));
    }

    #[test]
    fn invalid_fault_or_recovery_settings_fail_validation() {
        let mut spec = JobSpec::emr("x", 1);
        spec.faults.task_fail_prob = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = JobSpec::emr("x", 1);
        spec.recovery.max_attempts = 0;
        assert!(spec.validate().is_err());
    }
}
