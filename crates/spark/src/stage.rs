//! Stage specifications.

use serde::{Deserialize, Serialize};

/// One stage of a Spark-like job.
///
/// A stage runs `tasks` identical tasks over the available executors in
/// waves. Wide dependencies (shuffles) and driver broadcasts are attached
/// to the stage boundary.
///
/// # Example
///
/// ```
/// use ipso_spark::StageSpec;
///
/// let map_stage = StageSpec::new("tokenize", 64)
///     .with_task_compute(0.8)
///     .with_input_bytes(32 * 1024 * 1024)
///     .with_shuffle_output(4 * 1024 * 1024);
/// assert_eq!(map_stage.tasks, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage label (appears in the event log).
    pub name: String,
    /// Number of tasks in this stage.
    pub tasks: u32,
    /// Pure compute per task at unit core speed, seconds.
    pub task_compute: f64,
    /// Input bytes read per task (from cache, DFS or the previous
    /// shuffle).
    pub input_bytes_per_task: u64,
    /// Bytes broadcast from the driver to *every* executor before the
    /// stage starts (0 = no broadcast).
    pub broadcast_bytes: u64,
    /// Shuffle output written per task at the stage boundary (0 = result
    /// stage / narrow dependency).
    pub shuffle_output_per_task: u64,
    /// Whether the stage's partitions are cached (counted against
    /// executor memory).
    pub caches_input: bool,
}

impl StageSpec {
    /// Creates a stage with the given task count and all costs zeroed.
    pub fn new(name: &str, tasks: u32) -> StageSpec {
        StageSpec {
            name: name.to_string(),
            tasks,
            task_compute: 0.0,
            input_bytes_per_task: 0,
            broadcast_bytes: 0,
            shuffle_output_per_task: 0,
            caches_input: false,
        }
    }

    /// Sets per-task compute seconds.
    pub fn with_task_compute(mut self, secs: f64) -> StageSpec {
        self.task_compute = secs;
        self
    }

    /// Sets per-task input bytes.
    pub fn with_input_bytes(mut self, bytes: u64) -> StageSpec {
        self.input_bytes_per_task = bytes;
        self
    }

    /// Sets the driver broadcast preceding this stage.
    pub fn with_broadcast(mut self, bytes: u64) -> StageSpec {
        self.broadcast_bytes = bytes;
        self
    }

    /// Sets per-task shuffle output at this stage's boundary.
    pub fn with_shuffle_output(mut self, bytes: u64) -> StageSpec {
        self.shuffle_output_per_task = bytes;
        self
    }

    /// Marks the stage's input partitions as cached in executor memory.
    pub fn with_cached_input(mut self, cached: bool) -> StageSpec {
        self.caches_input = cached;
        self
    }

    /// Total shuffle bytes this stage writes.
    pub fn total_shuffle_output(&self) -> u64 {
        self.shuffle_output_per_task * u64::from(self.tasks)
    }

    /// Records the stage's static shape into the global metrics
    /// registry. No-op unless tracing is enabled.
    pub fn record_metrics(&self) {
        if !ipso_obs::enabled() {
            return;
        }
        ipso_obs::counter_add("spark.stages", 1);
        ipso_obs::counter_add("spark.tasks_launched", u64::from(self.tasks));
        ipso_obs::counter_add("spark.broadcast_bytes", self.broadcast_bytes);
        ipso_obs::counter_add("spark.shuffle_bytes", self.total_shuffle_output());
        ipso_obs::histogram_record("spark.stage_tasks", u64::from(self.tasks));
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tasks == 0 {
            return Err(format!("stage '{}' must have at least one task", self.name));
        }
        if !self.task_compute.is_finite() || self.task_compute < 0.0 {
            return Err(format!(
                "stage '{}' compute must be finite and >= 0",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = StageSpec::new("s", 8)
            .with_task_compute(1.0)
            .with_input_bytes(100)
            .with_broadcast(5)
            .with_shuffle_output(7)
            .with_cached_input(true);
        assert_eq!(s.tasks, 8);
        assert_eq!(s.task_compute, 1.0);
        assert_eq!(s.input_bytes_per_task, 100);
        assert_eq!(s.broadcast_bytes, 5);
        assert_eq!(s.shuffle_output_per_task, 7);
        assert!(s.caches_input);
        assert_eq!(s.total_shuffle_output(), 56);
    }

    #[test]
    fn validation() {
        assert!(StageSpec::new("ok", 1).validate().is_ok());
        assert!(StageSpec::new("zero", 0).validate().is_err());
        let mut s = StageSpec::new("neg", 1);
        s.task_compute = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = StageSpec::new("x", 3).with_task_compute(0.5);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<StageSpec>(&json).unwrap(), s);
    }
}
