//! Fig. 7 — IPSO-predicted speedups versus measured and Gustafson's law
//! for the four MapReduce cases.
//!
//! The pipeline fits the scaling factors on small runs only (n ≤ 16 for
//! QMC/WordCount/Sort; 16 ≤ n ≤ 64 for TeraSort, skipping the pre-spill
//! regime as the paper does) and extrapolates to n = 200. The headline
//! claim: IPSO tracks the measured curves everywhere while Gustafson's
//! law overshoots by an order of magnitude on Sort/TeraSort.

use ipso::classic::gustafson;
use ipso::predict::ScalingPredictor;
use ipso_bench::{SweepRunner, Table};
use ipso_mapreduce::ScalingSweep;
use ipso_workloads::{qmc, sort, terasort, wordcount, FIT_WINDOW, PAPER_SWEEP};

/// A named MapReduce sweep constructor with its n-grid and fit window.
struct Case {
    name: &'static str,
    sweep: fn(&[u32]) -> ScalingSweep,
    ns: Vec<u32>,
    late_window: bool,
}

fn main() {
    let runner = SweepRunner::from_env();
    let case_fns: Vec<Case> = vec![
        Case {
            name: "qmc",
            sweep: qmc::sweep,
            ns: PAPER_SWEEP.to_vec(),
            late_window: false,
        },
        Case {
            name: "wordcount",
            sweep: wordcount::sweep,
            ns: PAPER_SWEEP.to_vec(),
            late_window: false,
        },
        Case {
            name: "sort",
            sweep: sort::sweep,
            ns: PAPER_SWEEP.to_vec(),
            late_window: false,
        },
        // TeraSort: fit past the spill boundary, as the paper does; the
        // n = 1 run still provides the workload reference.
        Case {
            name: "terasort",
            sweep: terasort::sweep,
            ns: vec![
                1, 2, 4, 8, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128, 160, 200,
            ],
            late_window: true,
        },
    ];

    let grid: Vec<(usize, u32)> = case_fns
        .iter()
        .enumerate()
        .flat_map(|(c, case)| case.ns.iter().map(move |&n| (c, n)))
        .collect();
    let mut points = runner
        .map(grid, |_ctx, (c, n)| (case_fns[c].sweep)(&[n]).points)
        .into_iter();
    let cases: Vec<(&Case, ScalingSweep)> = case_fns
        .iter()
        .map(|case| {
            let points = points.by_ref().take(case.ns.len()).flatten().collect();
            (case, ScalingSweep { points })
        })
        .collect();

    for (case, sweep) in &cases {
        let name = case.name;
        let measurements = sweep.measurements();
        let predictor = if case.late_window {
            ScalingPredictor::fit_range(&measurements, 16, 64).expect("fit")
        } else {
            ScalingPredictor::fit(&measurements, FIT_WINDOW).expect("fit")
        };
        let base = &measurements[0];
        let eta = base.seq_parallel_work / (base.seq_parallel_work + base.seq_serial_work);

        let mut table = Table::new(
            &format!("fig7_{name}"),
            &["n", "measured", "ipso", "gustafson"],
        );
        let mut max_rel_err = 0.0f64;
        for m in &measurements {
            let ipso_s = predictor.predict(f64::from(m.n)).expect("predictable");
            let g = gustafson(eta, f64::from(m.n)).expect("valid");
            table.push(vec![f64::from(m.n), m.speedup(), ipso_s, g]);
            if m.n > predictor.window() {
                max_rel_err = max_rel_err.max((ipso_s - m.speedup()).abs() / m.speedup());
            }
        }
        table.emit();
        println!(
            "  {name}: max IPSO extrapolation error beyond the fit window = {:.1}%\n",
            100.0 * max_rel_err
        );
    }
}
