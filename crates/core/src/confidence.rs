//! Bootstrap confidence intervals for scaling predictions.
//!
//! The paper's prediction pipeline extrapolates from a handful of small-n
//! profile runs, so a point estimate alone overstates certainty. This
//! module wraps [`ScalingPredictor`]
//! (see [`crate::predict`]) with a case-resampling bootstrap: the profile runs are resampled with
//! replacement, the whole estimation pipeline is refitted per replicate,
//! and the predictions' percentiles form the interval. Wide intervals are
//! themselves diagnostic — they tell the operator to buy more profile
//! runs before buying more machines.

use ipso_sim::SimRng;

use crate::measurement::RunMeasurement;
use crate::predict::ScalingPredictor;
use crate::ModelError;

/// A predicted speedup with its bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionInterval {
    /// Target scale-out degree.
    pub n: u32,
    /// Point prediction from the full-sample fit.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

impl PredictionInterval {
    /// Relative width of the interval, `(upper − lower) / point`.
    pub fn relative_width(&self) -> f64 {
        if self.point > 0.0 {
            (self.upper - self.lower) / self.point
        } else {
            f64::INFINITY
        }
    }
}

/// Options for [`bootstrap_predictions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapOptions {
    /// Fit window passed to the predictor.
    pub fit_window: u32,
    /// Bootstrap replicates (≥ 20 recommended).
    pub replicates: u32,
    /// Two-sided confidence level in `(0, 1)`, e.g. 0.9.
    pub confidence: f64,
    /// RNG seed — identical inputs give identical intervals.
    pub seed: u64,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions {
            fit_window: 16,
            replicates: 200,
            confidence: 0.9,
            seed: 42,
        }
    }
}

/// Computes bootstrap prediction intervals at the given target degrees.
///
/// Replicates whose resample cannot be fitted (e.g. all-identical runs)
/// are skipped; at least a quarter of the replicates must survive.
///
/// # Errors
///
/// * invalid options ([`ModelError::NonFinite`] for bad confidence,
///   [`ModelError::InsufficientData`] for too few runs/replicates);
/// * fit errors from the full-sample predictor;
/// * [`ModelError::InsufficientData`] when too few replicates survive.
///
/// # Example
///
/// ```
/// use ipso::confidence::{bootstrap_predictions, BootstrapOptions};
/// # use ipso::RunMeasurement;
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// # let runs: Vec<RunMeasurement> = [1u32, 2, 4, 8, 12, 16]
/// #     .iter()
/// #     .map(|&n| {
/// #         let nf = f64::from(n);
/// #         RunMeasurement {
/// #             n,
/// #             seq_parallel_work: 10.0 * nf * (1.0 + 0.01 * (nf * 7.3).sin()),
/// #             seq_serial_work: 2.0 * (0.4 * nf + 0.6),
/// #             par_map_time: 10.0,
/// #             par_serial_time: 2.0 * (0.4 * nf + 0.6),
/// #             par_overhead: 0.0,
/// #         }
/// #     })
/// #     .collect();
/// let intervals =
///     bootstrap_predictions(&runs, &[64, 128], &BootstrapOptions::default())?;
/// assert!(intervals[0].lower <= intervals[0].point);
/// assert!(intervals[0].point <= intervals[0].upper);
/// # Ok(())
/// # }
/// ```
pub fn bootstrap_predictions(
    runs: &[RunMeasurement],
    targets: &[u32],
    opts: &BootstrapOptions,
) -> Result<Vec<PredictionInterval>, ModelError> {
    if !(opts.confidence > 0.0 && opts.confidence < 1.0) {
        return Err(ModelError::NonFinite("bootstrap confidence level"));
    }
    if opts.replicates < 8 {
        return Err(ModelError::InsufficientData {
            points: opts.replicates as usize,
            required: 8,
        });
    }
    if runs.len() < 4 {
        return Err(ModelError::InsufficientData {
            points: runs.len(),
            required: 4,
        });
    }

    let full = ScalingPredictor::fit(runs, opts.fit_window)?;
    let mut rng = SimRng::seed_from(opts.seed);

    // Collect per-target prediction samples across replicates.
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); targets.len()];
    let smallest = *runs.iter().min_by_key(|r| r.n).expect("non-empty");
    for _ in 0..opts.replicates {
        // Case resampling; always keep the smallest run so the workload
        // reference stays anchored.
        let mut resample: Vec<RunMeasurement> = vec![smallest];
        for _ in 1..runs.len() {
            resample.push(runs[rng.index(runs.len())]);
        }
        let Ok(predictor) = ScalingPredictor::fit(&resample, opts.fit_window) else {
            continue;
        };
        for (slot, &target) in samples.iter_mut().zip(targets) {
            if let Ok(s) = predictor.predict(f64::from(target)) {
                if s.is_finite() {
                    slot.push(s);
                }
            }
        }
    }

    let survived = samples.first().map_or(0, Vec::len);
    if survived < (opts.replicates / 4) as usize {
        return Err(ModelError::InsufficientData {
            points: survived,
            required: (opts.replicates / 4) as usize,
        });
    }

    let alpha = (1.0 - opts.confidence) / 2.0;
    let mut out = Vec::with_capacity(targets.len());
    for (slot, &target) in samples.iter_mut().zip(targets) {
        // Samples are filtered to finite values above; total_cmp keeps
        // the sort panic-free even if that invariant ever slips.
        slot.sort_by(f64::total_cmp);
        let lower = percentile_of_sorted(slot, alpha);
        let upper = percentile_of_sorted(slot, 1.0 - alpha);
        out.push(PredictionInterval {
            n: target,
            point: full.predict(f64::from(target))?,
            lower,
            upper,
        });
    }
    Ok(out)
}

fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs with deterministic pseudo-noise so the bootstrap has genuine
    /// variation to propagate.
    fn noisy_runs(noise: f64) -> Vec<RunMeasurement> {
        [1u32, 2, 4, 6, 8, 10, 12, 16]
            .iter()
            .map(|&n| {
                let nf = f64::from(n);
                let wiggle = 1.0 + noise * (nf * 12.9898).sin();
                let inn = 0.4 * nf + 0.6;
                RunMeasurement {
                    n,
                    seq_parallel_work: 10.0 * nf * wiggle,
                    seq_serial_work: 3.0 * inn,
                    par_map_time: 10.0 * wiggle,
                    par_serial_time: 3.0 * inn,
                    par_overhead: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn intervals_bracket_the_point_estimate() {
        let intervals = bootstrap_predictions(
            &noisy_runs(0.03),
            &[32, 64, 128],
            &BootstrapOptions::default(),
        )
        .unwrap();
        assert_eq!(intervals.len(), 3);
        for i in &intervals {
            assert!(i.lower <= i.point * 1.02, "{i:?}");
            assert!(i.upper >= i.point * 0.98, "{i:?}");
            assert!(i.relative_width() < 0.5, "{i:?}");
        }
    }

    #[test]
    fn more_noise_widens_the_interval() {
        let opts = BootstrapOptions::default();
        let quiet = bootstrap_predictions(&noisy_runs(0.01), &[128], &opts).unwrap();
        let loud = bootstrap_predictions(&noisy_runs(0.08), &[128], &opts).unwrap();
        assert!(
            loud[0].relative_width() > quiet[0].relative_width(),
            "quiet {:?} vs loud {:?}",
            quiet[0],
            loud[0]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let opts = BootstrapOptions::default();
        let a = bootstrap_predictions(&noisy_runs(0.05), &[64], &opts).unwrap();
        let b = bootstrap_predictions(&noisy_runs(0.05), &[64], &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_runs_give_tight_intervals() {
        let intervals =
            bootstrap_predictions(&noisy_runs(0.0), &[64], &BootstrapOptions::default()).unwrap();
        assert!(intervals[0].relative_width() < 1e-9, "{:?}", intervals[0]);
    }

    #[test]
    fn option_validation() {
        let runs = noisy_runs(0.02);
        let bad_conf = BootstrapOptions {
            confidence: 1.5,
            ..BootstrapOptions::default()
        };
        assert!(bootstrap_predictions(&runs, &[32], &bad_conf).is_err());
        let bad_reps = BootstrapOptions {
            replicates: 2,
            ..BootstrapOptions::default()
        };
        assert!(bootstrap_predictions(&runs, &[32], &bad_reps).is_err());
        assert!(bootstrap_predictions(&runs[..2], &[32], &BootstrapOptions::default()).is_err());
    }
}
