//! The deterministic IPSO model (paper Eq. 10).

use crate::error::{check_eta, check_scale_out};
use crate::factors::ScalingFactor;
use crate::ModelError;

/// The deterministic IPSO model.
///
/// Combines the parallelizable fraction `η` (paper Eq. 11) with the three
/// scaling factors `EX(n)`, `IN(n)` and `q(n)` and evaluates the speedup of
/// Eq. 10:
///
/// ```text
///          η·EX(n) + (1−η)·IN(n)
/// S(n) = ─────────────────────────────────────────
///        η·EX(n)/n·(1 + q(n)) + (1−η)·IN(n)
/// ```
///
/// # Example
///
/// ```
/// use ipso::{IpsoModel, ScalingFactor};
///
/// # fn main() -> Result<(), ipso::ModelError> {
/// // Gustafson's law is the special case EX(n) = n, IN(n) = 1, q(n) = 0.
/// let model = IpsoModel::builder(0.75)
///     .external(ScalingFactor::linear())
///     .build()?;
/// let s = model.speedup(16.0)?;
/// assert!((s - (0.75 * 16.0 + 0.25)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IpsoModel {
    eta: f64,
    external: ScalingFactor,
    internal: ScalingFactor,
    induced: ScalingFactor,
}

/// Builder for [`IpsoModel`]. Defaults reproduce Amdahl's law:
/// `EX(n) = 1`, `IN(n) = 1`, `q(n) = 0`.
#[derive(Debug, Clone)]
pub struct IpsoModelBuilder {
    eta: f64,
    external: ScalingFactor,
    internal: ScalingFactor,
    induced: ScalingFactor,
    normalize: bool,
}

impl IpsoModelBuilder {
    /// Sets the external scaling factor `EX(n)`.
    pub fn external(mut self, factor: ScalingFactor) -> Self {
        self.external = factor;
        self
    }

    /// Sets the internal scaling factor `IN(n)`.
    pub fn internal(mut self, factor: ScalingFactor) -> Self {
        self.internal = factor;
        self
    }

    /// Sets the scale-out-induced factor `q(n)`.
    pub fn induced(mut self, factor: ScalingFactor) -> Self {
        self.induced = factor;
        self
    }

    /// When enabled (the default), `EX` and `IN` are rescaled so that
    /// `EX(1) = IN(1) = 1` instead of rejecting factors fitted from raw
    /// measurements.
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Validates parameters and constructs the model.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidEta`] if `η ∉ (0, 1]`;
    /// * [`ModelError::BoundaryCondition`] if `EX(1) ≠ 1` or `IN(1) ≠ 1`
    ///   (with normalization disabled) or `q(1)` is materially non-zero;
    /// * [`ModelError::InvalidFactor`] for structurally invalid factors or
    ///   factors that go non-positive over a sanity probe range.
    pub fn build(self) -> Result<IpsoModel, ModelError> {
        check_eta(self.eta)?;
        self.external.validate_structure()?;
        self.internal.validate_structure()?;
        self.induced.validate_structure()?;

        let external = if self.normalize {
            self.external.normalized()?
        } else {
            self.external.clone()
        };
        let internal = if self.normalize {
            self.internal.normalized()?
        } else {
            self.internal.clone()
        };

        for (name, factor) in [("EX", &external), ("IN", &internal)] {
            let at_one = factor.eval(1.0);
            if (at_one - 1.0).abs() > 1e-9 {
                return Err(ModelError::BoundaryCondition {
                    factor: name,
                    expected: 1.0,
                    actual: at_one,
                });
            }
        }
        // q(1) = 0 by definition (sequential execution induces no scale-out
        // workload). Tolerate tiny fitting residue.
        let q1 = self.induced.eval(1.0);
        if q1.abs() > 1e-6 {
            return Err(ModelError::BoundaryCondition {
                factor: "q",
                expected: 0.0,
                actual: q1,
            });
        }

        Ok(IpsoModel {
            eta: self.eta,
            external,
            internal,
            induced: self.induced,
        })
    }
}

impl IpsoModel {
    /// Starts building a model with parallelizable fraction `eta` at
    /// `n = 1` (paper Eq. 11). Defaults are Amdahl's: `EX = 1`, `IN = 1`,
    /// `q = 0`.
    pub fn builder(eta: f64) -> IpsoModelBuilder {
        IpsoModelBuilder {
            eta,
            external: ScalingFactor::one(),
            internal: ScalingFactor::one(),
            induced: ScalingFactor::zero(),
            normalize: true,
        }
    }

    /// The parallelizable fraction η at `n = 1`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The external scaling factor `EX(n)`.
    pub fn external(&self) -> &ScalingFactor {
        &self.external
    }

    /// The internal scaling factor `IN(n)`.
    pub fn internal(&self) -> &ScalingFactor {
        &self.internal
    }

    /// The scale-out-induced factor `q(n)`.
    pub fn induced(&self) -> &ScalingFactor {
        &self.induced
    }

    /// The in-proportion scaling ratio `ε(n) = EX(n)/IN(n)` (paper Eq. 5).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n < 1` and
    /// [`ModelError::NonFinite`] if `IN(n)` is zero.
    pub fn in_proportion_ratio(&self, n: f64) -> Result<f64, ModelError> {
        check_scale_out(n)?;
        let inn = self.internal.eval(n);
        let r = self.external.eval(n) / inn;
        if !r.is_finite() {
            return Err(ModelError::NonFinite("in-proportion ratio"));
        }
        Ok(r)
    }

    /// Normalized parallelizable workload `Wp(n)/W(1) = η·EX(n)` where
    /// `W(1) = Wp(1) + Ws(1)`.
    pub fn parallel_workload(&self, n: f64) -> f64 {
        self.eta * self.external.eval(n)
    }

    /// Normalized serial workload `Ws(n)/W(1) = (1−η)·IN(n)`.
    pub fn serial_workload(&self, n: f64) -> f64 {
        (1.0 - self.eta) * self.internal.eval(n)
    }

    /// Normalized scale-out-induced workload
    /// `Wo(n)/W(1) = η·EX(n)/n·q(n)` (paper Eq. 6).
    pub fn induced_workload(&self, n: f64) -> f64 {
        self.eta * self.external.eval(n) / n * self.induced.eval(n)
    }

    /// Normalized sequential execution time (the numerator of Eq. 10):
    /// `η·EX(n) + (1−η)·IN(n)`.
    pub fn sequential_time(&self, n: f64) -> f64 {
        self.parallel_workload(n) + self.serial_workload(n)
    }

    /// Normalized parallel execution time (the denominator of Eq. 10):
    /// `η·EX(n)/n·(1 + q(n)) + (1−η)·IN(n)`.
    pub fn parallel_time(&self, n: f64) -> f64 {
        self.parallel_workload(n) / n + self.induced_workload(n) + self.serial_workload(n)
    }

    /// The deterministic IPSO speedup `S(n)` (paper Eq. 10).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScaleOut`] for `n < 1` or non-finite
    /// `n`, and [`ModelError::NonFinite`] if the factors produce a
    /// non-finite or non-positive denominator.
    pub fn speedup(&self, n: f64) -> Result<f64, ModelError> {
        check_scale_out(n)?;
        let numerator = self.sequential_time(n);
        let denominator = self.parallel_time(n);
        if !numerator.is_finite() || !denominator.is_finite() || denominator <= 0.0 {
            return Err(ModelError::NonFinite("speedup"));
        }
        Ok(numerator / denominator)
    }

    /// Evaluates the speedup over a range of integer scale-out degrees.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn speedup_curve(
        &self,
        ns: impl IntoIterator<Item = u32>,
    ) -> Result<Vec<(u32, f64)>, ModelError> {
        let mut out = Vec::new();
        for n in ns {
            if n == 0 {
                return Err(ModelError::InvalidScaleOut(0.0));
            }
            out.push((n, self.speedup(n as f64)?));
        }
        Ok(out)
    }

    /// Finds the scale-out degree in `[1, n_max]` that maximizes the
    /// speedup, returning `(n, S(n))`. Useful for pathological (type IV)
    /// workloads whose speedup peaks and falls.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors and rejects `n_max < 1`.
    pub fn peak_speedup(&self, n_max: u32) -> Result<(u32, f64), ModelError> {
        if n_max < 1 {
            return Err(ModelError::InvalidScaleOut(n_max as f64));
        }
        let mut best = (1u32, self.speedup(1.0)?);
        for n in 2..=n_max {
            let s = self.speedup(n as f64)?;
            if s > best.1 {
                best = (n, s);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_amdahl() {
        let model = IpsoModel::builder(0.9).build().unwrap();
        // Amdahl: S(n) = 1 / (η/n + (1−η))
        for n in [1.0, 2.0, 8.0, 64.0, 1024.0] {
            let expected = 1.0 / (0.9 / n + 0.1);
            assert!((model.speedup(n).unwrap() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn gustafson_special_case() {
        let model = IpsoModel::builder(0.6)
            .external(ScalingFactor::linear())
            .build()
            .unwrap();
        for n in [1.0, 4.0, 100.0] {
            let expected = 0.6 * n + 0.4;
            assert!((model.speedup(n).unwrap() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn speedup_at_one_is_unity() {
        let model = IpsoModel::builder(0.8)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.5, 0.5))
            .induced(ScalingFactor::induced(0.02, 2.0))
            .build()
            .unwrap();
        assert!((model.speedup(1.0).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn in_proportion_scaling_bounds_fixed_time_speedup() {
        // δ = 0: EX = n, IN = n ⇒ IIIt with bound (ηα + 1 − η)/(1 − η), α = 1.
        let eta = 0.5;
        let model = IpsoModel::builder(eta)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::linear())
            .build()
            .unwrap();
        let bound = (eta + (1.0 - eta)) / (1.0 - eta);
        let s_large = model.speedup(1e6).unwrap();
        assert!(s_large < bound);
        assert!(s_large > 0.99 * bound, "s = {s_large}, bound = {bound}");
    }

    #[test]
    fn superlinear_induced_overhead_peaks_and_falls() {
        // γ = 2 ⇒ type IV: the speedup peaks then decays.
        let model = IpsoModel::builder(1.0)
            .external(ScalingFactor::linear())
            .induced(ScalingFactor::induced(0.001, 2.0))
            .build()
            .unwrap();
        let (n_peak, s_peak) = model.peak_speedup(500).unwrap();
        assert!(n_peak > 1 && n_peak < 500);
        assert!(s_peak > model.speedup(500.0).unwrap());
        assert!(s_peak > model.speedup(2.0).unwrap());
    }

    #[test]
    fn workload_decomposition_sums_to_parallel_time() {
        let model = IpsoModel::builder(0.7)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.3, 0.7))
            .induced(ScalingFactor::induced(0.01, 1.0))
            .build()
            .unwrap();
        let n = 12.0;
        let lhs = model.parallel_time(n);
        let rhs =
            model.parallel_workload(n) / n + model.serial_workload(n) + model.induced_workload(n);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_eta() {
        assert!(matches!(
            IpsoModel::builder(0.0).build().unwrap_err(),
            ModelError::InvalidEta(_)
        ));
        assert!(matches!(
            IpsoModel::builder(1.2).build().unwrap_err(),
            ModelError::InvalidEta(_)
        ));
    }

    #[test]
    fn builder_normalizes_fitted_factors() {
        // Raw fitted Sort IN(n) = 0.36n − 0.11 has IN(1) = 0.25; the builder
        // rescales it.
        let model = IpsoModel::builder(0.9)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.36, -0.11))
            .build()
            .unwrap();
        assert!((model.internal().eval(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_without_normalization_rejects_unnormalized() {
        let err = IpsoModel::builder(0.9)
            .external(ScalingFactor::linear())
            .internal(ScalingFactor::affine(0.36, -0.11))
            .normalize(false)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::BoundaryCondition { factor: "IN", .. }
        ));
    }

    #[test]
    fn builder_rejects_nonzero_q_at_one() {
        let err = IpsoModel::builder(0.9)
            .induced(ScalingFactor::Constant(0.5))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::BoundaryCondition { factor: "q", .. }
        ));
    }

    #[test]
    fn speedup_rejects_invalid_n() {
        let model = IpsoModel::builder(0.9).build().unwrap();
        assert!(model.speedup(0.5).is_err());
        assert!(model.speedup(f64::NAN).is_err());
    }

    #[test]
    fn curve_is_dense_and_ordered() {
        let model = IpsoModel::builder(0.9)
            .external(ScalingFactor::linear())
            .build()
            .unwrap();
        let curve = model.speedup_curve(1..=10).unwrap();
        assert_eq!(curve.len(), 10);
        assert!(curve.windows(2).all(|w| w[1].1 > w[0].1));
    }

    #[test]
    fn curve_rejects_zero() {
        let model = IpsoModel::builder(0.9).build().unwrap();
        assert!(model.speedup_curve([0u32]).is_err());
    }
}
